"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so ``pip install -e .``
works on environments whose setuptools predates PEP 660 editable wheels
(it falls back to ``setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["pycparser>=2.21"],
)

"""A guided tour of the promotion algorithm on one function.

Run with::

    python examples/loop_promotion_tour.py

Prints the IL before promotion, the Figure 1 sets the algorithm computes
for every loop (EXPLICIT / AMBIGUOUS / PROMOTABLE / LIFT), and the IL
after the rewrite, so you can watch the ``sload``/``sstore`` references
turn into copies and the landing pads and exits pick up the promote/
demote operations.
"""

from repro.analysis.loops import normalize_loops
from repro.analysis.modref import run_modref
from repro.frontend import compile_c
from repro.ir import format_function
from repro.opt.promotion import (
    gather_block_info,
    promote_function,
    solve_loop_equations,
)

SOURCE = r"""
int hits;
int misses;
int table[64];

int main(void) {
    int probe;
    int round;
    for (round = 0; round < 8; round++) {
        for (probe = 0; probe < 64; probe++) {
            if (table[probe] == probe) {
                hits = hits + 1;
            } else {
                misses = misses + 1;
            }
        }
        table[round * 8] = round;
    }
    printf("hits=%d misses=%d\n", hits, misses);
    return 0;
}
"""


def describe(tags) -> str:
    return "{" + ", ".join(sorted(t.name for t in tags)) + "}"


def main() -> None:
    module = compile_c(SOURCE, name="tour")
    run_modref(module)
    main_fn = module.functions["main"]

    forest = normalize_loops(main_fn)
    print("=" * 70)
    print("IL before promotion (after MOD/REF analysis):")
    print(format_function(main_fn))

    explicit, ambiguous = gather_block_info(main_fn)
    sets = solve_loop_equations(main_fn, forest, explicit, ambiguous)
    print()
    print("Figure 1 sets per loop:")
    for loop in forest.loops_outermost_first():
        s = sets[loop.header]
        print(f"  loop {loop.header} (depth {loop.depth}):")
        print(f"    EXPLICIT   = {describe(s.explicit)}")
        print(f"    AMBIGUOUS  = {describe(s.ambiguous)}")
        print(f"    PROMOTABLE = {describe(s.promotable)}")
        print(f"    LIFT       = {describe(s.lift)}")

    report = promote_function(main_fn, module, forest=forest)
    print()
    print(f"references rewritten to copies: {report.references_rewritten}")
    print(f"promote loads inserted:        {report.loads_inserted}")
    print(f"demote stores inserted:        {report.stores_inserted}")
    print()
    print("=" * 70)
    print("IL after promotion:")
    print(format_function(main_fn))

    from repro.interp import run_module

    result = run_module(module)
    print("program output:", result.output.strip())
    print("dynamic counts:", result.counters)


if __name__ == "__main__":
    main()

"""Regenerate the paper's figures for any workload from the suite.

Run with::

    python examples/memory_traffic_report.py mlink
    python examples/memory_traffic_report.py           # the whole suite

Produces the Figure 5/6/7 rows (total operations, stores, loads; without
vs with promotion; MOD/REF vs points-to) for the chosen programs.
"""

import sys

from repro.harness import format_figure, run_program_matrix
from repro.workloads import get_workload, workload_names


def main() -> None:
    names = sys.argv[1:] or workload_names()
    unknown = [n for n in names if n not in workload_names()]
    if unknown:
        raise SystemExit(
            f"unknown workload(s) {unknown}; choose from {workload_names()}"
        )

    results = {}
    for name in names:
        workload = get_workload(name)
        print(f"compiling and running {name} (4 variants)...", flush=True)
        results[name] = run_program_matrix(workload)

    for metric in ("total_ops", "stores", "loads"):
        print()
        print(format_figure(results, metric))

    print()
    print("paper behaviour notes:")
    for name in names:
        print(f"  {name:<10} {get_workload(name).paper_behaviour}")


if __name__ == "__main__":
    main()

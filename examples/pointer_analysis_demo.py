"""Why pointer analysis matters: the paper's mlink scenario, live.

Run with::

    python examples/pointer_analysis_demo.py

``Tl`` has its address taken, so under MOD/REF analysis every store
through the pointer ``X2`` might modify it and the promoter must leave it
in memory.  Points-to analysis proves ``X2`` only reaches the heap block
allocated in ``setup``, the store's tag set shrinks, and ``Tl`` promotes.
The demo prints the tag sets and promotion outcome under both analyses,
and the resulting difference in dynamic stores.
"""

from repro.analysis.modref import run_modref
from repro.analysis.pointsto import apply_points_to, run_points_to
from repro.analysis.tagrefine import refine_memory_ops
from repro.frontend import compile_c
from repro.ir import MemStore
from repro.pipeline import Analysis, PipelineOptions, compile_and_run

SOURCE = r"""
double Tl;
double *X1;
double *X2;

void setup(void) {
    double *p;
    int i;
    p = &Tl;
    *p = 0.25;
    X1 = (double *) malloc(200 * 8);
    X2 = (double *) malloc(200 * 8);
    for (i = 0; i < 200; i++) { X1[i] = 1.0 + (double) i; }
}

int main(void) {
    int i;
    setup();
    for (i = 0; i < 200; i++) {
        X2[i] = Tl * X1[i];
        Tl = Tl * 0.999;
    }
    printf("Tl=%f X2[7]=%f\n", Tl, X2[7]);
    return 0;
}
"""


def show_store_tags(title: str, module) -> None:
    print(title)
    for instr in module.functions["main"].instructions():
        if isinstance(instr, MemStore):
            print(f"    store through pointer: tags = {instr.tags}")


def main() -> None:
    print("--- tag sets under MOD/REF alone ---")
    module = compile_c(SOURCE, name="demo")
    run_modref(module)
    show_store_tags("  main():", module)
    print("  (Tl appears: the store might modify it -> not promotable)")

    print()
    print("--- tag sets after points-to analysis ---")
    module = compile_c(SOURCE, name="demo")
    first = run_modref(module)
    points = run_points_to(module)
    apply_points_to(module, points, first.visible)
    result = run_modref(module)
    refine_memory_ops(module, result.sccs)
    show_store_tags("  main():", module)
    print("  (only the heap blocks remain -> Tl is promotable)")

    print()
    print("--- end-to-end effect on the paper's four variants ---")
    print(f"{'variant':<18} {'stores executed':>16}")
    for analysis in (Analysis.MODREF, Analysis.POINTER):
        for promo in (False, True):
            options = PipelineOptions(analysis=analysis, promotion=promo)
            cell = compile_and_run(SOURCE, options, name="demo")
            print(f"{cell.variant:<18} {cell.counters.stores:>16}")
    print()
    print("points-to + promotion removes the per-iteration store of Tl;")
    print("MOD/REF + promotion cannot.")


if __name__ == "__main__":
    main()

"""Quickstart: compile a C program four ways and watch the memory traffic.

Run with::

    python examples/quickstart.py

This is the paper's experiment in miniature: the same program compiled
with and without register promotion, under MOD/REF and points-to
analysis, then executed on the instrumented interpreter.  Promotion keeps
``counter`` and ``limit`` in registers across the loop, so the loads and
stores collapse to a handful.
"""

from repro.pipeline import check_outputs_agree, compile_and_run, paper_variants

SOURCE = r"""
int counter;
int limit;

int main(void) {
    int i;
    limit = 1000;
    for (i = 0; i < limit; i++) {
        counter = counter + i % 10;
    }
    printf("counter=%d\n", counter);
    return 0;
}
"""


def main() -> None:
    cells = {}
    print(f"{'variant':<18} {'total ops':>10} {'loads':>8} {'stores':>8}")
    print("-" * 48)
    for name, options in paper_variants().items():
        cell = compile_and_run(SOURCE, options, name="quickstart")
        cells[name] = cell
        c = cell.counters
        print(f"{name:<18} {c.total_ops:>10} {c.loads:>8} {c.stores:>8}")

    check_outputs_agree(cells)
    print()
    print("program output (identical for every variant):")
    print(" ", cells["modref/promo"].output.strip())

    report = cells["modref/promo"].compile_result.promotion_reports["main"]
    promoted = ", ".join(sorted(t.name for t in report.promoted_tags))
    print(f"promoted to registers in main: {promoted}")


if __name__ == "__main__":
    main()

"""Figure 4 — Program Descriptions (the benchmark suite itself).

The paper's Figure 4 is the table of the 14 programs.  This benchmark
regenerates the table for our miniatures (name, size, description, the
paper behaviour each miniature encodes) and measures the cost of
compiling and sanity-running the whole suite unoptimized — the substrate
every other figure builds on.
"""

from benchmarks.conftest import write_artifact
from repro.frontend import compile_c
from repro.interp import MachineOptions, run_module
from repro.workloads import all_workloads


def compile_and_check_suite():
    lines = []
    header = f"{'Program':<10} {'Lines':>5}  Description"
    lines.append("Figure 4: Program Descriptions (miniatures)")
    lines.append(header)
    lines.append("-" * 72)
    for w in all_workloads():
        module = compile_c(w.source, name=w.name, defines=w.defines)
        result = run_module(module, options=MachineOptions(max_steps=30_000_000))
        assert result.exit_code == 0, (w.name, result.output)
        lines.append(f"{w.name:<10} {w.line_count:>5}  {w.description}")
        lines.append(f"{'':<17} paper: {w.paper_behaviour}")
    return "\n".join(lines)


def test_fig4_program_suite(benchmark, out_dir):
    table = benchmark.pedantic(compile_and_check_suite, rounds=1, iterations=1)
    write_artifact(out_dir, "fig4_programs.txt", table)
    assert table.count("paper:") == 14

"""Shared benchmark fixtures.

The expensive artifact — the full 14-program x 4-variant matrix behind
Figures 5, 6, and 7 — is computed once per session through the
:mod:`repro.runner` scheduler and shared by every figure benchmark.  Each
benchmark regenerates its figure from the matrix, prints it, and writes it
under ``benchmarks/out/`` so EXPERIMENTS.md can reference the latest
numbers; the runner additionally drops a machine-readable ``suite.json``
next to the ``.txt`` artifacts.

Environment knobs: ``REPRO_BENCH_JOBS`` sets the worker-process count
(default: up to 4, bounded by the CPU count).  Caching is deliberately off
so the artifacts always reflect the checked-out compiler.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

OUT_DIR = Path(__file__).resolve().parent / "out"


def _bench_jobs() -> int:
    env = os.environ.get("REPRO_BENCH_JOBS")
    if env:
        return max(1, int(env))
    return max(1, min(4, os.cpu_count() or 1))


@pytest.fixture(scope="session")
def suite_report(out_dir):
    from repro.runner.report import run_suite_report, write_suite_json

    report = run_suite_report(jobs=_bench_jobs())
    write_suite_json(out_dir / "suite.json", report)
    assert report.ok, (
        f"suite run degraded: failures={[f.as_dict() for f in report.failures]} "
        f"disagreements={report.disagreements}"
    )
    return report


@pytest.fixture(scope="session")
def suite_results(suite_report):
    return suite_report.results


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(out_dir: Path, name: str, text: str) -> None:
    (out_dir / name).write_text(text + "\n")
    print()
    print(text)

"""Shared benchmark fixtures.

The expensive artifact — the full 14-program x 4-variant matrix behind
Figures 5, 6, and 7 — is computed once per session and shared by every
figure benchmark.  Each benchmark regenerates its figure from the matrix,
prints it, and writes it under ``benchmarks/out/`` so EXPERIMENTS.md can
reference the latest numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

OUT_DIR = Path(__file__).resolve().parent / "out"


@pytest.fixture(scope="session")
def suite_results():
    from repro.harness import run_suite

    return run_suite()


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(out_dir: Path, name: str, text: str) -> None:
    (out_dir / name).write_text(text + "\n")
    print()
    print(text)

"""Figure 2 — the paper's worked promotion example.

Rebuilds the Figure 2 triply nested loop nest, measures the promotion
algorithm itself (the paper argues it "runs quite quickly"), and checks
the published information table: PROMOTABLE(B1)={C}, PROMOTABLE(B3)={A},
LIFT at B3 not B5.
"""

from benchmarks.conftest import write_artifact
from repro.analysis.loops import find_loops
from repro.opt.promotion import (
    gather_block_info,
    promote_function,
    solve_loop_equations,
)

from tests.opt.test_fig2_example import A, B, C, figure2_function


def test_fig2_equations_and_rewrite(benchmark, out_dir):
    def run_promotion():
        func = figure2_function()
        report = promote_function(func)
        return func, report

    func, report = benchmark(run_promotion)

    assert report.promoted_tags == {A, C}
    assert report.lifted_in("B1") == frozenset({C})
    assert report.lifted_in("B3") == frozenset({A})
    assert report.lifted_in("B5") == frozenset()

    # regenerate the figure's information table
    check_func = figure2_function()
    forest = find_loops(check_func)
    explicit, ambiguous = gather_block_info(check_func)
    sets = solve_loop_equations(check_func, forest, explicit, ambiguous)
    lines = ["Figure 2: loop information sets",
             f"{'Loop':<6} {'EXPLICIT':<12} {'AMBIGUOUS':<12} "
             f"{'PROMOTABLE':<12} {'LIFT':<12}"]
    for header in ("B1", "B3", "B5"):
        s = sets[header]
        fmt = lambda tags: ",".join(sorted(t.name for t in tags)) or "-"
        lines.append(
            f"{header:<6} {fmt(s.explicit):<12} {fmt(s.ambiguous):<12} "
            f"{fmt(s.promotable):<12} {fmt(s.lift):<12}"
        )
    write_artifact(out_dir, "fig2_example.txt", "\n".join(lines))

    assert sets["B1"].promotable == {C}
    assert sets["B3"].promotable == {A}
    assert sets["B5"].promotable == {A}

"""Figure 7 — Loads executed, 14 programs x 4 variants.

Paper shape being reproduced:

* go shows the biggest absolute load removal (paper: ~15.6%/16.2% —
  global game state re-read in every probe of the board scans);
* mlink's loads drop by a large fraction alongside its stores;
* tsp, allroots, dhrystone remove nothing;
* pointer analysis helps exactly where it helped stores (bc, fft, mlink).
"""

from benchmarks.conftest import write_artifact
from repro.harness import figure_rows, format_figure, summary_line


def rows_by_program(results, metric, analysis="modref"):
    return {
        row.program: row
        for row in figure_rows(results, metric)
        if row.analysis == analysis
    }


def test_fig7_loads(benchmark, suite_results, out_dir):
    rows = benchmark.pedantic(
        lambda: figure_rows(suite_results, "loads"), rounds=1, iterations=1
    )
    table = format_figure(suite_results, "loads")
    write_artifact(out_dir, "fig7_loads.txt", table)
    print(summary_line(rows))

    modref = rows_by_program(suite_results, "loads", "modref")
    pointer = rows_by_program(suite_results, "loads", "pointer")

    for name in ("tsp", "allroots", "dhrystone"):
        assert modref[name].difference == 0, name

    # double-digit load removal on the global-state-heavy programs
    for name in ("go", "mlink", "clean", "bc", "indent"):
        assert modref[name].percent_removed > 5.0, name

    # points-to at least matches MOD/REF everywhere ...
    for name in modref:
        assert pointer[name].with_promotion <= modref[name].with_promotion + 2, name

    # ... and strictly beats it on the aliased-scalar programs
    assert pointer["bc"].percent_removed > modref["bc"].percent_removed

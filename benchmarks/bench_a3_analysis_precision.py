"""Ablation A3 — does analysis precision matter? (the paper's section 5
headline finding).

"The results also show that the improved information derived from pointer
analysis does not greatly improve the results of register promotion ...
it does suggest that MOD/REF analysis is a good basis for evaluating the
benefits of improved analysis."

This benchmark regenerates that comparison from the shared suite matrix:
for each program, the extra stores removed by points-to over MOD/REF —
near-zero everywhere except the programs built around an address-taken
scalar aliased by pointer stores (bc, fft, mlink).
"""

from benchmarks.conftest import write_artifact
from repro.harness import figure_rows


def test_a3_analysis_precision(benchmark, suite_results, out_dir):
    def gaps():
        modref = {
            r.program: r for r in figure_rows(suite_results, "stores")
            if r.analysis == "modref"
        }
        pointer = {
            r.program: r for r in figure_rows(suite_results, "stores")
            if r.analysis == "pointer"
        }
        return {
            name: pointer[name].difference - modref[name].difference
            for name in modref
        }

    gap = benchmark.pedantic(gaps, rounds=1, iterations=1)

    lines = [
        "A3: extra stores removed by points-to over MOD/REF, per program",
        f"{'program':<10} {'extra stores removed':>22}",
    ]
    for name in sorted(gap):
        lines.append(f"{name:<10} {gap[name]:>22}")
    write_artifact(out_dir, "a3_analysis_precision.txt", "\n".join(lines))

    sensitive = {name for name, g in gap.items() if g > 10}
    # precision matters only where the workload was built to need it
    assert sensitive <= {"bc", "fft", "mlink"}
    assert "bc" in sensitive and "fft" in sensitive

    # everywhere else the two analyses are equivalent for promotion —
    # the paper's conclusion
    for name, g in gap.items():
        if name not in sensitive:
            assert abs(g) <= 100, (name, g)

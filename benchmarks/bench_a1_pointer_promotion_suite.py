"""Ablation A1 — pointer-based promotion across the suite (section 3.3).

The paper: "pointer-based promotion hurt performance for one program and
had no effect on nine others ... In fft, the only significant success,
pointer-based promotion was able to remove 48.3% more operations [than
scalar promotion alone removed]."

This benchmark runs scalar-promotion-only vs scalar+pointer promotion on
a representative subset and checks fft is where the wins live.
"""

from benchmarks.conftest import write_artifact
from repro.harness import run_single
from repro.pipeline import Analysis, PipelineOptions

PROGRAMS = ["fft", "mlink", "go", "compress", "tsp"]


def run_matrix():
    results = {}
    for name in PROGRAMS:
        scalar = run_single(
            name,
            PipelineOptions(analysis=Analysis.POINTER, pointer_promotion=False),
        )
        both = run_single(
            name,
            PipelineOptions(analysis=Analysis.POINTER, pointer_promotion=True),
        )
        assert both.output == scalar.output, name
        results[name] = (scalar.counters, both.counters)
    return results


def test_a1_pointer_promotion_suite(benchmark, out_dir):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    lines = [
        "A1: pointer-based promotion on top of scalar promotion (section 3.3)",
        f"{'program':<10} {'metric':<8} {'scalar only':>12} "
        f"{'+pointer':>12} {'extra removed':>14}",
    ]
    extra: dict[str, int] = {}
    for name, (scalar, both) in results.items():
        for metric in ("total_ops", "stores", "loads"):
            s = getattr(scalar, metric)
            b = getattr(both, metric)
            lines.append(
                f"{name:<10} {metric:<8} {s:>12} {b:>12} {s - b:>14}"
            )
        extra[name] = scalar.memory_ops() - both.memory_ops()
    write_artifact(out_dir, "a1_pointer_promotion.txt", "\n".join(lines))

    # fft is the significant success; the others are near-zero
    assert extra["fft"] > 0
    assert extra["fft"] >= max(extra.values()) - 2
    assert extra["tsp"] == 0
    for name in ("mlink", "go", "compress"):
        assert abs(extra[name]) <= max(extra["fft"] // 2, 8), (name, extra)

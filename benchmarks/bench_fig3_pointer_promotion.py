"""Figure 3 — promoting array references via invariant base addresses.

The paper's Figure 3 turns ``B[i] += A[i][j]`` into an accumulator
register in the inner loop.  This benchmark compiles the figure's loop
nest with and without pointer-based promotion and regenerates the
before/after memory-traffic comparison.
"""

from benchmarks.conftest import write_artifact
from repro.pipeline import PipelineOptions, compile_and_run

FIGURE3 = r"""
#define DIM_X 10
#define DIM_Y 40

int A[DIM_X][DIM_Y];
int B[DIM_X];

int main(void) {
    int i;
    int j;
    for (i = 0; i < DIM_X; i++) {
        for (j = 0; j < DIM_Y; j++) {
            A[i][j] = i + 2 * j;
        }
    }
    for (i = 0; i < DIM_X; i++) {
        B[i] = 0;
        for (j = 0; j < DIM_Y; j++) {
            B[i] += A[i][j];
        }
    }
    printf("%d %d\n", B[0], B[DIM_X - 1]);
    return 0;
}
"""


def run_both():
    without = compile_and_run(
        FIGURE3, PipelineOptions(pointer_promotion=False)
    )
    with_ = compile_and_run(
        FIGURE3, PipelineOptions(pointer_promotion=True)
    )
    return without, with_


def test_fig3_pointer_based_promotion(benchmark, out_dir):
    without, with_ = benchmark.pedantic(run_both, rounds=1, iterations=1)

    assert with_.output == without.output

    lines = [
        "Figure 3: pointer-based promotion of B[i] (inner-loop accumulator)",
        f"{'variant':<22} {'total ops':>10} {'loads':>8} {'stores':>8}",
        f"{'scalar promo only':<22} {without.counters.total_ops:>10} "
        f"{without.counters.loads:>8} {without.counters.stores:>8}",
        f"{'+ pointer promotion':<22} {with_.counters.total_ops:>10} "
        f"{with_.counters.loads:>8} {with_.counters.stores:>8}",
    ]
    write_artifact(out_dir, "fig3_pointer_promotion.txt", "\n".join(lines))

    # the transformed loop keeps B[i] in a register: one store per outer
    # iteration instead of one per inner iteration
    assert with_.counters.stores < without.counters.stores
    assert with_.counters.loads < without.counters.loads

    reports = with_.compile_result.pointer_promotion_reports["main"]
    assert reports.promoted_bases >= 1

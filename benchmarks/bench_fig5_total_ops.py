"""Figure 5 — Total Operations executed, 14 programs x 4 variants.

Paper shape being reproduced:

* mlink improves the most; gzip(enc), fft, bc, go, clean show real wins;
* tsp and allroots are exactly 0.00 (no opportunities);
* dhrystone and gzip(dec) are flat to marginally negative;
* points-to is never much better than MOD/REF except where an
  address-taken scalar aliases a pointer (bc, fft, mlink).
"""

from benchmarks.conftest import write_artifact
from repro.harness import figure_rows, format_figure, summary_line


def rows_by_program(results, metric, analysis="modref"):
    return {
        row.program: row
        for row in figure_rows(results, metric)
        if row.analysis == analysis
    }


def test_fig5_total_operations(benchmark, suite_results, out_dir):
    rows = benchmark.pedantic(
        lambda: figure_rows(suite_results, "total_ops"), rounds=1, iterations=1
    )
    table = format_figure(suite_results, "total_ops")
    write_artifact(out_dir, "fig5_total_ops.txt", table)
    print(summary_line(rows))

    by_program = rows_by_program(suite_results, "total_ops")

    # no opportunities: exactly zero effect
    assert by_program["tsp"].difference == 0
    assert by_program["allroots"].difference == 0

    # the paper's standout: mlink improves the most in the suite
    best = max(by_program.values(), key=lambda r: r.percent_removed)
    assert best.program == "mlink"
    assert by_program["mlink"].percent_removed > 5.0

    # degradation cases exist and stay small in absolute terms
    assert by_program["dhrystone"].percent_removed <= 0.0
    assert by_program["gzip_dec"].percent_removed <= 0.1

    # real wins on the memory-traffic-heavy programs
    for name in ("clean", "go", "bc", "fft"):
        assert by_program[name].percent_removed > 0.0, name

    # water: promotion-induced spilling makes it a net loss (the paper's
    # cautionary anecdote)
    assert by_program["water"].percent_removed < 0.5

"""Ablation A2 — register pressure: the water anecdote, quantified.

The paper: "In water, register promotion was able to promote twenty-eight
values for one loop nest.  Unfortunately, this caused the register
allocator to spill values which resulted in a performance loss compared
to no register promotion" — and section 3.4 flags a pressure-aware
throttle as future work (Carr's bin packing).

This benchmark sweeps the machine's register count and shows the
crossover: with a small register file, promotion's spills make it a net
loss; with a large one, promotion wins outright.  It also demonstrates
the throttle (``max_promoted_per_loop``) recovering most of the loss.
"""

from benchmarks.conftest import write_artifact
from repro.harness import run_single
from repro.opt.promotion import PromotionOptions
from repro.pipeline import PipelineOptions
from repro.regalloc import RegAllocOptions

KS = [12, 24, 32, 64]


def run_sweep():
    rows = []
    for k in KS:
        regalloc = RegAllocOptions(num_registers=k)
        nopromo = run_single(
            "water", PipelineOptions(promotion=False, regalloc=regalloc)
        )
        promo = run_single(
            "water", PipelineOptions(promotion=True, regalloc=regalloc)
        )
        throttled = run_single(
            "water",
            PipelineOptions(
                promotion=True,
                regalloc=regalloc,
                promotion_options=PromotionOptions(max_promoted_per_loop=8),
            ),
        )
        aware = run_single(
            "water",
            PipelineOptions(
                promotion=True,
                regalloc=regalloc,
                promotion_options=PromotionOptions(pressure_budget=k),
            ),
        )
        assert promo.output == nopromo.output == throttled.output == aware.output
        rows.append(
            (k, nopromo.counters, promo.counters, throttled.counters,
             aware.counters)
        )
    return rows


def test_a2_register_pressure_sweep(benchmark, out_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [
        "A2: water under varying register counts (total operations executed)",
        f"{'K':>4} {'no promo':>12} {'promo':>12} {'throttle=8':>12} "
        f"{'pressure-aware':>15} {'promo wins?':>12}",
    ]
    verdicts = {}
    for k, nopromo, promo, throttled, aware in rows:
        wins = promo.total_ops < nopromo.total_ops
        verdicts[k] = wins
        lines.append(
            f"{k:>4} {nopromo.total_ops:>12} {promo.total_ops:>12} "
            f"{throttled.total_ops:>12} {aware.total_ops:>15} "
            f"{str(wins):>12}"
        )
    write_artifact(out_dir, "a2_register_pressure.txt", "\n".join(lines))

    # small register file: spills eat the gains (the paper's loss)
    assert not verdicts[KS[0]], "promotion should lose on a tiny machine"
    # big register file: the 28 accumulators fit and promotion wins
    assert verdicts[KS[-1]], "promotion should win with plenty of registers"

    for k, nopromo, promo, throttled, aware in rows:
        # the static throttle never does worse than full promotion
        assert throttled.total_ops <= promo.total_ops
        # the section 3.4 pressure-aware throttle recovers the loss: it
        # must stay within a whisker of the better of the two baselines
        best_baseline = min(nopromo.total_ops, promo.total_ops)
        assert aware.total_ops <= best_baseline * 1.05, (k, aware.total_ops)

"""Figure 6 — Stores executed, 14 programs x 4 variants.

Paper shape being reproduced:

* "in several of the applications, promotion removed a large fraction of
  the stores": mlink (57%+ in the paper) leads, compress/go/clean/indent
  follow;
* tsp, allroots, dhrystone remove nothing;
* bc and fft gain *extra* store removal from points-to analysis (the
  paper's largest precision gaps: bc 8.8% -> 27.5%);
* "register promotion's main benefit seems to be transforming multiple
  stores of a promoted variable in a loop to a single store at the
  loop's exit" — store removal outpaces load removal on the winners.
"""

from benchmarks.conftest import write_artifact
from repro.harness import figure_rows, format_figure, summary_line


def rows_by_program(results, metric, analysis="modref"):
    return {
        row.program: row
        for row in figure_rows(results, metric)
        if row.analysis == analysis
    }


def test_fig6_stores(benchmark, suite_results, out_dir):
    rows = benchmark.pedantic(
        lambda: figure_rows(suite_results, "stores"), rounds=1, iterations=1
    )
    table = format_figure(suite_results, "stores")
    write_artifact(out_dir, "fig6_stores.txt", table)
    print(summary_line(rows))

    modref = rows_by_program(suite_results, "stores", "modref")
    pointer = rows_by_program(suite_results, "stores", "pointer")

    # zero-opportunity programs
    for name in ("tsp", "allroots", "dhrystone"):
        assert modref[name].difference == 0, name

    # mlink removes over half its stores (paper: 57.4%)
    assert modref["mlink"].percent_removed > 50.0

    # large fraction removed in several applications
    big_winners = [
        name for name, row in modref.items() if row.percent_removed > 20.0
    ]
    assert len(big_winners) >= 4

    # the paper's precision gaps: points-to unlocks extra store removal
    # on bc (8.83 -> 27.52) and fft (12.7 -> 25.5 here)
    assert pointer["bc"].percent_removed > modref["bc"].percent_removed + 5
    assert pointer["fft"].percent_removed > modref["fft"].percent_removed + 5

    # ... and is identical on the programs without aliased scalars
    for name in ("clean", "indent", "go", "compress"):
        assert pointer[name].difference == modref[name].difference, name

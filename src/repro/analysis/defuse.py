"""Def-use summaries over non-SSA IL.

Light-weight indexes used by several passes: where each virtual register is
defined and used, and which registers are defined exactly once (near-SSA —
the front end emits most temporaries that way, which is what lets the
points-to analysis run without full SSA construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.instructions import Instr, VReg


@dataclass
class DefUse:
    """Definition and use sites for every register of one function.

    A *site* is ``(block label, instruction index)``.
    """

    defs: dict[VReg, list[tuple[str, int]]] = field(default_factory=dict)
    uses: dict[VReg, list[tuple[str, int]]] = field(default_factory=dict)

    def single_def(self, reg: VReg) -> tuple[str, int] | None:
        sites = self.defs.get(reg, [])
        return sites[0] if len(sites) == 1 else None

    def is_dead(self, reg: VReg) -> bool:
        return not self.uses.get(reg)

    def use_count(self, reg: VReg) -> int:
        return len(self.uses.get(reg, []))


def compute_def_use(func: Function) -> DefUse:
    info = DefUse()
    for param in func.params:
        info.defs.setdefault(param, []).append(("<param>", -1))
    for label, block in func.blocks.items():
        for idx, instr in enumerate(block.instrs):
            dest = instr.dest
            if dest is not None:
                info.defs.setdefault(dest, []).append((label, idx))
            for reg in instr.uses():
                info.uses.setdefault(reg, []).append((label, idx))
    return info


def defining_instr(func: Function, site: tuple[str, int]) -> Instr | None:
    label, idx = site
    if label == "<param>":
        return None
    return func.block(label).instrs[idx]

"""Program analyses: dominators, loops, call graph, liveness, SSA,
interprocedural MOD/REF, and points-to."""

from .callgraph import CallGraph, SCCInfo, build_call_graph, condense_sccs
from .defuse import DefUse, compute_def_use
from .dominators import DominatorInfo, compute_dominators, dominance_frontiers
from .liveness import Liveness, compute_liveness
from .loops import Loop, LoopForest, find_loops, normalize_loops
from .modref import ModRefResult, ModRefSummary, run_modref
from .pointsto import PointsToResult, apply_points_to, run_points_to
from .ssa import SSAInfo, construct_ssa, destruct_ssa
from .tagrefine import RefineStats, refine_memory_ops

__all__ = [
    "CallGraph",
    "DefUse",
    "DominatorInfo",
    "Liveness",
    "Loop",
    "LoopForest",
    "ModRefResult",
    "ModRefSummary",
    "PointsToResult",
    "RefineStats",
    "SCCInfo",
    "SSAInfo",
    "apply_points_to",
    "build_call_graph",
    "compute_def_use",
    "compute_dominators",
    "compute_liveness",
    "condense_sccs",
    "construct_ssa",
    "destruct_ssa",
    "dominance_frontiers",
    "find_loops",
    "normalize_loops",
    "refine_memory_ops",
    "run_modref",
    "run_points_to",
]

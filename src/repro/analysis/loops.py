"""Natural-loop discovery and loop-shape normalization.

The paper's compiler "automatically inserts landing pads and exits as part
of constructing the control-flow graph; empty blocks are automatically
removed after optimization" (section 3.2).  We reproduce that contract:

* :func:`find_loops` discovers natural loops from back edges (an edge
  ``t -> h`` where ``h`` dominates ``t``) and builds the loop-nest forest;
* :func:`normalize_loops` rewrites the CFG so every loop has a *landing
  pad* (a unique predecessor block outside the loop whose only successor is
  the header) and *dedicated exit blocks* (every edge leaving the loop goes
  to a block all of whose predecessors are inside the loop).

Register promotion inserts its promote-loads in landing pads and its
demote-stores in dedicated exits; the ``clean`` pass later erases any that
end up empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AnalysisError
from ..ir.cfg import predecessors
from ..ir.function import Function
from ..ir.instructions import Jump
from .dominators import DominatorInfo, compute_dominators


@dataclass
class Loop:
    """One natural loop.

    ``blocks`` contains every label in the loop body, including the header.
    ``parent`` is the innermost enclosing loop, if any.
    """

    header: str
    blocks: set[str]
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)
    depth: int = 1
    #: latch blocks: sources of back edges into the header
    latches: list[str] = field(default_factory=list)

    def contains(self, label: str) -> bool:
        return label in self.blocks

    def is_outermost(self) -> bool:
        return self.parent is None

    def exit_edges(self, func: Function) -> list[tuple[str, str]]:
        """Edges ``(src, dst)`` with ``src`` inside and ``dst`` outside."""
        edges: list[tuple[str, str]] = []
        for label in sorted(self.blocks):
            for succ in func.block(label).successors():
                if succ not in self.blocks:
                    edges.append((label, succ))
        return edges

    def exit_blocks(self, func: Function) -> list[str]:
        """Distinct targets of exit edges, in a stable order."""
        seen: list[str] = []
        for _, dst in self.exit_edges(func):
            if dst not in seen:
                seen.append(dst)
        return seen

    def preheader(self, func: Function) -> str:
        """The landing pad: the unique *reachable* predecessor of the
        header from outside the loop.  Requires :func:`normalize_loops`
        to have run.  (Unreachable predecessors are ignored — they never
        execute and cleaning removes them.)
        """
        from ..ir.cfg import reachable_labels

        preds = predecessors(func)
        live = reachable_labels(func)
        outside = [
            p for p in preds[self.header]
            if p not in self.blocks and p in live
        ]
        if len(outside) != 1:
            raise AnalysisError(
                f"loop {self.header} has {len(outside)} outside predecessors; "
                "run normalize_loops first"
            )
        return outside[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Loop {self.header} depth={self.depth} |blocks|={len(self.blocks)}>"


@dataclass
class LoopForest:
    """All loops of one function plus lookup structures."""

    loops: list[Loop]
    #: innermost loop containing each label (absent if not in any loop)
    innermost: dict[str, Loop]

    def top_level(self) -> list[Loop]:
        return [l for l in self.loops if l.parent is None]

    def loop_with_header(self, header: str) -> Loop:
        for loop in self.loops:
            if loop.header == header:
                return loop
        raise AnalysisError(f"no loop with header {header}")

    def loops_outermost_first(self) -> list[Loop]:
        return sorted(self.loops, key=lambda l: l.depth)

    def loops_innermost_first(self) -> list[Loop]:
        return sorted(self.loops, key=lambda l: -l.depth)

    def depth_of(self, label: str) -> int:
        loop = self.innermost.get(label)
        return loop.depth if loop is not None else 0


def find_loops(func: Function, dom: DominatorInfo | None = None) -> LoopForest:
    """Discover natural loops and build the nest forest.

    Loops sharing a header are merged into one loop with several latches,
    matching the usual natural-loop convention.
    """
    if dom is None:
        dom = compute_dominators(func)
    preds = predecessors(func)

    # back edges: t -> h with h dominating t (both reachable)
    back_edges: list[tuple[str, str]] = []
    for label in dom.idom:
        for succ in func.block(label).successors():
            if succ in dom.idom and dom.dominates(succ, label):
                back_edges.append((label, succ))

    by_header: dict[str, Loop] = {}
    for latch, header in back_edges:
        loop = by_header.get(header)
        if loop is None:
            loop = Loop(header=header, blocks={header})
            by_header[header] = loop
        loop.latches.append(latch)
        # walk backwards from the latch collecting the body
        stack = [latch]
        while stack:
            node = stack.pop()
            if node in loop.blocks:
                continue
            loop.blocks.add(node)
            stack.extend(p for p in preds[node] if p in dom.idom)

    loops = sorted(by_header.values(), key=lambda l: (len(l.blocks), l.header))

    # nesting: the parent is the smallest strictly-larger loop containing it
    for idx, inner in enumerate(loops):
        for outer in loops[idx + 1:]:
            if inner.header in outer.blocks and len(outer.blocks) > len(inner.blocks):
                inner.parent = outer
                outer.children.append(inner)
                break

    for loop in loops:
        depth = 1
        cursor = loop.parent
        while cursor is not None:
            depth += 1
            cursor = cursor.parent
        loop.depth = depth

    innermost: dict[str, Loop] = {}
    for loop in sorted(loops, key=lambda l: l.depth):
        for label in loop.blocks:
            innermost[label] = loop  # deeper loops overwrite shallower ones

    return LoopForest(loops=loops, innermost=innermost)


def normalize_loops(func: Function, max_rounds: int | None = None) -> LoopForest:
    """Give every loop a landing pad and dedicated exit blocks.

    Runs to a fixpoint because inserting a block can change other loops'
    bodies.  Returns the final :class:`LoopForest` (computed on the
    normalized CFG).
    """
    if max_rounds is None:
        # each round performs at least one edit and each edit adds one
        # block; the number of edits is bounded by entries + exit edges
        max_rounds = 8 * len(func.blocks) + 64
    for _ in range(max_rounds):
        forest = find_loops(func)
        if not _normalize_once(func, forest):
            return forest
    raise AnalysisError(f"loop normalization did not converge in {func.name}")


def _normalize_once(func: Function, forest: LoopForest) -> bool:
    """One normalization round; returns True if the CFG changed."""
    from ..ir.cfg import reachable_labels

    preds = predecessors(func)
    live = reachable_labels(func)
    changed = False

    for loop in forest.loops:
        outside_preds = [
            p for p in preds[loop.header]
            if p not in loop.blocks and p in live
        ]
        needs_pad = len(outside_preds) != 1
        if not needs_pad and outside_preds:
            only = func.block(outside_preds[0])
            # the landing pad must fall through solely into the header so
            # promote-loads inserted there execute iff the loop is entered
            needs_pad = only.successors() != (loop.header,)
        if needs_pad:
            _insert_landing_pad(func, loop, outside_preds)
            return True

        for src, dst in loop.exit_edges(func):
            dst_preds = preds[dst]
            if any(p not in loop.blocks for p in dst_preds):
                func.split_edge(src, dst, hint="X")
                changed = True
                return True
    return changed


def _insert_landing_pad(func: Function, loop: Loop, outside_preds: list[str]) -> None:
    """Create a block P with ``P -> header`` and retarget all entry edges.

    When the loop header is the function entry (so the loop has no outside
    predecessor at all), the landing pad becomes the new entry block.
    """
    from ..ir.instructions import retarget

    pad = func.new_block("P")
    pad.append(Jump(loop.header))
    header_block = func.block(loop.header)
    if header_block.phis():
        raise AnalysisError(
            "normalize_loops does not support SSA phis on loop headers; "
            "normalize before SSA construction"
        )
    for pred_label in outside_preds:
        term = func.block(pred_label).terminator
        if term is None:
            raise AnalysisError(f"unterminated block {pred_label}")
        # only retarget the edges that enter the loop header
        retarget(term, loop.header, pad.label)
    if loop.header == func.entry:
        func.entry = pad.label

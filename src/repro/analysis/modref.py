"""Interprocedural MOD/REF analysis (paper, section 4).

The analyzer improves the front end's conservative tag sets in two steps:

1. *Limit pointer-based memory operations.*  A pointer can only hold the
   address of a location whose address was taken, so the universal tag set
   on a ``load``/``store`` shrinks to the address-taken tags — and the tag
   of a local variable is only placed in operations appearing in
   *descendants* (in the call graph) of the function that creates it.

2. *Limit procedure calls.*  Each call receives the MOD and REF tag sets
   of its callee: the union of tags the callee (and everything it can
   transitively call) may store to or load from.  Function summaries are
   computed per call-graph SCC in reverse topological order, so callees
   are always summarized before their callers; all members of an SCC share
   one summary.

Indirect calls are conservatively assumed to target any addressed
function.  Calls to intrinsics keep the policy summaries the front end
seeded, with universal sets materialized to the visible address-taken
universe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diag import ledger as diag_ledger
from ..intrinsics import is_intrinsic
from ..ir.instructions import Call, CLoad, MemLoad, MemStore, ScalarLoad, ScalarStore
from ..ir.module import Module
from ..ir.tags import Tag, TagSet
from .callgraph import CallGraph, SCCInfo, build_call_graph, condense_sccs


@dataclass
class ModRefSummary:
    """Per-function MOD/REF facts."""

    mod: frozenset[Tag] = frozenset()
    ref: frozenset[Tag] = frozenset()


@dataclass
class ModRefResult:
    """Everything the MOD/REF analyzer learned."""

    summaries: dict[str, ModRefSummary] = field(default_factory=dict)
    #: address-taken tags visible to each function (the universe used when
    #: materializing a universal tag set inside that function)
    visible: dict[str, frozenset[Tag]] = field(default_factory=dict)
    call_graph: CallGraph | None = None
    sccs: SCCInfo | None = None


def run_modref(module: Module, apply_to_ir: bool = True) -> ModRefResult:
    """Run the analysis; when ``apply_to_ir`` rewrite every pointer-based
    operation's tag set and every call's MOD/REF summary in place."""
    graph = build_call_graph(module)
    sccs = condense_sccs(graph)
    visible = _visible_universe(module, graph)

    if apply_to_ir:
        _limit_pointer_operations(module, visible)

    summaries = _function_summaries(module, graph, sccs, visible)

    if apply_to_ir:
        _limit_calls(module, graph, summaries, visible)

    if diag_ledger.current_ledger() is not None:
        # summary provenance: the MOD/REF sets every caller's ledger
        # decisions (ambiguous-via-call) trace back to
        for name in sorted(summaries):
            summary = summaries[name]
            diag_ledger.record(
                "modref", name, "summarized",
                detail={
                    "mod": diag_ledger.trim_tag_names(summary.mod),
                    "ref": diag_ledger.trim_tag_names(summary.ref),
                    "recursive": sccs.is_recursive(name),
                },
            )

    return ModRefResult(
        summaries=summaries,
        visible=visible,
        call_graph=graph,
        sccs=sccs,
    )


# ---------------------------------------------------------------------------
# the address-taken universe, per function
# ---------------------------------------------------------------------------

def _visible_universe(
    module: Module, graph: CallGraph
) -> dict[str, frozenset[Tag]]:
    """Tags a pointer inside each function could possibly address.

    Globals (address-taken ones), heap tags, and the address-taken locals
    of every call-graph *ancestor* of the function (including itself): a
    local's address can only flow downward through calls made while its
    frame is live.
    """
    shared: set[Tag] = set()
    for var in module.globals.values():
        if var.tag in module.address_taken:
            shared.add(var.tag)
    shared.update(module.heap_tags.values())

    # descendants[f]: every function reachable from f (including f)
    descendants: dict[str, set[str]] = {}
    for name in graph.functions():
        seen = {name}
        stack = [name]
        while stack:
            node = stack.pop()
            for callee in graph.callees.get(node, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        descendants[name] = seen

    visible: dict[str, set[Tag]] = {
        name: set(shared) for name in graph.functions()
    }
    for creator, reachable in descendants.items():
        func = module.functions[creator]
        local_addr_taken = [
            t for t in func.local_tags if t in module.address_taken
        ]
        for name in reachable:
            visible[name].update(local_addr_taken)

    return {name: frozenset(tags) for name, tags in visible.items()}


# ---------------------------------------------------------------------------
# step 1: pointer-based operations
# ---------------------------------------------------------------------------

def _limit_pointer_operations(
    module: Module, visible: dict[str, frozenset[Tag]]
) -> None:
    for func in module.functions.values():
        universe = TagSet.from_iterable(visible[func.name])
        for block in func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, (MemLoad, MemStore)) and instr.tags.universal:
                    # a finite set from the front end (a named array, a
                    # struct) is already at least this precise; only the
                    # universal sets need materializing
                    instr.tags = universe


# ---------------------------------------------------------------------------
# step 2: function summaries over SCCs
# ---------------------------------------------------------------------------

def _local_effects(
    module: Module, name: str, visible: frozenset[Tag]
) -> tuple[set[Tag], set[Tag]]:
    """MOD/REF facts from the function's own memory operations and its
    calls to intrinsics (externals)."""
    func = module.functions[name]
    mod: set[Tag] = set()
    ref: set[Tag] = set()
    for instr in func.instructions():
        if isinstance(instr, MemLoad):
            ref.update(instr.tags.materialize(visible))
        elif isinstance(instr, MemStore):
            mod.update(instr.tags.materialize(visible))
        elif isinstance(instr, (ScalarLoad, CLoad)):
            ref.add(instr.tag)
        elif isinstance(instr, ScalarStore):
            mod.add(instr.tag)
        elif isinstance(instr, Call):
            callee = instr.callee
            if callee is not None and callee in module.functions:
                continue  # summarized via the SCC pass
            # intrinsic or unknown external: use the seeded policy sets
            mod.update(instr.mod.materialize(visible))
            ref.update(instr.ref.materialize(visible))
    return mod, ref


def _function_summaries(
    module: Module,
    graph: CallGraph,
    sccs: SCCInfo,
    visible: dict[str, frozenset[Tag]],
) -> dict[str, ModRefSummary]:
    summaries: dict[str, ModRefSummary] = {}
    for component in sccs.components:  # reverse topological: callees first
        mod: set[Tag] = set()
        ref: set[Tag] = set()
        for name in component:
            own_mod, own_ref = _local_effects(module, name, visible[name])
            mod |= own_mod
            ref |= own_ref
            for callee in graph.callees.get(name, ()):
                summary = summaries.get(callee)
                if summary is not None:  # absent only within this SCC
                    mod |= summary.mod
                    ref |= summary.ref
        summary = ModRefSummary(mod=frozenset(mod), ref=frozenset(ref))
        for name in component:
            summaries[name] = summary
    return summaries


# ---------------------------------------------------------------------------
# step 3: rewrite call sites
# ---------------------------------------------------------------------------

def _limit_calls(
    module: Module,
    graph: CallGraph,
    summaries: dict[str, ModRefSummary],
    visible: dict[str, frozenset[Tag]],
) -> None:
    addressed = sorted(module.addressed_functions & set(module.functions))
    for func in module.functions.values():
        universe = visible[func.name]
        for block in func.blocks.values():
            for instr in block.instrs:
                if not isinstance(instr, Call):
                    continue
                if instr.is_indirect():
                    mod: set[Tag] = set()
                    ref: set[Tag] = set()
                    for target in addressed:
                        mod |= summaries[target].mod
                        ref |= summaries[target].ref
                    instr.mod = TagSet.from_iterable(mod)
                    instr.ref = TagSet.from_iterable(ref)
                    continue
                callee = instr.callee
                assert callee is not None
                if callee in module.functions:
                    summary = summaries[callee]
                    instr.mod = TagSet.from_iterable(summary.mod)
                    instr.ref = TagSet.from_iterable(summary.ref)
                elif is_intrinsic(callee):
                    instr.mod = instr.mod.materialize(universe)
                    instr.ref = instr.ref.materialize(universe)
                else:
                    instr.mod = instr.mod.materialize(universe)
                    instr.ref = instr.ref.materialize(universe)

"""Dominator analysis.

The paper finds loop structure "using an algorithm due to Lengauer and
Tarjan" — we implement exactly that: the Lengauer–Tarjan algorithm with
simple path compression (the O(E log B) variant), plus the derived
artifacts every client needs: the dominator tree, dominance queries, and
dominance frontiers (used by SSA construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cfg import predecessors
from ..ir.function import Function


@dataclass
class DominatorInfo:
    """Immediate dominators and the dominator tree for one function.

    ``idom[label]`` is the immediate dominator of ``label``; the entry block
    maps to itself.  Unreachable blocks do not appear.
    """

    entry: str
    idom: dict[str, str]
    children: dict[str, list[str]] = field(default_factory=dict)
    #: depth of each node in the dominator tree (entry = 0)
    depth: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.children:
            self.children = {label: [] for label in self.idom}
            for label, parent in self.idom.items():
                if label != self.entry:
                    self.children[parent].append(label)
        if not self.depth:
            self.depth = {self.entry: 0}
            stack = [self.entry]
            while stack:
                node = stack.pop()
                for child in self.children[node]:
                    self.depth[child] = self.depth[node] + 1
                    stack.append(child)

    def dominates(self, a: str, b: str) -> bool:
        """Does ``a`` dominate ``b``?  (Reflexive: a dominates itself.)"""
        while self.depth.get(b, -1) > self.depth.get(a, -1):
            b = self.idom[b]
        return a == b

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def dom_tree_preorder(self) -> list[str]:
        order: list[str] = []
        stack = [self.entry]
        while stack:
            node = stack.pop()
            order.append(node)
            # reversed so children pop in their natural order
            stack.extend(reversed(self.children[node]))
        return order


def compute_dominators(func: Function) -> DominatorInfo:
    """Lengauer–Tarjan with path compression.

    Follows the classic presentation: number nodes by DFS, compute
    semidominators in reverse DFS order using a link-eval forest, then
    resolve immediate dominators in a final forward pass.
    """
    entry = func.entry
    preds = predecessors(func)

    # --- step 1: DFS numbering ------------------------------------------------
    parent: dict[str, str] = {}
    semi: dict[str, int] = {}
    vertex: list[str] = []  # vertex[i] = node with dfs number i

    stack: list[tuple[str, str | None]] = [(entry, None)]
    while stack:
        node, par = stack.pop()
        if node in semi:
            continue
        semi[node] = len(vertex)
        vertex.append(node)
        if par is not None:
            parent[node] = par
        for succ in reversed(func.block(node).successors()):
            if succ not in semi:
                stack.append((succ, node))

    # --- link-eval forest with path compression -----------------------------
    ancestor: dict[str, str | None] = {v: None for v in vertex}
    label: dict[str, str] = {v: v for v in vertex}

    def compress(v: str) -> None:
        # Iterative path compression: find the path to the forest root,
        # then fold labels root-to-leaf.
        path: list[str] = []
        while ancestor[v] is not None and ancestor[ancestor[v]] is not None:  # type: ignore[index]
            path.append(v)
            v = ancestor[v]  # type: ignore[assignment]
        for node in reversed(path):
            anc = ancestor[node]
            assert anc is not None
            if semi[label[anc]] < semi[label[node]]:
                label[node] = label[anc]
            ancestor[node] = ancestor[anc]

    def eval_(v: str) -> str:
        if ancestor[v] is None:
            return v
        compress(v)
        return label[v]

    bucket: dict[str, list[str]] = {v: [] for v in vertex}
    idom: dict[str, str] = {}

    # --- steps 2 & 3: semidominators, partial idoms -------------------------
    for w in reversed(vertex[1:]):
        for v in preds[w]:
            if v not in semi:  # unreachable predecessor
                continue
            u = eval_(v)
            if semi[u] < semi[w]:
                semi[w] = semi[u]
        bucket[vertex[semi[w]]].append(w)
        ancestor[w] = parent[w]
        for v in bucket[parent[w]]:
            u = eval_(v)
            idom[v] = u if semi[u] < semi[v] else parent[w]
        bucket[parent[w]].clear()

    # --- step 4: finalize idoms ----------------------------------------------
    for w in vertex[1:]:
        if idom[w] != vertex[semi[w]]:
            idom[w] = idom[idom[w]]
    idom[entry] = entry

    return DominatorInfo(entry=entry, idom=idom)


def dominance_frontiers(func: Function, dom: DominatorInfo | None = None) -> dict[str, set[str]]:
    """Cytron et al.'s dominance-frontier computation.

    ``DF[b]`` is the set of blocks where b's dominance stops — the join
    points where SSA construction must place phi nodes for definitions in b.
    """
    if dom is None:
        dom = compute_dominators(func)
    preds = predecessors(func)
    frontier: dict[str, set[str]] = {label: set() for label in dom.idom}
    for label in dom.idom:
        incoming = [p for p in preds[label] if p in dom.idom]
        if len(incoming) < 2:
            continue
        for pred in incoming:
            runner = pred
            while runner != dom.idom[label]:
                frontier[runner].add(label)
                runner = dom.idom[runner]
    return frontier

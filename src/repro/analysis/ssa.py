"""SSA construction and destruction.

The paper's points-to analyzer converts each function to SSA form and
propagates pointer values over SSA names; our SCCP pass uses the same
machinery.  Construction is the classic Cytron et al. algorithm:

1. place phi nodes at the iterated dominance frontier of each variable's
   definition sites;
2. rename along a preorder walk of the dominator tree, keeping a stack of
   reaching definitions per variable.

Destruction replaces each phi with copies at the end of the predecessors.
Critical edges must be split first (:func:`repro.ir.cfg.split_critical_edges`)
or copies could execute on paths that bypass the phi.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IRError
from ..ir.cfg import predecessors, split_critical_edges
from ..ir.function import Function
from ..ir.instructions import Mov, Phi, VReg
from .dominators import DominatorInfo, compute_dominators, dominance_frontiers


@dataclass
class SSAInfo:
    """Bookkeeping produced by :func:`construct_ssa`.

    ``origin`` maps every SSA name back to the pre-SSA register it
    versions; names that were already single-assignment map to themselves.
    """

    origin: dict[VReg, VReg] = field(default_factory=dict)

    def origin_of(self, reg: VReg) -> VReg:
        return self.origin.get(reg, reg)


def construct_ssa(func: Function) -> SSAInfo:
    """Put ``func`` into SSA form in place."""
    dom = compute_dominators(func)
    frontiers = dominance_frontiers(func, dom)
    preds = predecessors(func)

    # -- collect definition sites per register --------------------------------
    def_blocks: dict[VReg, set[str]] = {}
    def_counts: dict[VReg, int] = {}
    for param in func.params:
        def_blocks.setdefault(param, set()).add(func.entry)
        def_counts[param] = def_counts.get(param, 0) + 1
    for label, block in func.blocks.items():
        if label not in dom.idom:
            continue  # unreachable
        for instr in block.instrs:
            if instr.dest is not None:
                def_blocks.setdefault(instr.dest, set()).add(label)
                def_counts[instr.dest] = def_counts.get(instr.dest, 0) + 1

    # -- phase 1: phi placement at iterated dominance frontiers ---------------
    phi_for: dict[tuple[str, VReg], Phi] = {}
    for var, blocks in def_blocks.items():
        if def_counts.get(var, 0) <= 1 and len(blocks) <= 1:
            # single static definition: no phis needed; renaming still
            # handles uses dominated by the def
            continue
        work = list(blocks)
        placed: set[str] = set()
        while work:
            block_label = work.pop()
            for join in frontiers.get(block_label, ()):
                if join in placed:
                    continue
                placed.add(join)
                phi = Phi(var, {p: var for p in preds[join] if p in dom.idom})
                func.block(join).instrs.insert(0, phi)
                phi_for[(join, var)] = phi
                if join not in def_blocks[var]:
                    work.append(join)

    # -- phase 2: renaming ------------------------------------------------------
    stacks: dict[VReg, list[VReg]] = {var: [] for var in def_blocks}
    info = SSAInfo()

    def fresh_name(var: VReg) -> VReg:
        new = func.new_vreg(var.hint)
        info.origin[new] = info.origin.get(var, var)
        return new

    for param in func.params:
        stacks[param].append(param)
        info.origin[param] = param

    def top(var: VReg) -> VReg:
        stack = stacks.get(var)
        if not stack:
            # use of a register with no dominating definition: leave it —
            # the verifier in strict mode will complain if it matters
            return var
        return stack[-1]

    # iterative preorder walk over the dominator tree with explicit
    # "pop" events so stacks unwind exactly as in the recursive version
    work: list[tuple[str, bool]] = [(func.entry, False)]
    while work:
        label, leaving = work.pop()
        block = func.block(label)
        if leaving:
            for instr in block.instrs:
                dest = instr.dest
                if dest is None:
                    continue
                orig = info.origin.get(dest, dest)
                if stacks.get(orig):
                    stacks[orig].pop()
            continue

        work.append((label, True))

        for instr in block.instrs:
            if not isinstance(instr, Phi):
                mapping = {}
                for reg in set(instr.uses()):
                    new = top(reg)
                    if new != reg:
                        mapping[reg] = new
                if mapping:
                    instr.replace_uses(mapping)
            dest = instr.dest
            if dest is not None:
                if dest in stacks:
                    new_dest = fresh_name(dest)
                    stacks[dest].append(new_dest)
                    _set_dest(instr, new_dest)
                else:
                    # a register defined once and never phi-merged keeps
                    # its name; still record a (trivial) stack so nested
                    # uses resolve to it
                    stacks[dest] = [dest]
                    info.origin[dest] = dest

        for succ in block.successors():
            for instr in func.block(succ).phis():
                orig = info.origin.get(instr.dst, instr.dst)
                if label in instr.incoming:
                    instr.incoming[label] = top(orig)

        for child in _dom_children(dom, label):
            work.append((child, False))

    return info


def _dom_children(dom: DominatorInfo, label: str) -> list[str]:
    return dom.children.get(label, [])


def _set_dest(instr: object, new_dest: VReg) -> None:
    """Rewrite an instruction's destination register in place."""
    if hasattr(instr, "dst"):
        instr.dst = new_dest  # type: ignore[attr-defined]
    else:
        raise IRError(f"cannot set destination of {instr}")


def destruct_ssa(func: Function) -> None:
    """Replace phis with copies, leaving conventional (non-SSA) IL.

    Splits critical edges first, then for each phi ``d = phi[p_i: r_i]``
    appends ``d = mov r_i`` at the end of each predecessor ``p_i`` (before
    its terminator) and deletes the phi.  Parallel-copy hazards (swap
    problems) are handled by routing every phi of a block through fresh
    temporaries when any phi source is also a phi destination of the same
    block.
    """
    split_critical_edges(func)
    preds = predecessors(func)

    for label in list(func.blocks):
        block = func.blocks[label]
        phis = block.phis()
        if not phis:
            continue
        dests = {phi.dst for phi in phis}
        hazardous = any(src in dests for phi in phis for src in phi.incoming.values())

        for pred_label in preds[label]:
            pairs: list[tuple[VReg, VReg]] = []
            for phi in phis:
                src = phi.incoming.get(pred_label)
                if src is None:
                    raise IRError(
                        f"{func.name}/{label}: phi missing edge {pred_label}"
                    )
                pairs.append((phi.dst, src))
            pred_block = func.block(pred_label)
            copies: list[Mov] = []
            if hazardous:
                # parallel-copy semantics: read every source into a fresh
                # temporary before writing any destination
                temps = [func.new_vreg("swp") for _ in pairs]
                copies.extend(Mov(t, src) for t, (_, src) in zip(temps, pairs))
                copies.extend(Mov(dst, t) for t, (dst, _) in zip(temps, pairs))
            else:
                copies.extend(Mov(dst, src) for dst, src in pairs)
            insert_at = len(pred_block.instrs) - 1
            pred_block.instrs[insert_at:insert_at] = copies
        block.instrs = [i for i in block.instrs if not isinstance(i, Phi)]

"""Backward liveness analysis.

Standard iterative bit-set data flow over the CFG:

    LIVEOUT(b) = union over successors s of LIVEIN(s)
    LIVEIN(b)  = UEVAR(b) | (LIVEOUT(b) - VARKILL(b))

Phi nodes get the usual treatment: a phi's operands are live out of the
corresponding predecessor, not live into the phi's own block.  The register
allocator consumes this analysis to build the interference graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cfg import postorder, predecessors
from ..ir.function import Function
from ..ir.instructions import Phi, VReg


@dataclass
class Liveness:
    live_in: dict[str, frozenset[VReg]]
    live_out: dict[str, frozenset[VReg]]


def compute_liveness(func: Function) -> Liveness:
    order = postorder(func)  # backward problems converge fastest in postorder
    labels = set(order)

    uevar: dict[str, set[VReg]] = {}
    varkill: dict[str, set[VReg]] = {}
    # registers used by phis in successor blocks, keyed by the predecessor
    # through which the value flows
    phi_uses_out: dict[str, set[VReg]] = {label: set() for label in labels}
    phi_defs: dict[str, set[VReg]] = {label: set() for label in labels}

    for label in order:
        block = func.block(label)
        upward: set[VReg] = set()
        killed: set[VReg] = set()
        for instr in block.instrs:
            if isinstance(instr, Phi):
                phi_defs[label].add(instr.dst)
                killed.add(instr.dst)  # defined at the top of the block
                for pred_label, reg in instr.incoming.items():
                    if pred_label in labels:
                        phi_uses_out[pred_label].add(reg)
                continue
            for reg in instr.uses():
                if reg not in killed:
                    upward.add(reg)
            if instr.dest is not None:
                killed.add(instr.dest)
        uevar[label] = upward
        varkill[label] = killed

    live_in: dict[str, set[VReg]] = {label: set() for label in labels}
    live_out: dict[str, set[VReg]] = {label: set() for label in labels}

    changed = True
    while changed:
        changed = False
        for label in order:
            block = func.block(label)
            out: set[VReg] = set(phi_uses_out[label])
            for succ in block.successors():
                if succ in labels:
                    out |= live_in[succ] - phi_defs[succ]
            new_in = uevar[label] | (out - varkill[label] - phi_defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True

    return Liveness(
        live_in={l: frozenset(s) for l, s in live_in.items()},
        live_out={l: frozenset(s) for l, s in live_out.items()},
    )


def live_across_calls(func: Function, liveness: Liveness | None = None) -> set[VReg]:
    """Registers live across at least one call site — used by spill
    heuristics (caller-saved pressure)."""
    from ..ir.instructions import Call

    if liveness is None:
        liveness = compute_liveness(func)
    result: set[VReg] = set()
    for label, block in func.blocks.items():
        live = set(liveness.live_out[label])
        for instr in reversed(block.instrs):
            if instr.dest is not None:
                live.discard(instr.dest)
            if isinstance(instr, Call):
                result |= live
            live.update(instr.uses())
    return result

"""Call graph construction and SCC condensation.

The MOD/REF analyzer (paper section 4) computes function tag sets by
"identifying the strongly-connected components of the call graph and
calculating the tag set of each SCC ... processing the SCCs in reverse
topological order".  This module provides exactly that machinery.

Indirect calls are conservatively assumed to target any *addressed*
function (a function whose address is taken), matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.instructions import Call
from ..ir.module import Module


@dataclass
class CallGraph:
    """Static call graph of a module.

    ``callees[f]`` lists the functions ``f`` may call that are defined in
    the module; calls to external/intrinsic names are recorded separately
    in ``external_callees``.
    """

    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)
    external_callees: dict[str, set[str]] = field(default_factory=dict)
    #: functions containing at least one indirect call
    has_indirect_call: set[str] = field(default_factory=set)

    def functions(self) -> list[str]:
        return list(self.callees)


def build_call_graph(module: Module) -> CallGraph:
    graph = CallGraph()
    defined = set(module.functions)
    addressed = sorted(module.addressed_functions & defined)

    for func in module.functions.values():
        graph.callees.setdefault(func.name, set())
        graph.callers.setdefault(func.name, set())
        graph.external_callees.setdefault(func.name, set())

    for func in module.functions.values():
        for instr in func.instructions():
            if not isinstance(instr, Call):
                continue
            if instr.is_indirect():
                graph.has_indirect_call.add(func.name)
                for target in addressed:
                    graph.callees[func.name].add(target)
                continue
            callee = instr.callee
            assert callee is not None
            if callee in defined:
                graph.callees[func.name].add(callee)
            else:
                graph.external_callees[func.name].add(callee)

    for caller, callees in graph.callees.items():
        for callee in callees:
            graph.callers[callee].add(caller)
    return graph


@dataclass
class SCCInfo:
    """Strongly connected components of the call graph.

    ``components`` is in *reverse topological order*: every function a
    component calls lives in an earlier component (or the component
    itself).  Processing components in list order therefore sees callees
    before callers — the order the MOD/REF analyzer needs.
    """

    components: list[list[str]]
    component_of: dict[str, int]

    def is_recursive(self, name: str) -> bool:
        """Is ``name`` part of a call cycle (including self-recursion)?"""
        comp = self.components[self.component_of[name]]
        return len(comp) > 1 or name in self._self_loops

    _self_loops: set[str] = field(default_factory=set)


def condense_sccs(graph: CallGraph) -> SCCInfo:
    """Tarjan's SCC algorithm, iterative, emitting components in reverse
    topological order (Tarjan emits them exactly that way)."""
    index_counter = 0
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    component_of: dict[str, int] = {}

    nodes = sorted(graph.callees)

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (root, sorted(graph.callees[root]), 0)
        ]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs, child_idx = work[-1]
            advanced = False
            for idx in range(child_idx, len(succs)):
                succ = succs[idx]
                work[-1] = (node, succs, idx + 1)
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(graph.callees[succ]), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                comp_id = len(components)
                components.append(component)
                for member in component:
                    component_of[member] = comp_id

    self_loops = {
        name for name, callees in graph.callees.items() if name in callees
    }
    return SCCInfo(
        components=components,
        component_of=component_of,
        _self_loops=self_loops,
    )

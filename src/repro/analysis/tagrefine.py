"""Tag-set refinement: strengthening memory opcodes after analysis.

The IL's opcode hierarchy (Table 1) encodes "increasingly more specific
knowledge".  Once interprocedural analysis has shrunk a general
``load``/``store``'s tag set to a *single scalar location*, the operation
provably accesses exactly that named scalar, so it can be strengthened to
an ``sload``/``sstore``.  This conversion is what lets points-to analysis
unlock promotions MOD/REF cannot (the paper's mlink example: once analysis
proves stores through ``X2`` cannot modify ``T1``, references to ``T1``
become explicit and ``T1`` is promotable).

Strengthening is only sound when the singleton tag names one run-time
cell:

* ``GLOBAL`` scalar tags always do;
* ``LOCAL`` scalar tags do only in the frame of their owning function,
  and only when that function is not recursive (a recursive function's
  local tag stands for many activations at once — the paper makes the
  same approximation and forgoes strong updates there).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..diag import ledger as diag_ledger
from ..ir.instructions import MemLoad, MemStore, ScalarLoad, ScalarStore
from ..ir.module import Module
from ..ir.tags import TagKind
from .callgraph import SCCInfo


@dataclass
class RefineStats:
    loads_strengthened: int = 0
    stores_strengthened: int = 0


def refine_memory_ops(module: Module, sccs: SCCInfo) -> RefineStats:
    """Strengthen singleton-scalar general memory operations in place."""
    stats = RefineStats()
    for func in module.functions.values():
        recursive = sccs.is_recursive(func.name) if func.name in sccs.component_of else False
        for block in func.blocks.values():
            for idx, instr in enumerate(block.instrs):
                if isinstance(instr, (MemLoad, MemStore)):
                    tags = instr.tags
                    if not tags.is_singleton():
                        continue
                    tag = tags.the_tag()
                    if not tag.is_scalar:
                        continue
                    if tag.kind is TagKind.LOCAL:
                        if tag.owner != func.name or recursive:
                            continue
                    elif tag.kind is not TagKind.GLOBAL:
                        continue
                    if isinstance(instr, MemLoad):
                        block.instrs[idx] = ScalarLoad(instr.dst, tag)
                        stats.loads_strengthened += 1
                        op = "load"
                    else:
                        block.instrs[idx] = ScalarStore(instr.src, tag)
                        stats.stores_strengthened += 1
                        op = "store"
                    diag_ledger.record(
                        "tagrefine", func.name, "strengthened",
                        tag=tag.name, detail={"op": op},
                    )
    return stats

"""Whole-program points-to analysis (paper, section 4).

Modeled on Ruf's context-insensitive analysis, with the paper's choices:

* the whole program is analyzed at once;
* non-local memory is modeled with explicit names (our tags);
* heap memory gets one name per allocating call site;
* the analysis is context-insensitive — one points-to set per register,
  merged over all call sites;
* recursion is approximated: addressed locals of a recursive function are
  a single name per variable (our per-function tags already collapse
  activations), and no strong updates are performed anywhere (the
  analysis is inclusion-based/flow-insensitive, which is strictly
  conservative with respect to Ruf's SSA formulation — the front end
  emits a fresh register per expression, so registers are near-SSA and
  little precision is lost on our workloads).

The solver is Andersen-style: subset constraints over (function, register)
variables and one *contents* cell per tag (field-insensitive), iterated
with a worklist to a fixpoint.

After solving, :func:`apply_points_to` rewrites each pointer-based memory
operation's tag set to the points-to set of its address register, and the
MOD/REF analysis is re-run on the sharper sets (exactly the paper's
sequencing).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..intrinsics import ALLOCATORS, is_intrinsic
from ..ir.instructions import (
    BinOp,
    Call,
    CLoad,
    LoadAddr,
    MemLoad,
    MemStore,
    Mov,
    Phi,
    Ret,
    ScalarLoad,
    ScalarStore,
    UnOp,
    VReg,
)
from ..ir.module import Module
from ..ir.opcodes import Opcode
from ..ir.tags import Tag, TagSet

#: analysis variable: a register within a function, or a tag's contents
RegVar = tuple[str, int]  # (function name, vreg id)


@dataclass
class PointsToResult:
    """Solved points-to sets."""

    #: (function, reg id) -> tags the register may point at
    reg_points_to: dict[RegVar, frozenset[Tag]] = field(default_factory=dict)
    #: tag -> tags its contents may point at
    contents: dict[Tag, frozenset[Tag]] = field(default_factory=dict)

    def of_reg(self, func_name: str, reg: VReg) -> frozenset[Tag]:
        return self.reg_points_to.get((func_name, reg.id), frozenset())


class _Solver:
    """Inclusion-constraint solver.

    Nodes are either register variables or tag-contents cells.  Edges are
    subset constraints ``src ⊆ dst``.  Complex constraints (loads/stores
    through pointers, not expressible until points-to sets are known) are
    re-expanded whenever a node's set grows.
    """

    def __init__(self) -> None:
        self.sets: dict[object, set[Tag]] = defaultdict(set)
        self.edges: dict[object, set[object]] = defaultdict(set)
        #: nodes whose growth requires re-deriving edges: node -> callbacks
        self.load_from: dict[object, set[object]] = defaultdict(set)
        self.store_to: dict[object, set[object]] = defaultdict(set)
        self.worklist: list[object] = []
        self.dirty: set[object] = set()

    def add_base(self, node: object, tag: Tag) -> None:
        if tag not in self.sets[node]:
            self.sets[node].add(tag)
            self._touch(node)

    def add_edge(self, src: object, dst: object) -> None:
        if dst not in self.edges[src]:
            self.edges[src].add(dst)
            if self.sets[src]:
                self._touch(src)

    def add_load(self, addr_node: object, dst_node: object) -> None:
        """``dst ⊇ contents(o)`` for every ``o`` in pts(addr)."""
        self.load_from[addr_node].add(dst_node)
        if self.sets[addr_node]:
            self._touch(addr_node)

    def add_store(self, addr_node: object, src_node: object) -> None:
        """``contents(o) ⊇ src`` for every ``o`` in pts(addr)."""
        self.store_to[addr_node].add(src_node)
        if self.sets[addr_node]:
            self._touch(addr_node)

    def _touch(self, node: object) -> None:
        if node not in self.dirty:
            self.dirty.add(node)
            self.worklist.append(node)

    def solve(self) -> None:
        while self.worklist:
            node = self.worklist.pop()
            self.dirty.discard(node)
            pts = self.sets[node]
            # expand complex constraints into new edges
            for dst in self.load_from.get(node, ()):
                for tag in pts:
                    self.add_edge(("contents", tag), dst)
            for src in self.store_to.get(node, ()):
                for tag in pts:
                    self.add_edge(src, ("contents", tag))
            # propagate along subset edges
            for dst in self.edges.get(node, ()):
                target = self.sets[dst]
                before = len(target)
                target |= pts
                if len(target) != before:
                    self._touch(dst)


def run_points_to(module: Module) -> PointsToResult:
    """Generate constraints for the whole module and solve."""
    solver = _Solver()

    def reg_node(func_name: str, reg: VReg) -> object:
        return ("reg", func_name, reg.id)

    ret_node = lambda func_name: ("ret", func_name)  # noqa: E731

    for func in module.functions.values():
        fname = func.name
        for block in func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, LoadAddr):
                    solver.add_base(reg_node(fname, instr.dst), instr.tag)
                elif isinstance(instr, Mov):
                    solver.add_edge(
                        reg_node(fname, instr.src), reg_node(fname, instr.dst)
                    )
                elif isinstance(instr, Phi):
                    for incoming in instr.incoming.values():
                        solver.add_edge(
                            reg_node(fname, incoming), reg_node(fname, instr.dst)
                        )
                elif isinstance(instr, BinOp):
                    # pointer arithmetic flows addresses through +/-; other
                    # operators cannot produce a valid pointer
                    if instr.opcode in (Opcode.ADD, Opcode.SUB):
                        solver.add_edge(
                            reg_node(fname, instr.lhs), reg_node(fname, instr.dst)
                        )
                        solver.add_edge(
                            reg_node(fname, instr.rhs), reg_node(fname, instr.dst)
                        )
                elif isinstance(instr, UnOp):
                    if instr.opcode in (Opcode.NEG, Opcode.NOT):
                        solver.add_edge(
                            reg_node(fname, instr.src), reg_node(fname, instr.dst)
                        )
                elif isinstance(instr, (ScalarLoad, CLoad)):
                    solver.add_edge(
                        ("contents", instr.tag), reg_node(fname, instr.dst)
                    )
                elif isinstance(instr, ScalarStore):
                    solver.add_edge(
                        reg_node(fname, instr.src), ("contents", instr.tag)
                    )
                elif isinstance(instr, MemLoad):
                    solver.add_load(
                        reg_node(fname, instr.addr), reg_node(fname, instr.dst)
                    )
                elif isinstance(instr, MemStore):
                    solver.add_store(
                        reg_node(fname, instr.addr), reg_node(fname, instr.src)
                    )
                elif isinstance(instr, Ret):
                    if instr.value is not None:
                        solver.add_edge(
                            reg_node(fname, instr.value), ret_node(fname)
                        )
                elif isinstance(instr, Call):
                    _call_constraints(module, solver, fname, instr, reg_node, ret_node)

    solver.solve()

    result = PointsToResult()
    for node, tags in solver.sets.items():
        if isinstance(node, tuple) and node[0] == "reg":
            result.reg_points_to[(node[1], node[2])] = frozenset(tags)
        elif isinstance(node, tuple) and node[0] == "contents":
            result.contents[node[1]] = frozenset(tags)
    return result


def _call_constraints(module, solver, fname, instr, reg_node, ret_node) -> None:
    callee = instr.callee
    targets: list[str] = []
    if callee is not None and callee in module.functions:
        targets = [callee]
    elif callee is None:
        targets = sorted(module.addressed_functions & set(module.functions))
    elif is_intrinsic(callee):
        if callee in ALLOCATORS and instr.dst is not None:
            heap = module.heap_tag_for_site(instr.site_id)
            solver.add_base(reg_node(fname, instr.dst), heap)
        elif callee in {"memset", "memcpy", "strcpy"} and instr.dst is not None:
            # these return their first argument
            if instr.args:
                solver.add_edge(
                    reg_node(fname, instr.args[0]), reg_node(fname, instr.dst)
                )
        if callee == "memcpy" and len(instr.args) >= 2:
            # contents flow from source block to destination block
            solver.add_load(reg_node(fname, instr.args[1]), ("xfer", fname, instr.site_id))
            solver.add_store(reg_node(fname, instr.args[0]), ("xfer", fname, instr.site_id))
        return
    for target in targets:
        target_func = module.functions[target]
        for arg, param in zip(instr.args, target_func.params):
            solver.add_edge(reg_node(fname, arg), reg_node(target, param))
        if instr.dst is not None:
            solver.add_edge(ret_node(target), reg_node(fname, instr.dst))


def apply_points_to(
    module: Module,
    result: PointsToResult,
    fallback_visible: dict[str, frozenset[Tag]],
) -> None:
    """Rewrite pointer-based operations' tag sets from the solution.

    An empty points-to set means the analysis saw no address flow to the
    register (e.g. an integer reinterpreted as a pointer would); we fall
    back to the MOD/REF visible universe rather than claim the operation
    touches nothing.
    """
    from ..diag import ledger as diag_ledger

    for func in module.functions.values():
        universe = fallback_visible.get(func.name, frozenset())
        refined = fell_back = 0
        for block in func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, (MemLoad, MemStore)):
                    pts = result.of_reg(func.name, instr.addr)
                    if pts:
                        new_tags = TagSet.from_iterable(pts)
                        if not instr.tags.universal:
                            new_tags = new_tags.intersect(instr.tags)
                        instr.tags = new_tags
                        refined += 1
                    elif instr.tags.universal:
                        instr.tags = TagSet.from_iterable(universe)
                        fell_back = fell_back + 1
        if (refined or fell_back) and diag_ledger.current_ledger() is not None:
            # provenance for the sharper tag sets the promotion ledger
            # decisions will cite under the pointer analysis
            diag_ledger.record(
                "points_to", func.name, "refined",
                detail={"ops_refined": refined, "ops_fallback": fell_back},
            )

"""repro — a reproduction of "Register Promotion in C Programs"
(Cooper & Lu, PLDI 1997).

Public API, top to bottom:

* :func:`repro.frontend.compile_c` — C source to tagged IL;
* :class:`repro.pipeline.PipelineOptions` / :func:`repro.pipeline.compile_and_run`
  — one cell of the paper's experiment matrix;
* :func:`repro.pipeline.paper_variants` — the four cells of Figures 5-7;
* :func:`repro.harness.run_suite` / :func:`repro.harness.format_figure`
  — regenerate the paper's tables over the 14-program suite;
* :mod:`repro.runner` — the parallel/cached/instrumented experiment
  scheduler behind the suite (see docs/RUNNER.md);
* :mod:`repro.opt.promotion` — the promotion algorithm itself, usable on
  hand-built IL (see the Figure 2 tests).
"""

from .errors import (
    AnalysisError,
    FrontendError,
    InterpError,
    IRError,
    ReproError,
    UnsupportedFeatureError,
)
from .frontend import compile_c
from .interp import Counters, MachineOptions, RunResult, run_module
from .pipeline import (
    Analysis,
    CompileResult,
    ExperimentCell,
    PipelineOptions,
    check_outputs_agree,
    compile_and_run,
    compile_module,
    compile_source,
    paper_variants,
)

__version__ = "1.0.0"

__all__ = [
    "Analysis",
    "AnalysisError",
    "CompileResult",
    "Counters",
    "ExperimentCell",
    "FrontendError",
    "IRError",
    "InterpError",
    "MachineOptions",
    "PipelineOptions",
    "ReproError",
    "RunResult",
    "UnsupportedFeatureError",
    "__version__",
    "check_outputs_agree",
    "compile_and_run",
    "compile_c",
    "compile_module",
    "compile_source",
    "paper_variants",
    "run_module",
]

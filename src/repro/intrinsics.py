"""The runtime intrinsics shared by the front end, the analyses, and the
interpreter.

Each intrinsic carries the side-effect policy the front end uses to seed a
call's MOD/REF tag summaries:

``NONE``
    The call neither reads nor writes user-visible memory (pure math,
    allocation, PRNG — the PRNG state is internal and unreachable from
    user pointers).
``POINTER_ARGS``
    The call may read (REF) and possibly write (MOD) memory reachable from
    its pointer arguments; the front end seeds the summary with the
    universal set when a pointer is actually passed, and interprocedural
    analysis shrinks it like any other tag set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .ctype_model import (
    CHAR_PTR,
    CType,
    DOUBLE,
    INT,
    LONG,
    PointerType,
    VOID,
    VoidType,
)


class EffectPolicy(enum.Enum):
    NONE = "none"
    POINTER_ARGS = "pointer_args"


@dataclass(frozen=True)
class IntrinsicSpec:
    name: str
    ret: CType
    #: may the intrinsic write through pointer arguments?
    writes_pointees: bool
    #: may the intrinsic read through pointer arguments?
    reads_pointees: bool

    @property
    def policy(self) -> EffectPolicy:
        if self.writes_pointees or self.reads_pointees:
            return EffectPolicy.POINTER_ARGS
        return EffectPolicy.NONE


_VOID_PTR = PointerType(VoidType())

INTRINSICS: dict[str, IntrinsicSpec] = {
    spec.name: spec
    for spec in [
        # -- I/O -------------------------------------------------------------
        IntrinsicSpec("printf", INT, writes_pointees=False, reads_pointees=True),
        IntrinsicSpec("putchar", INT, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("puts", INT, writes_pointees=False, reads_pointees=True),
        # -- allocation ---------------------------------------------------------
        IntrinsicSpec("malloc", _VOID_PTR, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("calloc", _VOID_PTR, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("free", VOID, writes_pointees=False, reads_pointees=False),
        # -- math ---------------------------------------------------------------
        IntrinsicSpec("sqrt", DOUBLE, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("fabs", DOUBLE, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("sin", DOUBLE, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("cos", DOUBLE, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("exp", DOUBLE, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("log", DOUBLE, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("pow", DOUBLE, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("floor", DOUBLE, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("abs", INT, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("labs", LONG, writes_pointees=False, reads_pointees=False),
        # -- PRNG (state is internal; user pointers cannot reach it) ----------
        IntrinsicSpec("rand", INT, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("srand", VOID, writes_pointees=False, reads_pointees=False),
        # -- memory utilities --------------------------------------------------
        IntrinsicSpec("memset", _VOID_PTR, writes_pointees=True, reads_pointees=False),
        IntrinsicSpec("memcpy", _VOID_PTR, writes_pointees=True, reads_pointees=True),
        IntrinsicSpec("strlen", LONG, writes_pointees=False, reads_pointees=True),
        IntrinsicSpec("strcmp", INT, writes_pointees=False, reads_pointees=True),
        IntrinsicSpec("strcpy", CHAR_PTR, writes_pointees=True, reads_pointees=True),
        # -- test/benchmark support --------------------------------------------
        IntrinsicSpec("exit", VOID, writes_pointees=False, reads_pointees=False),
        IntrinsicSpec("clock", LONG, writes_pointees=False, reads_pointees=False),
    ]
}

#: names the interpreter treats as heap allocators (heap tags are named by
#: the allocation call site, matching the paper's heap model)
ALLOCATORS = frozenset({"malloc", "calloc"})


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS


def intrinsic(name: str) -> IntrinsicSpec:
    return INTRINSICS[name]

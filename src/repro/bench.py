"""Interpreter throughput benchmark — the ``repro bench`` command.

Runs workload programs under all three execution engines (the
per-instruction reference loop, the block-threaded default, and the
tier-2 specializing engine), checks that they agree on every observable
(counters, output, exit code — the same contract the differential oracle
in ``tests/interp/test_engine_equiv.py`` enforces), and reports
wall-clock, ops/sec, and the speedup of every engine pair.  The result
is written as ``BENCH_interp.json`` so the interpreter's performance
trajectory is tracked in-repo; see ``docs/PERFORMANCE.md`` for how to
read it.

Timing covers interpretation only (compilation is outside the clock).
Each cached engine gets one untimed warm-up run (the threaded decode
cache and the tier-2 region cache live on the module and persist across
runs), then ``repeats`` timed runs; the best wall time wins — the steady
state the suite runner actually sees.

:func:`check_regression` compares a fresh payload against a committed
baseline: the per-pair geomean speedups are host-independent ratios, so
CI can gate on them with a noise tolerance without pinning wall times.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from .diag.host import host_metadata
from .errors import ReproError
from .interp import Machine, MachineOptions
from .pipeline import PipelineOptions, compile_source
from .workloads import all_workloads, get_workload

#: small-but-representative subset for CI (``repro bench --quick``)
QUICK_PROGRAMS = ("dhrystone", "fft", "mlink", "tsp")

ENGINES = ("simple", "threaded", "tier2")

#: engines whose compiled state is cached on the module and survives runs
_CACHED_ENGINES = frozenset({"threaded", "tier2"})

#: (numerator, denominator) speedup pairs reported in the summary
ENGINE_PAIRS = (
    ("threaded", "simple"),
    ("tier2", "simple"),
    ("tier2", "threaded"),
)

BENCH_SCHEMA = 2


def _geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_interpreters(
    names: list[str] | None = None,
    *,
    repeats: int = 2,
    max_steps: int = 500_000_000,
    options: PipelineOptions | None = None,
) -> dict:
    """Benchmark every engine over ``names`` (default: all 14 workloads).

    Returns the ``BENCH_interp.json`` payload: per program and engine,
    ``{wall_s, total_ops, ops_per_sec, engine, speedup_vs_simple}`` (the
    tier2 cell also carries ``speedup_vs_threaded``), plus a summary with
    the geomean/min/max speedup of every engine pair.  Raises
    :class:`~repro.errors.ReproError` if the engines disagree on any
    observable — a benchmark of engines computing different things would
    be meaningless.
    """
    options = options or PipelineOptions()
    workloads = (
        [get_workload(name) for name in names] if names else all_workloads()
    )
    programs: dict[str, dict] = {}
    for workload in workloads:
        runs: dict[str, tuple[float, object]] = {}
        for engine in ENGINES:
            module = compile_source(
                workload.source, options, name=workload.name,
                defines=workload.defines,
            ).module
            machine_options = MachineOptions(engine=engine, max_steps=max_steps)
            if engine in _CACHED_ENGINES:
                # prime the on-module cache (threaded decode / tier-2
                # regions) so timed runs measure the steady state
                Machine(module, machine_options).run()
            best = math.inf
            result = None
            for _ in range(max(repeats, 1)):
                machine = Machine(module, machine_options)
                started = time.perf_counter()
                result = machine.run()
                best = min(best, time.perf_counter() - started)
            runs[engine] = (best, result)
        reference = runs["simple"][1]
        for engine in ENGINES[1:]:
            run = runs[engine][1]
            if (
                reference.counters != run.counters
                or reference.output != run.output
                or reference.exit_code != run.exit_code
            ):
                raise ReproError(
                    f"engines disagree on {workload.name}: "
                    f"simple {reference.counters} exit {reference.exit_code}"
                    f" vs {engine} {run.counters} exit {run.exit_code}"
                )
        entry: dict[str, dict] = {}
        for engine in ENGINES:
            wall, run = runs[engine]
            wall = max(round(wall, 6), 1e-6)
            ops = run.counters.total_ops
            entry[engine] = {
                "wall_s": wall,
                "total_ops": ops,
                "ops_per_sec": round(ops / wall, 1),
                "engine": engine,
                "speedup_vs_simple": 1.0,
            }
        simple_wall = entry["simple"]["wall_s"]
        for engine in ("threaded", "tier2"):
            entry[engine]["speedup_vs_simple"] = round(
                simple_wall / entry[engine]["wall_s"], 3
            )
        entry["tier2"]["speedup_vs_threaded"] = round(
            entry["threaded"]["wall_s"] / entry["tier2"]["wall_s"], 3
        )
        programs[workload.name] = entry

    def pair_speedups(num: str, den: str) -> list[float]:
        return [
            max(entry[den]["wall_s"], 1e-9) / max(entry[num]["wall_s"], 1e-9)
            for entry in programs.values()
        ]

    speedups_summary: dict[str, dict] = {}
    for num, den in ENGINE_PAIRS:
        values = pair_speedups(num, den)
        speedups_summary[f"{num}_vs_{den}"] = {
            "geomean": round(_geomean(values), 3),
            "min": round(min(values), 3) if values else 0.0,
            "max": round(max(values), 3) if values else 0.0,
        }

    threaded_pair = speedups_summary["threaded_vs_simple"]
    return {
        "schema": BENCH_SCHEMA,
        "host": host_metadata(),
        "repeats": max(repeats, 1),
        "max_steps": max_steps,
        "programs": programs,
        "summary": {
            "programs": len(programs),
            # headline numbers kept from schema 1: threaded vs simple
            "geomean_speedup": threaded_pair["geomean"],
            "min_speedup": threaded_pair["min"],
            "max_speedup": threaded_pair["max"],
            "speedups": speedups_summary,
            **{
                f"total_wall_{engine}_s": round(
                    sum(e[engine]["wall_s"] for e in programs.values()), 6
                )
                for engine in ENGINES
            },
        },
    }


def check_regression(
    payload: dict, baseline: dict, tolerance_pct: float
) -> list[str]:
    """Compare ``payload`` against a committed ``baseline`` payload.

    Gates on the per-pair geomean speedups (host-independent ratios):
    a pair present in both summaries fails when the fresh geomean drops
    more than ``tolerance_pct`` percent below the baseline's.  Returns
    the list of failure messages (empty = no regression).  Baselines
    from schema 1 (no tier2 column) gate only the pairs they carry.
    """
    failures: list[str] = []
    base_summary = baseline.get("summary", {})
    base_pairs = dict(base_summary.get("speedups") or {})
    if not base_pairs and "geomean_speedup" in base_summary:
        base_pairs["threaded_vs_simple"] = {
            "geomean": base_summary["geomean_speedup"]
        }
    cur_pairs = payload.get("summary", {}).get("speedups", {})
    for pair, base_cell in sorted(base_pairs.items()):
        base_geo = float(base_cell.get("geomean", 0.0))
        cur_cell = cur_pairs.get(pair)
        if cur_cell is None or base_geo <= 0:
            continue
        cur_geo = float(cur_cell["geomean"])
        floor = base_geo * (1.0 - tolerance_pct / 100.0)
        if cur_geo < floor:
            failures.append(
                f"{pair}: geomean speedup {cur_geo:.3f}x fell below "
                f"{floor:.3f}x (baseline {base_geo:.3f}x - {tolerance_pct:g}%)"
            )
    return failures


def format_bench(payload: dict) -> str:
    """Human-readable table for one bench payload."""
    lines = [
        f"{'program':<12} {'engine':<9} {'wall s':>10} {'total ops':>12} "
        f"{'ops/sec':>14} {'speedup':>8}",
        "-" * 70,
    ]
    for name, entry in payload["programs"].items():
        for engine in ENGINES:
            cell = entry.get(engine)
            if cell is None:
                continue
            lines.append(
                f"{name:<12} {engine:<9} {cell['wall_s']:>10.4f} "
                f"{cell['total_ops']:>12} {cell['ops_per_sec']:>14,.0f} "
                f"{cell['speedup_vs_simple']:>7.2f}x"
            )
    summary = payload["summary"]
    lines.append("-" * 70)
    for pair, cell in summary.get("speedups", {}).items():
        label = pair.replace("_vs_", " vs ")
        lines.append(
            f"geomean speedup {label:<20} {cell['geomean']:>6.2f}x "
            f"(min {cell['min']:.2f}x, max {cell['max']:.2f}x)"
        )
    if "speedups" not in summary:
        lines.append(
            f"geomean speedup {summary['geomean_speedup']:.2f}x over "
            f"{summary['programs']} program(s) "
            f"(min {summary['min_speedup']:.2f}x, "
            f"max {summary['max_speedup']:.2f}x)"
        )
    return "\n".join(lines)


def write_bench_json(path: str | Path, payload: dict) -> None:
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_bench_json(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())

"""Interpreter throughput benchmark — the ``repro bench`` command.

Runs workload programs under both execution engines (the block-threaded
default and the per-instruction reference loop), checks that the two
agree on every observable (counters, output, exit code — the same
contract the differential oracle in ``tests/interp/test_engine_equiv.py``
enforces), and reports wall-clock and ops/sec per program.  The result is
written as ``BENCH_interp.json`` so the interpreter's performance
trajectory is tracked in-repo; see ``docs/PERFORMANCE.md`` for how to
read it.

Timing covers interpretation only (compilation is outside the clock).
Each engine runs ``repeats`` times on the same compiled module and the
best wall time wins, so the threaded numbers reflect the warm decode
cache — the steady state the suite runner actually sees.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from .diag.host import host_metadata
from .errors import ReproError
from .interp import Machine, MachineOptions
from .pipeline import PipelineOptions, compile_source
from .workloads import all_workloads, get_workload

#: small-but-representative subset for CI (``repro bench --quick``)
QUICK_PROGRAMS = ("dhrystone", "fft", "mlink", "tsp")

ENGINES = ("simple", "threaded")

BENCH_SCHEMA = 1


def bench_interpreters(
    names: list[str] | None = None,
    *,
    repeats: int = 2,
    max_steps: int = 500_000_000,
    options: PipelineOptions | None = None,
) -> dict:
    """Benchmark both engines over ``names`` (default: all 14 workloads).

    Returns the ``BENCH_interp.json`` payload: per program and engine,
    ``{wall_s, total_ops, ops_per_sec, engine, speedup_vs_simple}``.
    Raises :class:`~repro.errors.ReproError` if the engines disagree on
    any observable — a benchmark of two engines computing different
    things would be meaningless.
    """
    options = options or PipelineOptions()
    workloads = (
        [get_workload(name) for name in names] if names else all_workloads()
    )
    programs: dict[str, dict] = {}
    for workload in workloads:
        runs: dict[str, tuple[float, object]] = {}
        for engine in ENGINES:
            module = compile_source(
                workload.source, options, name=workload.name,
                defines=workload.defines,
            ).module
            machine_options = MachineOptions(engine=engine, max_steps=max_steps)
            best = math.inf
            result = None
            for _ in range(max(repeats, 1)):
                machine = Machine(module, machine_options)
                started = time.perf_counter()
                result = machine.run()
                best = min(best, time.perf_counter() - started)
            runs[engine] = (best, result)
        simple_wall, simple_run = runs["simple"]
        threaded_wall, threaded_run = runs["threaded"]
        if (
            simple_run.counters != threaded_run.counters
            or simple_run.output != threaded_run.output
            or simple_run.exit_code != threaded_run.exit_code
        ):
            raise ReproError(
                f"engines disagree on {workload.name}: "
                f"simple {simple_run.counters} exit {simple_run.exit_code} vs "
                f"threaded {threaded_run.counters} exit {threaded_run.exit_code}"
            )
        entry: dict[str, dict] = {}
        for engine in ENGINES:
            wall, run = runs[engine]
            wall = max(wall, 1e-9)
            ops = run.counters.total_ops
            entry[engine] = {
                "wall_s": round(wall, 6),
                "total_ops": ops,
                "ops_per_sec": round(ops / wall, 1),
                "engine": engine,
                "speedup_vs_simple": 1.0,
            }
        entry["threaded"]["speedup_vs_simple"] = round(
            max(simple_wall, 1e-9) / max(threaded_wall, 1e-9), 3
        )
        programs[workload.name] = entry

    speedups = [
        entry["threaded"]["speedup_vs_simple"] for entry in programs.values()
    ]
    geomean = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else 0.0
    )
    return {
        "schema": BENCH_SCHEMA,
        "host": host_metadata(),
        "repeats": max(repeats, 1),
        "max_steps": max_steps,
        "programs": programs,
        "summary": {
            "programs": len(programs),
            "geomean_speedup": round(geomean, 3),
            "min_speedup": round(min(speedups), 3) if speedups else 0.0,
            "max_speedup": round(max(speedups), 3) if speedups else 0.0,
            "total_wall_simple_s": round(
                sum(e["simple"]["wall_s"] for e in programs.values()), 6
            ),
            "total_wall_threaded_s": round(
                sum(e["threaded"]["wall_s"] for e in programs.values()), 6
            ),
        },
    }


def format_bench(payload: dict) -> str:
    """Human-readable table for one bench payload."""
    lines = [
        f"{'program':<12} {'engine':<9} {'wall s':>10} {'total ops':>12} "
        f"{'ops/sec':>14} {'speedup':>8}",
        "-" * 70,
    ]
    for name, entry in payload["programs"].items():
        for engine in ENGINES:
            cell = entry[engine]
            lines.append(
                f"{name:<12} {engine:<9} {cell['wall_s']:>10.4f} "
                f"{cell['total_ops']:>12} {cell['ops_per_sec']:>14,.0f} "
                f"{cell['speedup_vs_simple']:>7.2f}x"
            )
    summary = payload["summary"]
    lines.append("-" * 70)
    lines.append(
        f"geomean speedup {summary['geomean_speedup']:.2f}x over "
        f"{summary['programs']} program(s) "
        f"(min {summary['min_speedup']:.2f}x, max {summary['max_speedup']:.2f}x)"
    )
    return "\n".join(lines)


def write_bench_json(path: str | Path, payload: dict) -> None:
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")

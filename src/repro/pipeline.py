"""The compiler pipeline — the paper's experimental apparatus.

Section 5: "Four versions of each program were prepared, using the
combinations of scalar promotion, no scalar promotion, MOD/REF analysis,
and pointer analysis.  Each version was optimized with value numbering,
partial redundancy elimination, constant propagation, loop invariant code
motion, dead code elimination, register allocation, and a basic block
cleaning pass."

:func:`compile_and_run` reproduces one cell of that matrix:

1. front end (tagged IL with conservative tag sets);
2. interprocedural analysis — ``modref`` or ``pointer`` (points-to
   followed by a MOD/REF re-run, as in the paper) or ``none``;
3. tag refinement (opcode strengthening for singleton scalar tag sets);
4. the optimizer: value numbering, SCCP, **register promotion** (early,
   as section 3 specifies), LICM, pointer-based promotion (section 3.3,
   which depends on LICM having exposed invariant base registers), PRE,
   value numbering again, DCE, clean;
5. graph-coloring register allocation with coalescing and spilling;
6. the instrumented interpreter.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from time import perf_counter

from .analysis.modref import ModRefResult, run_modref
from .analysis.pointsto import apply_points_to, run_points_to
from .analysis.tagrefine import refine_memory_ops
from .diag.log import get_logger
from .diag.metrics import inc_metric, set_gauge
from .errors import ReproError
from .frontend import compile_c
from .inccomp.keys import function_digest, function_key, module_env_digest, options_digest
from .inccomp.store import FunctionRecord, FunctionStore
from .interp import Counters, MachineOptions, RunResult, run_module
from .ir.function import Function
from .ir.module import Module
from .ir.verify import verify_function, verify_module
from .opt.clean import clean_function
from .opt.constprop import run_sccp
from .opt.dce import run_dce
from .opt.licm import run_licm
from .opt.pointer_promotion import PointerPromotionReport, promote_pointers_function
from .opt.pre import record_pre_decision, run_pre
from .opt.promotion import PromotionOptions, PromotionReport, promote_function
from .opt.valuenum import record_vn_decision, run_value_numbering
from .regalloc import RegAllocOptions, RegAllocReport, allocate_function
from .diag.ledger import DecisionLedger, current_ledger
from .trace import span


_log = get_logger(__name__)


@contextmanager
def _pass_span(name: str, module=None, **args: object):
    """A pipeline-pass span, tagged with how many decision-ledger rows
    the pass recorded (only while a ledger is active, so cached cell
    payloads from plain suite runs are unchanged)."""
    ledger = current_ledger()
    before = len(ledger.decisions) if ledger is not None else None
    with span(name, module, **args) as extra:
        yield
        if extra is not None and ledger is not None:
            extra["decisions"] = len(ledger.decisions) - before


class Analysis(enum.Enum):
    """Which interprocedural analysis disambiguates memory."""

    NONE = "none"
    MODREF = "modref"
    POINTER = "pointer"


@dataclass
class PipelineOptions:
    """One cell of the paper's experiment matrix, plus knobs for the
    ablation benches."""

    analysis: Analysis = Analysis.MODREF
    promotion: bool = True
    pointer_promotion: bool = False
    promotion_options: PromotionOptions = field(default_factory=PromotionOptions)
    regalloc: RegAllocOptions = field(default_factory=RegAllocOptions)
    #: baseline optimizations (the paper applies these to *every* version)
    value_numbering: bool = True
    constant_propagation: bool = True
    licm: bool = True
    pre: bool = True
    dce: bool = True
    clean: bool = True
    run_regalloc: bool = True
    verify_each_stage: bool = False

    def variant_name(self) -> str:
        promo = "promo" if self.promotion else "nopromo"
        return f"{self.analysis.value}/{promo}"


@dataclass
class CompileResult:
    """The optimized module plus every pass report."""

    module: Module
    options: PipelineOptions
    promotion_reports: dict[str, PromotionReport] = field(default_factory=dict)
    pointer_promotion_reports: dict[str, PointerPromotionReport] = field(
        default_factory=dict
    )
    regalloc_reports: dict[str, RegAllocReport] = field(default_factory=dict)
    modref: ModRefResult | None = None
    #: per-function cache traffic of this compile (0/0 without a store)
    fn_cache_hits: int = 0
    fn_cache_misses: int = 0


def _worth_caching(options: PipelineOptions) -> bool:
    """A store entry only pays for itself when some per-function work
    exists to skip; O0-style configs bypass the store entirely."""
    return any(
        (
            options.promotion,
            options.pointer_promotion,
            options.value_numbering,
            options.constant_propagation,
            options.licm,
            options.pre,
            options.dce,
            options.clean,
            options.run_regalloc,
        )
    )


def _optimize_function(
    func: Function,
    module: Module,
    options: PipelineOptions,
    universe: frozenset,
    ledger: DecisionLedger | None,
) -> FunctionRecord:
    """The per-function half of the pipeline: scalar optimizations,
    promotion, redundancy removal, and register allocation, mutating
    ``func`` in place.  Returns the :class:`FunctionRecord` capturing
    everything a later cache hit must replay."""
    start = perf_counter()
    decisions_before = len(ledger.decisions) if ledger is not None else 0
    name = func.name
    record = FunctionRecord(function=func)

    def checkpoint() -> None:
        if options.verify_each_stage:
            verify_function(func)

    # -- early scalar optimizations ---------------------------------------
    if options.clean:
        with _pass_span("clean", module, function=name):
            clean_function(func)
    if options.value_numbering:
        with _pass_span("value_numbering", module, function=name):
            record_vn_decision(name, run_value_numbering(func))
    if options.constant_propagation:
        with _pass_span("sccp", module, function=name):
            run_sccp(func)
    checkpoint()

    # -- register promotion (early, per section 3) -------------------------
    if options.promotion:
        with _pass_span("promotion", module, function=name):
            record.promotion = promote_function(
                func, options=options.promotion_options, universe=universe
            )
        checkpoint()

    # -- loop and straight-line redundancy removal -------------------------
    if options.licm:
        with _pass_span("licm", module, function=name):
            licm_stats = run_licm(func)
        record.stats["licm.hoisted"] = licm_stats.hoisted
        record.stats["licm.loads_hoisted"] = licm_stats.loads_hoisted
        checkpoint()
    if options.pointer_promotion:
        with _pass_span("pointer_promotion", module, function=name):
            record.pointer_promotion = promote_pointers_function(
                func, universe=universe
            )
        checkpoint()
    if options.pre:
        with _pass_span("pre", module, function=name):
            pre_stats = run_pre(func)
            record_pre_decision(name, pre_stats)
        record.stats["pre.expressions_removed"] = pre_stats.expressions_removed
        record.stats["pre.loads_removed"] = pre_stats.loads_removed
    if options.value_numbering:
        with _pass_span("value_numbering", module, function=name):
            vn_stats = run_value_numbering(func)
            record_vn_decision(name, vn_stats)
        record.stats["valuenum.loads_removed"] = vn_stats.loads_removed
    if options.dce:
        with _pass_span("dce", module, function=name):
            run_dce(func)
    if options.clean:
        with _pass_span("clean", module, function=name):
            clean_function(func)
    checkpoint()

    # -- register allocation -----------------------------------------------
    if options.run_regalloc:
        with _pass_span("regalloc", module, function=name):
            record.regalloc = allocate_function(func, options.regalloc)
            if options.dce:
                run_dce(func)
            if options.clean:
                clean_function(func)

    if ledger is not None:
        record.decisions = list(ledger.decisions[decisions_before:])
    record.seconds = perf_counter() - start
    return record


def _emit_pass_metrics(
    module: Module,
    result: CompileResult,
    options: PipelineOptions,
    totals: dict[str, int],
) -> None:
    """Publish the same gauges/metrics the module-at-a-time pipeline did,
    from per-function records — identical whether each record came from a
    fresh optimization or a cache hit."""
    if options.promotion:
        promoted = set().union(
            *(r.promoted_tags for r in result.promotion_reports.values())
        )
        set_gauge("promotion.tags_promoted", len(promoted))
        set_gauge(
            "promotion.refs_rewritten",
            sum(r.references_rewritten for r in result.promotion_reports.values()),
        )
        set_gauge(
            "promotion.loads_inserted",
            sum(r.loads_inserted for r in result.promotion_reports.values()),
        )
        set_gauge(
            "promotion.stores_inserted",
            sum(r.stores_inserted for r in result.promotion_reports.values()),
        )
        _log.info(
            "%s: promoted %d tag(s), rewrote %d reference(s)",
            module.name,
            len(promoted),
            sum(r.references_rewritten for r in result.promotion_reports.values()),
        )
    if options.licm:
        inc_metric("licm.hoisted", totals.get("licm.hoisted", 0))
        inc_metric("licm.loads_hoisted", totals.get("licm.loads_hoisted", 0))
    if options.pointer_promotion:
        set_gauge(
            "pointer_promotion.promoted_bases",
            sum(
                r.promoted_bases
                for r in result.pointer_promotion_reports.values()
            ),
        )
    if options.pre:
        inc_metric(
            "pre.expressions_removed", totals.get("pre.expressions_removed", 0)
        )
        inc_metric("pre.loads_removed", totals.get("pre.loads_removed", 0))
    if options.value_numbering:
        inc_metric(
            "valuenum.loads_removed", totals.get("valuenum.loads_removed", 0)
        )


def compile_module(
    module: Module,
    options: PipelineOptions | None = None,
    fn_store: FunctionStore | None = None,
    stage_hook=None,
) -> CompileResult:
    """Run analysis + optimizer + allocator over an already-lowered module
    (the module is transformed in place).

    With ``fn_store``, the per-function optimize-and-allocate phase is
    content-addressed: the interprocedural analyses always run (they are
    cheap and their results — MOD/REF summaries on call sites, sharpened
    tag sets — are *inputs* to each function's key), then every function
    whose key is already in the store is spliced in from cache instead of
    re-optimized.  Cached and fresh compilations are observably
    identical: byte-identical printed IR, equal pass reports, metrics,
    and decision-ledger rows.

    ``stage_hook(stage_name, module)`` is called at the whole-module
    stage boundaries — ``"analysis"`` (interprocedural facts applied,
    nothing optimized yet) and ``"optimized"`` (verified final form) —
    so callers like the golden-IR harness can snapshot per-stage IR
    without re-implementing pipeline sequencing.
    """
    options = options or PipelineOptions()
    result = CompileResult(module=module, options=options)

    # -- interprocedural analysis -----------------------------------------
    _log.debug(
        "compiling %s with analysis=%s promotion=%s",
        module.name, options.analysis.value, options.promotion,
    )
    if options.analysis is Analysis.MODREF:
        with _pass_span("modref", module):
            result.modref = run_modref(module)
            refined = refine_memory_ops(module, result.modref.sccs)
    elif options.analysis is Analysis.POINTER:
        # the paper's sequencing: MOD/REF to seed, points-to to sharpen
        # pointer-op tag sets, MOD/REF repeated on the sharper sets
        with _pass_span("modref", module):
            first = run_modref(module)
        with _pass_span("points_to", module):
            points = run_points_to(module)
            apply_points_to(module, points, first.visible)
        with _pass_span("modref", module):
            result.modref = run_modref(module)
            refined = refine_memory_ops(module, result.modref.sccs)
    else:
        refined = None
    if refined is not None:
        set_gauge(
            "tagrefine.strengthened",
            refined.loads_strengthened + refined.stores_strengthened,
        )
    if options.verify_each_stage:
        verify_module(module)
    if stage_hook is not None:
        stage_hook("analysis", module)

    # -- per-function optimization + allocation ----------------------------
    # The promotion universe is snapshotted once, post-analysis: register
    # allocation appends spill tags to local_tags as functions complete,
    # and promotion of a later function must not observe them (the
    # module-at-a-time pipeline never did).
    universe = frozenset(module.memory_tags())
    ledger = current_ledger()
    use_store = fn_store is not None and _worth_caching(options)
    if use_store:
        env_digest = module_env_digest(module)
        opts_digest = options_digest(options)
    totals: dict[str, int] = {}
    for name in list(module.functions):
        func = module.functions[name]
        key = None
        record = None
        if use_store:
            key = function_key(
                function_digest(func), env_digest, opts_digest, ledger is not None
            )
            record = fn_store.get(key)
        if record is not None:
            result.fn_cache_hits += 1
            with span("fn_cache_hit", module, function=name):
                module.functions[name] = record.function
                if ledger is not None:
                    for decision in record.decisions:
                        ledger.record(decision)
        else:
            record = _optimize_function(func, module, options, universe, ledger)
            if use_store:
                result.fn_cache_misses += 1
                fn_store.put(key, record)
        if record.promotion is not None:
            result.promotion_reports[name] = record.promotion
        if record.pointer_promotion is not None:
            result.pointer_promotion_reports[name] = record.pointer_promotion
        if record.regalloc is not None:
            result.regalloc_reports[name] = record.regalloc
        for metric, value in record.stats.items():
            totals[metric] = totals.get(metric, 0) + value

    _emit_pass_metrics(module, result, options, totals)
    with _pass_span("verify", module):
        verify_module(module)
    if stage_hook is not None:
        stage_hook("optimized", module)
    return result


def compile_source(
    source: str,
    options: PipelineOptions | None = None,
    name: str = "program",
    defines: dict[str, str] | None = None,
    fn_store: FunctionStore | None = None,
    stage_hook=None,
) -> CompileResult:
    """Front end + :func:`compile_module`.

    ``stage_hook`` additionally fires with ``"frontend"`` right after
    parsing/lowering, before any analysis touches the module.
    """
    with span("parse"):
        module = compile_c(source, name=name, defines=defines)
    if stage_hook is not None:
        stage_hook("frontend", module)
    with span("optimize", module):
        return compile_module(
            module, options, fn_store=fn_store, stage_hook=stage_hook
        )


@dataclass
class ExperimentCell:
    """Result of running one pipeline variant on one program."""

    variant: str
    counters: Counters
    exit_code: int
    output: str
    #: absent for cells that crossed a process or cache boundary (the IR
    #: does not travel; counters/output/exit code are the experiment data)
    compile_result: CompileResult | None = None


def run_compiled(
    compiled: CompileResult,
    machine_options: MachineOptions | None = None,
) -> ExperimentCell:
    """Interpret an already-compiled module as one experiment cell.

    Running never mutates the module (the machine materializes its own
    :class:`~repro.interp.memory.MemoryImage`), so the same
    ``CompileResult`` can back any number of cells that differ only in
    machine options — e.g. the fuzz oracle's engine pairs.
    """
    options = compiled.options
    machine_options = machine_options or MachineOptions()
    with span(
        "execute", variant=options.variant_name(), engine=machine_options.engine
    ):
        run: RunResult = run_module(compiled.module, options=machine_options)
    # the interpreter's contribution to the cell's metrics snapshot
    set_gauge("interp.total_ops", run.counters.total_ops)
    set_gauge("interp.loads", run.counters.loads)
    set_gauge("interp.stores", run.counters.stores)
    return ExperimentCell(
        variant=options.variant_name(),
        counters=run.counters,
        exit_code=run.exit_code,
        output=run.output,
        compile_result=compiled,
    )


def compile_and_run(
    source: str,
    options: PipelineOptions | None = None,
    name: str = "program",
    defines: dict[str, str] | None = None,
    machine_options: MachineOptions | None = None,
    fn_store: FunctionStore | None = None,
) -> ExperimentCell:
    options = options or PipelineOptions()
    with span("compile", variant=options.variant_name()):
        compiled = compile_source(
            source, options, name=name, defines=defines, fn_store=fn_store
        )
    return run_compiled(compiled, machine_options)


def paper_variants(
    pointer_promotion: bool = False,
    regalloc: RegAllocOptions | None = None,
) -> dict[str, PipelineOptions]:
    """The four cells of the paper's Figures 5-7 matrix."""
    base = PipelineOptions(
        pointer_promotion=pointer_promotion,
        regalloc=regalloc or RegAllocOptions(),
    )
    return {
        "modref/nopromo": replace(base, analysis=Analysis.MODREF, promotion=False),
        "modref/promo": replace(base, analysis=Analysis.MODREF, promotion=True),
        "pointer/nopromo": replace(base, analysis=Analysis.POINTER, promotion=False),
        "pointer/promo": replace(base, analysis=Analysis.POINTER, promotion=True),
    }


def check_outputs_agree(cells: dict[str, ExperimentCell]) -> None:
    """Every variant of a program must produce identical output and exit
    code — the optimizer's end-to-end correctness oracle."""
    baseline: ExperimentCell | None = None
    for cell in cells.values():
        if baseline is None:
            baseline = cell
            continue
        if cell.output != baseline.output or cell.exit_code != baseline.exit_code:
            raise ReproError(
                f"variant {cell.variant} diverged from {baseline.variant}: "
                f"exit {cell.exit_code} vs {baseline.exit_code}"
            )

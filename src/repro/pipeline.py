"""The compiler pipeline — the paper's experimental apparatus.

Section 5: "Four versions of each program were prepared, using the
combinations of scalar promotion, no scalar promotion, MOD/REF analysis,
and pointer analysis.  Each version was optimized with value numbering,
partial redundancy elimination, constant propagation, loop invariant code
motion, dead code elimination, register allocation, and a basic block
cleaning pass."

:func:`compile_and_run` reproduces one cell of that matrix:

1. front end (tagged IL with conservative tag sets);
2. interprocedural analysis — ``modref`` or ``pointer`` (points-to
   followed by a MOD/REF re-run, as in the paper) or ``none``;
3. tag refinement (opcode strengthening for singleton scalar tag sets);
4. the optimizer: value numbering, SCCP, **register promotion** (early,
   as section 3 specifies), LICM, pointer-based promotion (section 3.3,
   which depends on LICM having exposed invariant base registers), PRE,
   value numbering again, DCE, clean;
5. graph-coloring register allocation with coalescing and spilling;
6. the instrumented interpreter.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from .analysis.modref import ModRefResult, run_modref
from .analysis.pointsto import apply_points_to, run_points_to
from .analysis.tagrefine import refine_memory_ops
from .diag.log import get_logger
from .diag.metrics import inc_metric, set_gauge
from .errors import ReproError
from .frontend import compile_c
from .interp import Counters, MachineOptions, RunResult, run_module
from .ir.module import Module
from .ir.verify import verify_module
from .opt.clean import clean_module
from .opt.constprop import run_sccp_module
from .opt.dce import run_dce_module
from .opt.licm import run_licm_module
from .opt.pointer_promotion import PointerPromotionReport, promote_pointers_module
from .opt.pre import run_pre_module
from .opt.promotion import PromotionOptions, PromotionReport, promote_module
from .opt.valuenum import run_value_numbering_module
from .regalloc import RegAllocOptions, RegAllocReport, allocate_module
from .diag.ledger import current_ledger
from .trace import span


_log = get_logger(__name__)


@contextmanager
def _pass_span(name: str, module=None, **args: object):
    """A pipeline-pass span, tagged with how many decision-ledger rows
    the pass recorded (only while a ledger is active, so cached cell
    payloads from plain suite runs are unchanged)."""
    ledger = current_ledger()
    before = len(ledger.decisions) if ledger is not None else None
    with span(name, module, **args) as extra:
        yield
        if extra is not None and ledger is not None:
            extra["decisions"] = len(ledger.decisions) - before


class Analysis(enum.Enum):
    """Which interprocedural analysis disambiguates memory."""

    NONE = "none"
    MODREF = "modref"
    POINTER = "pointer"


@dataclass
class PipelineOptions:
    """One cell of the paper's experiment matrix, plus knobs for the
    ablation benches."""

    analysis: Analysis = Analysis.MODREF
    promotion: bool = True
    pointer_promotion: bool = False
    promotion_options: PromotionOptions = field(default_factory=PromotionOptions)
    regalloc: RegAllocOptions = field(default_factory=RegAllocOptions)
    #: baseline optimizations (the paper applies these to *every* version)
    value_numbering: bool = True
    constant_propagation: bool = True
    licm: bool = True
    pre: bool = True
    dce: bool = True
    clean: bool = True
    run_regalloc: bool = True
    verify_each_stage: bool = False

    def variant_name(self) -> str:
        promo = "promo" if self.promotion else "nopromo"
        return f"{self.analysis.value}/{promo}"


@dataclass
class CompileResult:
    """The optimized module plus every pass report."""

    module: Module
    options: PipelineOptions
    promotion_reports: dict[str, PromotionReport] = field(default_factory=dict)
    pointer_promotion_reports: dict[str, PointerPromotionReport] = field(
        default_factory=dict
    )
    regalloc_reports: dict[str, RegAllocReport] = field(default_factory=dict)
    modref: ModRefResult | None = None


def compile_module(module: Module, options: PipelineOptions | None = None) -> CompileResult:
    """Run analysis + optimizer + allocator over an already-lowered module
    (the module is transformed in place)."""
    options = options or PipelineOptions()
    result = CompileResult(module=module, options=options)

    def checkpoint() -> None:
        if options.verify_each_stage:
            verify_module(module)

    # -- interprocedural analysis -----------------------------------------
    _log.debug(
        "compiling %s with analysis=%s promotion=%s",
        module.name, options.analysis.value, options.promotion,
    )
    if options.analysis is Analysis.MODREF:
        with _pass_span("modref", module):
            result.modref = run_modref(module)
            refined = refine_memory_ops(module, result.modref.sccs)
    elif options.analysis is Analysis.POINTER:
        # the paper's sequencing: MOD/REF to seed, points-to to sharpen
        # pointer-op tag sets, MOD/REF repeated on the sharper sets
        with _pass_span("modref", module):
            first = run_modref(module)
        with _pass_span("points_to", module):
            points = run_points_to(module)
            apply_points_to(module, points, first.visible)
        with _pass_span("modref", module):
            result.modref = run_modref(module)
            refined = refine_memory_ops(module, result.modref.sccs)
    else:
        refined = None
    if refined is not None:
        set_gauge(
            "tagrefine.strengthened",
            refined.loads_strengthened + refined.stores_strengthened,
        )
    checkpoint()

    # -- early scalar optimizations ------------------------------------------
    if options.clean:
        with _pass_span("clean", module):
            clean_module(module)
    if options.value_numbering:
        with _pass_span("value_numbering", module):
            run_value_numbering_module(module)
    if options.constant_propagation:
        with _pass_span("sccp", module):
            run_sccp_module(module)
    checkpoint()

    # -- register promotion (early, per section 3) ----------------------------
    if options.promotion:
        with _pass_span("promotion", module):
            result.promotion_reports = promote_module(
                module, options.promotion_options
            )
        promoted = set().union(
            *(r.promoted_tags for r in result.promotion_reports.values())
        )
        set_gauge("promotion.tags_promoted", len(promoted))
        set_gauge(
            "promotion.refs_rewritten",
            sum(r.references_rewritten for r in result.promotion_reports.values()),
        )
        set_gauge(
            "promotion.loads_inserted",
            sum(r.loads_inserted for r in result.promotion_reports.values()),
        )
        set_gauge(
            "promotion.stores_inserted",
            sum(r.stores_inserted for r in result.promotion_reports.values()),
        )
        _log.info(
            "%s: promoted %d tag(s), rewrote %d reference(s)",
            module.name,
            len(promoted),
            sum(r.references_rewritten for r in result.promotion_reports.values()),
        )
        checkpoint()

    # -- loop and straight-line redundancy removal ---------------------------
    if options.licm:
        with _pass_span("licm", module):
            licm_stats = run_licm_module(module)
        inc_metric("licm.hoisted", licm_stats.hoisted)
        inc_metric("licm.loads_hoisted", licm_stats.loads_hoisted)
        checkpoint()
    if options.pointer_promotion:
        with _pass_span("pointer_promotion", module):
            result.pointer_promotion_reports = promote_pointers_module(module)
        set_gauge(
            "pointer_promotion.promoted_bases",
            sum(
                r.promoted_bases
                for r in result.pointer_promotion_reports.values()
            ),
        )
        checkpoint()
    if options.pre:
        with _pass_span("pre", module):
            pre_stats = run_pre_module(module)
        inc_metric("pre.expressions_removed", pre_stats.expressions_removed)
        inc_metric("pre.loads_removed", pre_stats.loads_removed)
    if options.value_numbering:
        with _pass_span("value_numbering", module):
            vn_stats = run_value_numbering_module(module)
        inc_metric("valuenum.loads_removed", vn_stats.loads_removed)
    if options.dce:
        with _pass_span("dce", module):
            run_dce_module(module)
    if options.clean:
        with _pass_span("clean", module):
            clean_module(module)
    checkpoint()

    # -- register allocation ---------------------------------------------------
    if options.run_regalloc:
        with _pass_span("regalloc", module):
            result.regalloc_reports = allocate_module(module, options.regalloc)
            if options.dce:
                run_dce_module(module)
            if options.clean:
                clean_module(module)
    with _pass_span("verify", module):
        verify_module(module)
    return result


def compile_source(
    source: str,
    options: PipelineOptions | None = None,
    name: str = "program",
    defines: dict[str, str] | None = None,
) -> CompileResult:
    """Front end + :func:`compile_module`."""
    with span("parse"):
        module = compile_c(source, name=name, defines=defines)
    with span("optimize", module):
        return compile_module(module, options)


@dataclass
class ExperimentCell:
    """Result of running one pipeline variant on one program."""

    variant: str
    counters: Counters
    exit_code: int
    output: str
    #: absent for cells that crossed a process or cache boundary (the IR
    #: does not travel; counters/output/exit code are the experiment data)
    compile_result: CompileResult | None = None


def run_compiled(
    compiled: CompileResult,
    machine_options: MachineOptions | None = None,
) -> ExperimentCell:
    """Interpret an already-compiled module as one experiment cell.

    Running never mutates the module (the machine materializes its own
    :class:`~repro.interp.memory.MemoryImage`), so the same
    ``CompileResult`` can back any number of cells that differ only in
    machine options — e.g. the fuzz oracle's engine pairs.
    """
    options = compiled.options
    machine_options = machine_options or MachineOptions()
    with span(
        "execute", variant=options.variant_name(), engine=machine_options.engine
    ):
        run: RunResult = run_module(compiled.module, options=machine_options)
    # the interpreter's contribution to the cell's metrics snapshot
    set_gauge("interp.total_ops", run.counters.total_ops)
    set_gauge("interp.loads", run.counters.loads)
    set_gauge("interp.stores", run.counters.stores)
    return ExperimentCell(
        variant=options.variant_name(),
        counters=run.counters,
        exit_code=run.exit_code,
        output=run.output,
        compile_result=compiled,
    )


def compile_and_run(
    source: str,
    options: PipelineOptions | None = None,
    name: str = "program",
    defines: dict[str, str] | None = None,
    machine_options: MachineOptions | None = None,
) -> ExperimentCell:
    options = options or PipelineOptions()
    with span("compile", variant=options.variant_name()):
        compiled = compile_source(source, options, name=name, defines=defines)
    return run_compiled(compiled, machine_options)


def paper_variants(
    pointer_promotion: bool = False,
    regalloc: RegAllocOptions | None = None,
) -> dict[str, PipelineOptions]:
    """The four cells of the paper's Figures 5-7 matrix."""
    base = PipelineOptions(
        pointer_promotion=pointer_promotion,
        regalloc=regalloc or RegAllocOptions(),
    )
    return {
        "modref/nopromo": replace(base, analysis=Analysis.MODREF, promotion=False),
        "modref/promo": replace(base, analysis=Analysis.MODREF, promotion=True),
        "pointer/nopromo": replace(base, analysis=Analysis.POINTER, promotion=False),
        "pointer/promo": replace(base, analysis=Analysis.POINTER, promotion=True),
    }


def check_outputs_agree(cells: dict[str, ExperimentCell]) -> None:
    """Every variant of a program must produce identical output and exit
    code — the optimizer's end-to-end correctness oracle."""
    baseline: ExperimentCell | None = None
    for cell in cells.values():
        if baseline is None:
            baseline = cell
            continue
        if cell.output != baseline.output or cell.exit_code != baseline.exit_code:
            raise ReproError(
                f"variant {cell.variant} diverged from {baseline.variant}: "
                f"exit {cell.exit_code} vs {baseline.exit_code}"
            )

"""A compact model of the C types the front end supports.

The reproduction targets the C subset our 14 workloads are written in:
integer types (``char``/``short``/``int``/``long``), floating point
(``float``/``double`` — both modelled as 8-byte doubles), pointers,
1-D and multi-dimensional arrays, flat structs, and function types.

Sizes are in bytes.  Struct fields are laid out at offsets aligned to the
field size (natural alignment), and the struct size is rounded up to the
largest member alignment — the layout a typical LP64 C compiler produces
for these types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import UnsupportedFeatureError

WORD = 8  # pointer / long / double size


class CType:
    """Base class for all C types."""

    size: int

    def is_integer(self) -> bool:
        return False

    def is_float(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False

    def is_struct(self) -> bool:
        return False

    def is_void(self) -> bool:
        return False

    def is_function(self) -> bool:
        return False

    def is_scalar(self) -> bool:
        """Scalar in the register-promotion sense: fits one register."""
        return self.is_integer() or self.is_float() or self.is_pointer()

    def is_arithmetic(self) -> bool:
        return self.is_integer() or self.is_float()


@dataclass(frozen=True)
class VoidType(CType):
    size: int = 0

    def is_void(self) -> bool:
        return True

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    """Any integer type.  ``signed`` is tracked for completeness; the
    interpreter computes in 64-bit two's complement regardless."""

    size: int = 4
    signed: bool = True
    name: str = "int"

    def is_integer(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FloatType(CType):
    size: int = WORD
    name: str = "double"

    def is_float(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType = field(default_factory=VoidType)
    size: int = WORD

    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    elem: CType = field(default_factory=IntType)
    length: int = 0
    size: int = 0  # recomputed in __post_init__

    def __post_init__(self) -> None:
        object.__setattr__(self, "size", self.elem.size * self.length)

    def is_array(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.elem}[{self.length}]"


@dataclass(frozen=True)
class StructField:
    name: str
    ctype: CType
    offset: int


@dataclass(frozen=True)
class StructType(CType):
    name: str = ""
    fields: tuple[StructField, ...] = ()
    size: int = 0

    def is_struct(self) -> bool:
        return True

    def field_named(self, name: str) -> StructField:
        for f in self.fields:
            if f.name == name:
                return f
        raise UnsupportedFeatureError(
            f"struct {self.name} has no member {name!r}"
        )

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class FunctionType(CType):
    ret: CType = field(default_factory=VoidType)
    params: tuple[CType, ...] = ()
    varargs: bool = False
    size: int = WORD  # a function designator decays to a pointer

    def is_function(self) -> bool:
        return True

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({args})"


# -- canonical instances --------------------------------------------------
VOID = VoidType()
CHAR = IntType(size=1, name="char")
SHORT = IntType(size=2, name="short")
INT = IntType(size=4, name="int")
LONG = IntType(size=8, name="long")
UINT = IntType(size=4, signed=False, name="unsigned int")
ULONG = IntType(size=8, signed=False, name="unsigned long")
DOUBLE = FloatType()
CHAR_PTR = PointerType(CHAR)


def align_up(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    return (value + alignment - 1) // alignment * alignment


def natural_alignment(ctype: CType) -> int:
    if ctype.is_array():
        return natural_alignment(ctype.elem)  # type: ignore[attr-defined]
    if ctype.is_struct():
        aligns = [natural_alignment(f.ctype) for f in ctype.fields]  # type: ignore[attr-defined]
        return max(aligns, default=1)
    return max(ctype.size, 1)


def build_struct(name: str, members: list[tuple[str, CType]]) -> StructType:
    """Lay out a struct with natural alignment."""
    fields: list[StructField] = []
    offset = 0
    for member_name, member_type in members:
        offset = align_up(offset, natural_alignment(member_type))
        fields.append(StructField(member_name, member_type, offset))
        offset += member_type.size
    total = align_up(offset, max((natural_alignment(t) for _, t in members), default=1))
    return StructType(name=name, fields=tuple(fields), size=total)


def decay(ctype: CType) -> CType:
    """Array-to-pointer and function-to-pointer decay in rvalue contexts."""
    if ctype.is_array():
        return PointerType(ctype.elem)  # type: ignore[attr-defined]
    if ctype.is_function():
        return PointerType(ctype)
    return ctype


def usual_arithmetic(lhs: CType, rhs: CType) -> CType:
    """The usual arithmetic conversions, collapsed to our two families."""
    if lhs.is_float() or rhs.is_float():
        return DOUBLE
    if lhs.is_pointer():
        return lhs
    if rhs.is_pointer():
        return rhs
    # integer promotion: compute in the wider of the two, at least int
    width = max(lhs.size, rhs.size, INT.size)
    if width > INT.size:
        return LONG
    return INT


def common_pointer_target_size(ctype: CType) -> int:
    """Element size used to scale pointer arithmetic."""
    if ctype.is_pointer():
        pointee = ctype.pointee  # type: ignore[attr-defined]
        return max(pointee.size, 1)
    raise UnsupportedFeatureError(f"pointer arithmetic on non-pointer {ctype}")

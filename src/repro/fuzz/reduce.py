"""Delta-debugging reducer: shrink a divergent C program.

Classic ddmin (Zeller & Hildebrandt) over *brace-balanced chunks* of the
source, applied recursively at every block nesting depth.  A chunk is
either a single line with no net brace delta or a whole ``{...}`` block
including its header line, so removing any subset keeps the braces
balanced and most probes stay syntactically plausible; after ddmin
settles at one depth the reducer descends into each surviving block's
interior and repeats.
Probes that fail to compile are simply rejected by the predicate (every
oracle cell crashes identically → no divergence), so the reducer needs no
C-specific knowledge beyond the chunker.

The outer loop alternates ddmin with a line-granular sweep until a fixed
point: ddmin removes big regions fast, the sweep then peels individual
statements/declarations the coarse pass could not isolate.

Every probe result is cached by source hash — ddmin revisits
configurations, and oracle probes are the expensive part.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from ..diag.log import get_logger

_log = get_logger(__name__)

Predicate = Callable[[str], bool]


@dataclass
class ReduceStats:
    """How one reduction went."""

    probes: int = 0
    cache_hits: int = 0
    rounds: int = 0
    initial_lines: int = 0
    final_lines: int = 0
    log: list[str] = field(default_factory=list)


class _CachedPredicate:
    def __init__(self, predicate: Predicate, stats: ReduceStats) -> None:
        self.predicate = predicate
        self.stats = stats
        self.cache: dict[str, bool] = {}

    def __call__(self, source: str) -> bool:
        key = hashlib.sha256(source.encode()).hexdigest()
        if key in self.cache:
            self.stats.cache_hits += 1
            return self.cache[key]
        self.stats.probes += 1
        try:
            verdict = bool(self.predicate(source))
        except Exception as error:  # a probe must never abort the reduction
            _log.debug("probe raised %s; treating as False", error)
            verdict = False
        self.cache[key] = verdict
        return verdict


def chunk_lines(lines: list[str]) -> list[list[str]]:
    """Split into brace-balanced chunks (line, or whole block + header)."""
    chunks: list[list[str]] = []
    i = 0
    while i < len(lines):
        line = lines[i]
        delta = line.count("{") - line.count("}")
        if delta <= 0:
            chunks.append([line])
            i += 1
            continue
        # swallow lines until the block closes
        j = i + 1
        depth = delta
        while j < len(lines) and depth > 0:
            depth += lines[j].count("{") - lines[j].count("}")
            j += 1
        chunks.append(lines[i:j])
        i = j
    return chunks


def _flatten(chunks: list[list[str]]) -> list[str]:
    return [line for chunk in chunks for line in chunk]


def _join(chunks: list[list[str]]) -> str:
    return "\n".join(_flatten(chunks)) + "\n"


ChunkTest = Callable[[list[list[str]]], bool]


def _ddmin(chunks: list[list[str]], test: ChunkTest) -> list[list[str]]:
    """One ddmin pass over a chunk list; returns a (possibly) smaller list
    that still satisfies ``test``."""
    n = 2
    while len(chunks) >= 2:
        subset_len = max(len(chunks) // n, 1)
        reduced = False
        # try removing each slice ("complement" step of ddmin)
        start = 0
        while start < len(chunks):
            candidate = chunks[:start] + chunks[start + subset_len:]
            if candidate and test(candidate):
                chunks = candidate
                n = max(n - 1, 2)
                reduced = True
                # restart the sweep at this position
            else:
                start += subset_len
        if not reduced:
            if n >= len(chunks):
                break
            n = min(n * 2, len(chunks))
    return chunks


def _reduce_lines(
    lines: list[str],
    test: Callable[[list[str]], bool],
) -> list[str]:
    """ddmin over ``lines``' brace-balanced chunks, then recurse into every
    surviving multi-line block's interior.

    Recursion is what lets the reducer delete a dead loop nest *inside*
    ``main``: at the top level the whole function body is a single chunk
    (it is one brace-balanced region), so only by descending past each
    block header can ddmin see the statements within.
    """
    chunks = chunk_lines(lines)
    chunks = _ddmin(chunks, lambda cand: test(_flatten(cand)))
    for i, chunk in enumerate(chunks):
        if len(chunk) <= 2:
            continue  # single line, or a header/footer pair with no interior
        header, interior, footer = chunk[0], chunk[1:-1], chunk[-1]

        def test_replacement(cand: list[str], i: int = i) -> bool:
            return test(_flatten(chunks[:i] + [cand] + chunks[i + 1:]))

        # unwrap: a block whose body alone still reproduces loses its
        # header/footer (e.g. a divergence that only needs the inner loop
        # of a nest sheds the enclosing one)
        if interior and test_replacement(interior):
            chunks[i] = _reduce_lines(interior, test_replacement)
            continue

        def test_interior(
            cand: list[str],
            test_replacement: Callable[[list[str]], bool] = test_replacement,
            header: str = header,
            footer: str = footer,
        ) -> bool:
            return test_replacement([header, *cand, footer])

        chunks[i] = [header, *_reduce_lines(interior, test_interior), footer]
    return _flatten(chunks)


def reduce_source(
    source: str,
    predicate: Predicate,
    max_rounds: int = 8,
) -> tuple[str, ReduceStats]:
    """Shrink ``source`` while ``predicate`` (the divergence check) holds.

    Returns ``(reduced_source, stats)``.  Raises ``ValueError`` if the
    original source does not satisfy the predicate — a reduction must
    start from a genuine reproducer.
    """
    stats = ReduceStats(initial_lines=len(source.splitlines()))
    cached = _CachedPredicate(predicate, stats)
    if not cached(source):
        raise ValueError("predicate does not hold on the original program")

    current = source
    for round_no in range(max_rounds):
        stats.rounds = round_no + 1
        before = len(current.splitlines())

        # coarse: recursive ddmin over brace-balanced chunks at every
        # nesting depth (re-chunked each round)
        lines = _reduce_lines(
            current.splitlines(),
            lambda cand: bool(cand) and cached("\n".join(cand) + "\n"),
        )
        current = "\n".join(lines) + "\n"

        # fine: try deleting each single line, innermost-last
        lines = current.splitlines()
        i = 0
        while i < len(lines):
            candidate_lines = lines[:i] + lines[i + 1:]
            if candidate_lines and cached("\n".join(candidate_lines) + "\n"):
                lines = candidate_lines
            else:
                i += 1
        current = "\n".join(lines) + "\n"

        after = len(lines)
        stats.log.append(f"round {round_no + 1}: {before} -> {after} lines")
        if after == before:
            break

    stats.final_lines = len(current.splitlines())
    _log.info(
        "reduced %d -> %d lines in %d probes (%d cached)",
        stats.initial_lines, stats.final_lines, stats.probes, stats.cache_hits,
    )
    return current, stats

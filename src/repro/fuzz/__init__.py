"""Generative differential testing for the whole compiler + interpreter.

The 14 paper workloads exercise a fixed set of shapes; a miscompile that
those programs do not happen to trigger ships silently.  This package is
the Csmith-style answer (scaled to our C subset):

:mod:`repro.fuzz.gen`
    a seeded random C program generator biased toward the constructs
    register promotion, tag refinement, and the threaded engine actually
    have to get right — loops over memory-resident scalars, aliasing
    pointer stores, calls with varied MOD/REF effects, and 64-bit
    wrap-boundary arithmetic;

:mod:`repro.fuzz.oracle`
    a multi-level differential oracle: each program is compiled at -O0,
    at the full pipeline without/with promotion, and at full + pointer
    analysis + pointer promotion (all with ``verify_each_stage``), each
    variant runs on every interpreter engine (simple, threaded, and the
    tier-2 specializing engine), and every observable — output, exit
    code, counters, metric invariants — must agree;

:mod:`repro.fuzz.reduce`
    a delta-debugging (ddmin) reducer that shrinks a divergent program
    to a minimal reproducer while the divergence predicate holds;

:mod:`repro.fuzz.campaign`
    the ``repro fuzz`` driver: fans program batches out through the
    :mod:`repro.runner` scheduler, records every divergence as a
    :mod:`repro.diag` Decision-style artifact, and promotes reduced
    reproducers into the regression corpus.
"""

from .campaign import CampaignOptions, CampaignResult, run_campaign
from .gen import FuzzProgram, GenOptions, generate_program
from .oracle import (
    Divergence,
    OracleConfig,
    OracleReport,
    make_divergence_predicate,
    run_oracle,
    write_divergence_artifact,
)
from .reduce import reduce_source

__all__ = [
    "CampaignOptions",
    "CampaignResult",
    "Divergence",
    "FuzzProgram",
    "GenOptions",
    "OracleConfig",
    "OracleReport",
    "generate_program",
    "make_divergence_predicate",
    "reduce_source",
    "run_campaign",
    "run_oracle",
    "write_divergence_artifact",
]

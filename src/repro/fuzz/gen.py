"""Seeded random C program generator.

Every program is drawn from a grammar biased toward the shapes the paper
(sections 3-4) identifies as the interesting ones for register promotion
and its supporting analyses:

* nested counted loops reading and writing **global scalars** and
  **address-taken locals** (the promotion candidates);
* pointer stores through **loop-invariant** bases (``p = &g`` hoistable,
  section 3.3) and **loop-variant** bases (``p = &arr[i & MASK]``);
* calls to helpers with varied **MOD/REF effects** — pure, global
  readers, global writers, and writers/readers through pointer
  parameters — so interprocedural analysis decides what promotes;
* integer arithmetic at **wrap boundaries** (INT64_MIN/INT64_MAX
  constants, division with guarded denominators, masked shift counts,
  mixed signed/unsigned operands).

Programs are deterministic by construction: loop trip counts are small
constants, every division/modulo denominator is guarded with a ternary,
array indices are masked into bounds (power-of-two lengths), and there is
no recursion.  Any two runs of the same program must therefore agree on
every observable — which is exactly what the oracle checks across
pipeline variants and engines.

The same ``seed`` always yields the same source (``random.Random(seed)``;
no global state), so a divergence report is reproducible from its seed
alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

INT64_MAX = 9223372036854775807
INT64_MIN_EXPR = "(-9223372036854775807L - 1)"

#: constants the expression grammar leans on; boundary values are listed
#: several times to weight the draw toward the wrap edges
_INTERESTING_CONSTANTS = [
    "0", "1", "2", "3", "5", "7", "8", "15", "63", "255", "1024",
    "-1", "-2", "-7", "-128",
    "65535", "2147483647", "-2147483648",
    "4611686018427387904",
    str(INT64_MAX) + "L",
    INT64_MIN_EXPR,
]

_BINOPS = ["+", "-", "*", "&", "|", "^"]
_CMPOPS = ["<", "<=", ">", ">=", "==", "!="]
_ASSIGN_OPS = ["=", "+=", "-=", "*=", "^=", "|=", "&="]


@dataclass(frozen=True)
class GenOptions:
    """Knobs for program shape; the defaults aim at ~30-80 line programs
    that compile + run through the whole oracle in tens of milliseconds."""

    max_global_scalars: int = 5
    max_arrays: int = 2
    max_helpers: int = 3
    max_locals: int = 3
    max_loop_depth: int = 3
    max_stmts_per_block: int = 5
    max_expr_depth: int = 3
    max_trip_count: int = 9
    #: cap on printf statements inside loops (output size control)
    max_loop_prints: int = 3


@dataclass(frozen=True)
class FuzzProgram:
    """One generated program, named after its seed."""

    seed: int
    source: str

    @property
    def name(self) -> str:
        return f"fuzz-{self.seed}"


@dataclass
class _Var:
    name: str
    ctype: str  # "long" | "unsigned long" | "int"
    kind: str  # "global" | "local-reg" | "local-mem"


@dataclass
class _Array:
    name: str
    length: int  # power of two
    kind: str  # "global"


@dataclass
class _Helper:
    name: str
    effect: str  # "pure" | "reads-global" | "writes-global" | "ptr-write" | "ptr-read"
    takes_pointer: bool


class _Generator:
    def __init__(self, seed: int, options: GenOptions) -> None:
        self.rng = random.Random(seed)
        self.opts = options
        self.scalars: list[_Var] = []
        self.arrays: list[_Array] = []
        self.helpers: list[_Helper] = []
        self.locals: list[_Var] = []
        self.pointers: list[str] = []
        self.counter_id = 0
        #: every counter the program may ever use is declared up front, so
        #: the generator must never allocate past this cap (loop_stmt
        #: degrades to a plain assignment when the pool is exhausted)
        self.max_counters = options.max_loop_depth * 3
        self.loop_prints = 0
        self.print_id = 0

    # -- expressions -------------------------------------------------------
    def _readable_names(self) -> list[str]:
        names = [v.name for v in self.scalars + self.locals]
        names.extend(f"i{k}" for k in range(self.counter_id))
        return names

    def expr(self, depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.30:
            roll = rng.random()
            names = self._readable_names()
            if roll < 0.45 and names:
                return rng.choice(names)
            if roll < 0.60 and self.arrays:
                arr = rng.choice(self.arrays)
                return f"{arr.name}[{self.index_expr(arr, depth - 1)}]"
            if roll < 0.68 and self.pointers:
                return f"(*{rng.choice(self.pointers)})"
            return rng.choice(_INTERESTING_CONSTANTS)
        roll = rng.random()
        a = self.expr(depth - 1)
        b = self.expr(depth - 1)
        if roll < 0.55:
            return f"({a} {rng.choice(_BINOPS)} {b})"
        if roll < 0.70:
            # guarded division/modulo: C99 traps stay out of the corpus,
            # but the denominator expression itself stays interesting
            op = rng.choice(["/", "%"])
            return f"({b} != 0 ? {a} {op} {b} : {a})"
        if roll < 0.85:
            op = rng.choice(["<<", ">>"])
            return f"({a} {op} ({b} & 31))"
        return f"({a} {rng.choice(_CMPOPS)} {b})"

    def index_expr(self, arr: _Array, depth: int) -> str:
        mask = arr.length - 1
        counters = [f"i{k}" for k in range(self.counter_id)]
        if counters and self.rng.random() < 0.6:
            return f"({self.rng.choice(counters)} & {mask})"
        return f"({self.expr(max(depth, 0))} & {mask})"

    # -- declarations -------------------------------------------------------
    def gen_globals(self) -> list[str]:
        rng = self.rng
        lines = []
        for k in range(rng.randint(2, self.opts.max_global_scalars)):
            ctype = rng.choice(["long", "long", "int", "unsigned long"])
            init = rng.choice(["0", "1", "7", "-3", "100", str(INT64_MAX) + "L"])
            var = _Var(f"g{k}", ctype, "global")
            self.scalars.append(var)
            lines.append(f"{ctype} g{k} = {init};")
        for k in range(rng.randint(1, self.opts.max_arrays)):
            length = rng.choice([4, 8, 16])
            arr = _Array(f"arr{k}", length, "global")
            self.arrays.append(arr)
            lines.append(f"long arr{k}[{length}];")
        return lines

    def gen_helper(self, idx: int) -> list[str]:
        rng = self.rng
        effect = rng.choice(
            ["pure", "reads-global", "writes-global", "ptr-write", "ptr-read"]
        )
        takes_pointer = effect in ("ptr-write", "ptr-read")
        helper = _Helper(f"h{idx}", effect, takes_pointer)
        self.helpers.append(helper)
        params = "long *p, long a" if takes_pointer else "long a, long b"
        lines = [f"long h{idx}({params}) {{"]
        body_expr = "a" if takes_pointer else f"(a {rng.choice(_BINOPS)} b)"
        if effect == "pure":
            lines.append(f"    return {body_expr} + {rng.choice(_INTERESTING_CONSTANTS)};")
        elif effect == "reads-global":
            g = rng.choice(self.scalars).name
            lines.append(f"    return {body_expr} + {g};")
        elif effect == "writes-global":
            g = rng.choice(self.scalars).name
            lines.append(f"    {g} = {g} + {body_expr};")
            lines.append(f"    return {g};")
        elif effect == "ptr-write":
            lines.append(f"    *p = *p + {body_expr};")
            lines.append("    return *p;")
        else:  # ptr-read
            lines.append(f"    return *p + {body_expr};")
        lines.append("}")
        return lines

    # -- statements ---------------------------------------------------------
    def assign_stmt(self) -> str:
        rng = self.rng
        value = self.expr(self.opts.max_expr_depth)
        roll = rng.random()
        if roll < 0.40 and self.scalars:
            target = rng.choice(self.scalars).name
        elif roll < 0.60 and self.locals:
            target = rng.choice(self.locals).name
        elif roll < 0.80 and self.arrays:
            arr = rng.choice(self.arrays)
            target = f"{arr.name}[{self.index_expr(arr, 1)}]"
        elif self.pointers:
            target = f"*{rng.choice(self.pointers)}"
        elif self.scalars:
            target = rng.choice(self.scalars).name
        else:
            return f"acc ^= {value};"
        op = rng.choice(_ASSIGN_OPS)
        return f"{target} {op} {value};"

    def call_stmt(self) -> str:
        rng = self.rng
        helper = rng.choice(self.helpers)
        if helper.takes_pointer:
            targets = [f"&{v.name}" for v in self.scalars]
            targets.extend(f"&{v.name}" for v in self.locals if v.kind == "local-mem")
            for arr in self.arrays:
                targets.append(f"&{arr.name}[{self.index_expr(arr, 1)}]")
            ptr = rng.choice(targets)
            return f"acc += {helper.name}({ptr}, {self.expr(1)});"
        return f"acc += {helper.name}({self.expr(1)}, {self.expr(1)});"

    def retarget_stmt(self) -> str:
        """Re-aim an existing pointer: loop-variant vs invariant bases."""
        rng = self.rng
        ptr = rng.choice(self.pointers)
        choices = [f"&{v.name}" for v in self.scalars]
        choices.extend(f"&{v.name}" for v in self.locals if v.kind == "local-mem")
        for arr in self.arrays:
            choices.append(f"&{arr.name}[{self.index_expr(arr, 1)}]")
        return f"{ptr} = {rng.choice(choices)};"

    def print_stmt(self, in_loop: bool) -> str | None:
        if in_loop:
            if self.loop_prints >= self.opts.max_loop_prints:
                return None
            self.loop_prints += 1
        self.print_id += 1
        return f'printf("t{self.print_id} %ld\\n", (long)({self.expr(2)}));'

    def loop_stmt(self, depth: int, indent: str) -> list[str]:
        rng = self.rng
        if self.counter_id >= self.max_counters:
            return [indent + self.assign_stmt()]
        counter = f"i{self.counter_id}"
        self.counter_id += 1
        trip = rng.randint(2, self.opts.max_trip_count)
        style = rng.random()
        body = self.block(depth + 1, indent + "    ")
        if style < 0.6:
            head = f"for ({counter} = 0; {counter} < {trip}; {counter}++) {{"
            lines = [indent + head, *body, indent + "}"]
        elif style < 0.85:
            lines = [
                indent + f"{counter} = 0;",
                indent + f"while ({counter} < {trip}) {{",
                *body,
                indent + f"    {counter}++;",
                indent + "}",
            ]
        else:
            lines = [
                indent + f"{counter} = 0;",
                indent + "do {",
                *body,
                indent + f"    {counter}++;",
                indent + f"}} while ({counter} < {trip});",
            ]
        return lines

    def if_stmt(self, depth: int, indent: str) -> list[str]:
        cond = f"({self.expr(2)} {self.rng.choice(_CMPOPS)} {self.expr(1)})"
        then_body = self.block(depth + 1, indent + "    ", branch=True)
        lines = [indent + f"if {cond} {{", *then_body]
        if self.rng.random() < 0.5:
            else_body = self.block(depth + 1, indent + "    ", branch=True)
            lines.extend([indent + "} else {", *else_body])
        lines.append(indent + "}")
        return lines

    def block(self, depth: int, indent: str, branch: bool = False) -> list[str]:
        rng = self.rng
        lines: list[str] = []
        limit = self.opts.max_stmts_per_block if not branch else 2
        for _ in range(rng.randint(1, limit)):
            roll = rng.random()
            if roll < 0.40:
                lines.append(indent + self.assign_stmt())
            elif roll < 0.55 and self.helpers:
                lines.append(indent + self.call_stmt())
            elif roll < 0.65 and self.pointers:
                lines.append(indent + self.retarget_stmt())
            elif roll < 0.75 and depth < self.opts.max_loop_depth and not branch:
                lines.extend(self.loop_stmt(depth, indent))
            elif roll < 0.85 and depth < self.opts.max_loop_depth and not branch:
                lines.extend(self.if_stmt(depth, indent))
            else:
                stmt = self.print_stmt(in_loop=depth > 0)
                lines.append(indent + (stmt or self.assign_stmt()))
        return lines

    # -- whole program ------------------------------------------------------
    def generate(self) -> str:
        rng = self.rng
        lines: list[str] = []
        lines.extend(self.gen_globals())
        for idx in range(rng.randint(1, self.opts.max_helpers)):
            lines.extend(self.gen_helper(idx))
        lines.append("int main(void) {")
        lines.append("    long acc = 0;")

        # locals: a mix of register-resident and address-taken scalars
        n_locals = rng.randint(1, self.opts.max_locals)
        mem_locals: list[_Var] = []
        for k in range(n_locals):
            ctype = rng.choice(["long", "int", "unsigned long"])
            var = _Var(f"m{k}", ctype, "local-reg")
            self.locals.append(var)
            lines.append(f"    {ctype} m{k} = {rng.choice(_INTERESTING_CONSTANTS)};")
        # pointers make some of those locals memory-resident (&m taken)
        for k in range(rng.randint(1, 2)):
            targets = [f"&{v.name}" for v in self.locals]
            targets.extend(f"&{v.name}" for v in self.scalars)
            for arr in self.arrays:
                targets.append(f"&{arr.name}[{rng.randrange(arr.length)}]")
            target = rng.choice(targets)
            if target.startswith("&m"):
                name = target[1:]
                for var in self.locals:
                    if var.name == name:
                        var.kind = "local-mem"
                        mem_locals.append(var)
            lines.append(f"    long *p{k} = {target};")
            self.pointers.append(f"p{k}")

        # pre-declare every loop counter the body may use — one per line,
        # so the reducer can drop unused ones individually
        for k in range(self.max_counters):
            lines.append(f"    long i{k} = 0;")

        # main body: one-to-three top-level loop nests plus filler
        body: list[str] = []
        for _ in range(rng.randint(1, 3)):
            body.extend(self.loop_stmt(0, "    "))
            if self.counter_id >= self.max_counters - self.opts.max_loop_depth:
                break
        lines.extend(body)

        # deterministic epilogue: fold every observable into the output
        lines.append(f'    printf("acc %ld\\n", acc);')
        for var in self.scalars:
            lines.append(f'    printf("{var.name} %ld\\n", (long){var.name});')
        for var in self.locals:
            lines.append(f'    printf("{var.name} %ld\\n", (long){var.name});')
        for arr in self.arrays:
            counter = "i0"
            lines.append(
                f"    for ({counter} = 0; {counter} < {arr.length}; {counter}++)"
            )
            lines.append(
                f'        printf("{arr.name} %ld\\n", {arr.name}[{counter}]);'
            )
        lines.append("    return (int)(acc & 63);")
        lines.append("}")
        return "\n".join(lines) + "\n"


def generate_program(seed: int, options: GenOptions | None = None) -> FuzzProgram:
    """Deterministically generate one program from ``seed``."""
    source = _Generator(seed, options or GenOptions()).generate()
    return FuzzProgram(seed=seed, source=source)

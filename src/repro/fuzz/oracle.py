"""Multi-level differential oracle.

One generated program is judged by running a matrix of cells through the
:mod:`repro.runner` scheduler:

====================  ====================================================
level                 pipeline
====================  ====================================================
``O0``                front end only — no analysis, no optimization, no
                      register allocation (the reference semantics)
``full-nopromo``      the full pipeline with register promotion disabled
``full``              the full default pipeline (MOD/REF + promotion)
``pointer``           full + points-to analysis + pointer promotion
====================  ====================================================

each × every interpreter engine (``threaded``, ``simple``, and the
tier-2 specializing engine), and every cell compiled with
``verify_each_stage=True`` so the IR verifier runs between passes.  The
verdict is built from four invariant families:

* **output equivalence** — every successful cell prints the same bytes
  and exits with the same code;
* **crash consistency** — if the program traps (guarded UB such as
  division by zero), *every* cell must trap with the same message; a
  trap in some variants only is a miscompile;
* **engine equivalence** — for each level, all engines must produce
  bit-identical counters (the threaded engine's batching contract and
  the tier-2 engine's exact-deoptimization contract); a violation names
  the engine pair that split;
* **counter consistency** — loads/stores breakdowns must sum, and
  disjoint instruction classes cannot exceed ``total_ops``.

A fifth, *advisory* check compares memory traffic between ``full`` and
``full-nopromo``: promotion inserting more dynamic loads+stores than it
removes is legal (a zero- or one-trip loop still pays the landing-pad
load and the exit store) but worth flagging, so it is recorded as a
warning rather than a divergence.

Divergences serialize as :class:`repro.diag.ledger.Decision`-style
records so ``repro explain``-era tooling and the fuzz artifacts share one
vocabulary.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..diag.ledger import Decision
from ..inccomp.store import FunctionStore
from ..interp import MachineOptions
from ..opt.promotion import PromotionOptions
from ..pipeline import Analysis, PipelineOptions
from ..runner.scheduler import CellData, CellFailure, CellSpec, run_cells
from .gen import FuzzProgram

ENGINES = ("threaded", "simple", "tier2")

#: levels whose dynamic memory traffic the advisory check compares
_TRAFFIC_PAIR = ("full-nopromo", "full")


def o0_options() -> PipelineOptions:
    """The reference cell: lowered IR straight into the interpreter."""
    return PipelineOptions(
        analysis=Analysis.NONE,
        promotion=False,
        pointer_promotion=False,
        value_numbering=False,
        constant_propagation=False,
        licm=False,
        pre=False,
        dce=False,
        clean=False,
        run_regalloc=False,
        verify_each_stage=True,
    )


def oracle_levels(
    promotion_options: PromotionOptions | None = None,
) -> dict[str, PipelineOptions]:
    """The level → pipeline map (``promotion_options`` lets tests inject a
    deliberately broken promotion pass into the promoting levels)."""
    promo = promotion_options or PromotionOptions()
    return {
        "O0": o0_options(),
        "full-nopromo": PipelineOptions(promotion=False, verify_each_stage=True),
        "full": PipelineOptions(verify_each_stage=True, promotion_options=promo),
        "pointer": PipelineOptions(
            analysis=Analysis.POINTER,
            pointer_promotion=True,
            verify_each_stage=True,
            promotion_options=promo,
        ),
    }


@dataclass(frozen=True)
class OracleConfig:
    """Which slice of the matrix to run and how much fuel to grant."""

    max_steps: int = 5_000_000
    levels: tuple[str, ...] = ("O0", "full-nopromo", "full", "pointer")
    engines: tuple[str, ...] = ENGINES
    promotion_options: PromotionOptions | None = None

    def pipeline_for(self, level: str) -> PipelineOptions:
        return oracle_levels(self.promotion_options)[level]


@dataclass
class Divergence:
    """One violated invariant."""

    kind: str  # output-divergence | crash-divergence | engine-divergence |
    #           counter-invariant
    message: str
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "message": self.message, "detail": self.detail}


@dataclass
class OracleReport:
    """The verdict for one program."""

    program: FuzzProgram
    status: str  # "ok" | "trap" | "divergent"
    divergences: list[Divergence] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    cells: dict[str, dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status != "divergent"

    def decisions(self) -> list[Decision]:
        """Decision-style provenance (the :mod:`repro.diag` vocabulary)."""
        if not self.divergences:
            action = "trapped" if self.status == "trap" else "passed"
            return [
                Decision(
                    pass_name="fuzz.oracle",
                    function=self.program.name,
                    action=action,
                    detail={"seed": self.program.seed},
                )
            ]
        return [
            Decision(
                pass_name="fuzz.oracle",
                function=self.program.name,
                action="diverged",
                reason=d.kind,
                detail={"seed": self.program.seed, "message": d.message, **d.detail},
            )
            for d in self.divergences
        ]

    def as_dict(self) -> dict:
        return {
            "program": self.program.name,
            "seed": self.program.seed,
            "status": self.status,
            "divergences": [d.as_dict() for d in self.divergences],
            "warnings": list(self.warnings),
            "cells": self.cells,
            "decisions": [d.as_dict() for d in self.decisions()],
        }


def build_oracle_specs(
    name: str, source: str, config: OracleConfig
) -> list[CellSpec]:
    """One spec per (level, engine) cell of the oracle matrix."""
    specs: list[CellSpec] = []
    for level in config.levels:
        options = config.pipeline_for(level)
        for engine in config.engines:
            specs.append(
                CellSpec(
                    workload=name,
                    variant=f"{level}+{engine}",
                    source=source,
                    options=options,
                    machine=MachineOptions(
                        max_steps=config.max_steps, engine=engine
                    ),
                )
            )
    return specs


def classify_outcomes(
    program: FuzzProgram,
    outcomes: dict[str, CellData | CellFailure],
) -> OracleReport:
    """Fold one program's cell outcomes into an :class:`OracleReport`.

    ``outcomes`` maps ``"<level>+<engine>"`` → cell outcome.
    """
    report = OracleReport(program=program, status="ok")
    successes: dict[str, CellData] = {}
    failures: dict[str, CellFailure] = {}
    for variant, outcome in outcomes.items():
        if isinstance(outcome, CellData):
            successes[variant] = outcome
            report.cells[variant] = {
                "exit_code": outcome.exit_code,
                "output_sha": _digest(outcome.output),
                "counters": outcome.counters.as_dict(),
            }
        else:
            failures[variant] = outcome
            report.cells[variant] = {
                "failure": outcome.kind,
                "message": outcome.message,
            }

    # crash consistency -----------------------------------------------------
    if failures and successes:
        report.divergences.append(
            Divergence(
                kind="crash-divergence",
                message=(
                    f"{sorted(failures)} crashed while {sorted(successes)} "
                    "ran to completion"
                ),
                detail={
                    "crashed": {v: f.message for v, f in sorted(failures.items())}
                },
            )
        )
    elif failures:
        messages = {f.message for f in failures.values()}
        if len(messages) == 1:
            report.status = "trap"
        else:
            report.divergences.append(
                Divergence(
                    kind="crash-divergence",
                    message="variants trapped with different faults",
                    detail={
                        "crashed": {
                            v: f.message for v, f in sorted(failures.items())
                        }
                    },
                )
            )

    # output equivalence ----------------------------------------------------
    if successes:
        groups: dict[tuple[int, str], list[str]] = {}
        for variant, data in sorted(successes.items()):
            groups.setdefault((data.exit_code, data.output), []).append(variant)
        if len(groups) > 1:
            baseline_key, baseline_variants = next(iter(groups.items()))
            detail = {
                "groups": [
                    {
                        "variants": variants,
                        "exit_code": key[0],
                        "output_sha": _digest(key[1]),
                        "output_head": key[1][:400],
                    }
                    for key, variants in groups.items()
                ]
            }
            report.divergences.append(
                Divergence(
                    kind="output-divergence",
                    message=(
                        f"{len(groups)} distinct (output, exit) groups; e.g. "
                        f"{baseline_variants} vs the rest"
                    ),
                    detail=detail,
                )
            )

    # engine equivalence ----------------------------------------------------
    by_level: dict[str, dict[str, CellData]] = {}
    for variant, data in successes.items():
        level, _, engine = variant.rpartition("+")
        by_level.setdefault(level, {})[engine] = data
    for level, engines in sorted(by_level.items()):
        if len(engines) < 2:
            continue
        counters = {e: d.counters.as_dict() for e, d in engines.items()}
        first_engine, first = next(iter(counters.items()))
        for engine, other in counters.items():
            if other != first:
                fields = sorted(k for k in first if first[k] != other.get(k))
                report.divergences.append(
                    Divergence(
                        kind="engine-divergence",
                        message=(
                            f"level {level}: {engine} counters differ "
                            f"from {first_engine}"
                        ),
                        detail={
                            "level": level,
                            "engines": [first_engine, engine],
                            "fields": fields,
                            "counters": counters,
                        },
                    )
                )
                break

    # counter consistency ----------------------------------------------------
    for variant, data in sorted(successes.items()):
        c = data.counters
        problems = []
        if c.loads != c.scalar_loads + c.general_loads:
            problems.append("loads != scalar_loads + general_loads")
        if c.stores != c.scalar_stores + c.general_stores:
            problems.append("stores != scalar_stores + general_stores")
        if c.total_ops < c.loads + c.stores + c.branches:
            problems.append("total_ops < loads + stores + branches")
        if min(c.as_dict().values()) < 0:
            problems.append("negative counter")
        if problems:
            report.divergences.append(
                Divergence(
                    kind="counter-invariant",
                    message=f"{variant}: {'; '.join(problems)}",
                    detail={"variant": variant, "counters": c.as_dict()},
                )
            )

    # advisory: promotion should not grow dynamic memory traffic ------------
    base_level, promo_level = _TRAFFIC_PAIR
    for engine in ("threaded",):
        base = successes.get(f"{base_level}+{engine}")
        promo = successes.get(f"{promo_level}+{engine}")
        if base is None or promo is None:
            continue
        if promo.counters.memory_ops() > base.counters.memory_ops():
            report.warnings.append(
                f"promotion increased loads+stores: "
                f"{base.counters.memory_ops()} -> "
                f"{promo.counters.memory_ops()} (legal for zero/low-trip "
                f"loops, worth a look)"
            )

    if report.divergences:
        report.status = "divergent"
    return report


def run_oracle(
    program: FuzzProgram,
    config: OracleConfig | None = None,
    jobs: int = 1,
    fn_store: "FunctionStore | None" = None,
) -> OracleReport:
    """Run the whole matrix for one program and classify the outcomes.

    ``fn_store`` makes the matrix incremental per function: levels share
    nothing with each other (their options differ), but successive
    oracle runs over related sources — a campaign batch, the reducer's
    thousands of probes — reuse every function body they did not touch.
    """
    config = config or OracleConfig()
    specs = build_oracle_specs(program.name, program.source, config)
    # inline runs share one compilation per level across the engine pair
    outcomes = run_cells(
        specs,
        jobs=jobs,
        retries=0,
        compile_cache={} if jobs <= 1 else None,
        fn_store=fn_store,
    )
    return classify_outcomes(
        program, {variant: o for (_, variant), o in outcomes.items()}
    )


def make_divergence_predicate(
    config: OracleConfig | None = None,
    kind: str | None = None,
):
    """A reducer predicate: does ``source`` still exhibit a divergence?

    Invalid programs (the reducer removes lines blindly, so most probes
    fail to compile) make every cell crash identically, which classifies
    as consistent — i.e. the predicate is ``False`` and the candidate is
    rejected, exactly the behavior ddmin needs.  ``kind`` restricts the
    predicate to one divergence kind so reduction cannot drift from a
    miscompile to an unrelated inconsistency.
    """
    config = config or OracleConfig()
    scheduler_log = logging.getLogger("repro.runner.scheduler")
    # one warm memo across every probe: ddmin deletes a few lines per
    # candidate, so most of each probe's functions hit the store
    fn_store = FunctionStore(root=None, max_entries=4096)

    def predicate(source: str) -> bool:
        # most probes fail to compile by design; the scheduler's per-cell
        # crash warnings are pure noise here, so keep only its errors
        previous = scheduler_log.level
        scheduler_log.setLevel(logging.ERROR)
        try:
            report = run_oracle(
                FuzzProgram(seed=-1, source=source), config, fn_store=fn_store
            )
        finally:
            scheduler_log.setLevel(previous)
        if kind is None:
            return report.status == "divergent"
        return any(d.kind == kind for d in report.divergences)

    return predicate


def write_divergence_artifact(
    report: OracleReport,
    outdir: str | Path,
    reduced_source: str | None = None,
) -> Path:
    """Persist one divergence as an on-disk artifact directory.

    Layout: ``<outdir>/<program>/program.c`` (the offending source),
    ``report.json`` (Decision-style provenance + per-cell observables),
    and ``reduced.c`` when the reducer ran.
    """
    target = Path(outdir) / report.program.name
    target.mkdir(parents=True, exist_ok=True)
    (target / "program.c").write_text(report.program.source)
    (target / "report.json").write_text(
        json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
    )
    if reduced_source is not None:
        (target / "reduced.c").write_text(reduced_source)
    return target


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def config_with_broken_promotion(base: OracleConfig | None = None) -> OracleConfig:
    """An oracle config whose promoting levels run the deliberately
    unsound promotion (``unsafe_ignore_call_ambiguity``) — the known
    miscompile the reducer and the fuzz self-tests are validated against."""
    base = base or OracleConfig()
    return replace(
        base,
        promotion_options=PromotionOptions(unsafe_ignore_call_ambiguity=True),
    )

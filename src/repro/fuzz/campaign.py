"""The ``repro fuzz`` campaign driver.

Generates programs in batches, fans every batch's oracle matrix out
through the :mod:`repro.runner` scheduler (one :class:`CellSpec` per
(program, level, engine) cell — so ``--jobs`` parallelism, bounded
retries, and graceful CellFailure degradation all come for free), and
folds the outcomes back into per-program verdicts.

Budget semantics: ``budget_seconds`` is wall clock; the campaign stops
*starting* new batches once the budget is spent, so a run always finishes
the batch in flight.  ``max_programs`` caps the count exactly (useful for
deterministic CI smoke runs and tests).

Every divergence becomes an artifact directory (source + Decision-style
``report.json``), is delta-reduced to a minimal reproducer unless
``reduce`` is off, and — when ``corpus_dir`` is set — the reduced
program is promoted into the regression corpus for a permanent tier-1
differential test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..diag.log import get_logger
from ..runner.scheduler import run_cells
from ..trace import (
    FlightRecorder,
    flight_recorder,
    install_flight_recorder,
    uninstall_flight_recorder,
)
from .gen import FuzzProgram, GenOptions, generate_program
from .oracle import (
    OracleConfig,
    OracleReport,
    build_oracle_specs,
    classify_outcomes,
    make_divergence_predicate,
    write_divergence_artifact,
)
from .reduce import reduce_source

_log = get_logger(__name__)

ProgressFn = Callable[[OracleReport], None]


@dataclass
class CampaignOptions:
    """One fuzzing run's shape."""

    budget_seconds: float = 60.0
    max_programs: int | None = None
    seed: int = 0
    jobs: int = 1
    batch_size: int = 16
    keep_going: bool = False
    reduce: bool = True
    corpus_dir: str | None = None
    artifacts_dir: str = "fuzz-artifacts"
    oracle: OracleConfig = field(default_factory=OracleConfig)
    gen: GenOptions = field(default_factory=GenOptions)


@dataclass
class CampaignResult:
    """Aggregate outcome (the CLI summary and the CI gate)."""

    programs: int = 0
    ok: int = 0
    traps: int = 0
    divergent: int = 0
    seconds: float = 0.0
    first_seed: int = 0
    last_seed: int = -1
    divergence_reports: list[OracleReport] = field(default_factory=list)
    artifact_dirs: list[Path] = field(default_factory=list)
    reduced_sources: dict[str, str] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return self.divergent == 0

    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def summary(self) -> str:
        rate = self.programs / self.seconds if self.seconds > 0 else 0.0
        return (
            f"fuzz: {self.programs} program(s) in {self.seconds:.1f}s "
            f"({rate:.1f}/s) — {self.ok} ok, {self.traps} trap-consistent, "
            f"{self.divergent} DIVERGENT (seeds {self.first_seed}.."
            f"{self.last_seed})"
        )


def run_campaign(
    options: CampaignOptions, progress: ProgressFn | None = None
) -> CampaignResult:
    """Run one budgeted fuzzing campaign."""
    started = time.perf_counter()
    result = CampaignResult(first_seed=options.seed)
    next_seed = options.seed
    stop = False
    from ..inccomp import FunctionStore

    fn_store = FunctionStore(root=None, max_entries=4096)

    # last-N program history + recent log records ride along in every
    # divergence artifact (see _handle_divergence)
    recorder = install_flight_recorder(FlightRecorder(capacity=256))
    try:
        while not stop:
            elapsed = time.perf_counter() - started
            if elapsed >= options.budget_seconds:
                break
            batch_size = options.batch_size
            if options.max_programs is not None:
                remaining = options.max_programs - result.programs
                if remaining <= 0:
                    break
                batch_size = min(batch_size, remaining)

            batch = [
                generate_program(next_seed + k, options.gen)
                for k in range(batch_size)
            ]
            next_seed += batch_size
            specs = [
                spec
                for program in batch
                for spec in build_oracle_specs(
                    program.name, program.source, options.oracle
                )
            ]
            # a fresh per-batch compile cache bounds memory while letting each
            # level's engine set share one compilation (inline runs only);
            # the function store persists across batches — generated
            # programs share helper shapes, and a bounded memo is cheap
            outcomes = run_cells(
                specs,
                jobs=options.jobs,
                retries=0,
                compile_cache={} if options.jobs <= 1 else None,
                fn_store=fn_store,
            )

            for program in batch:
                cell_outcomes = {
                    variant: outcome
                    for (workload, variant), outcome in outcomes.items()
                    if workload == program.name
                }
                report = classify_outcomes(program, cell_outcomes)
                recorder.record_event(
                    "fuzz.program",
                    program=program.name,
                    seed=program.seed,
                    status=report.status,
                )
                result.programs += 1
                result.last_seed = program.seed
                if report.status == "ok":
                    result.ok += 1
                elif report.status == "trap":
                    result.traps += 1
                else:
                    result.divergent += 1
                    result.divergence_reports.append(report)
                    _handle_divergence(report, options, result)
                    if not options.keep_going:
                        stop = True
                if progress is not None:
                    progress(report)
                if stop:
                    break
    finally:
        uninstall_flight_recorder()

    result.seconds = time.perf_counter() - started
    return result


def _handle_divergence(
    report: OracleReport, options: CampaignOptions, result: CampaignResult
) -> None:
    """Artifact + (optionally) reduce + (optionally) promote to corpus."""
    _log.warning(
        "divergence in %s: %s",
        report.program.name,
        "; ".join(d.kind for d in report.divergences),
    )
    reduced: str | None = None
    if options.reduce:
        # pin the reduction to the first observed kind so it cannot drift
        # to an unrelated inconsistency while lines are being deleted
        kind = report.divergences[0].kind
        predicate = make_divergence_predicate(options.oracle, kind=kind)
        try:
            reduced, stats = reduce_source(report.program.source, predicate)
            _log.info(
                "reduced %s: %d -> %d lines",
                report.program.name, stats.initial_lines, stats.final_lines,
            )
        except ValueError:
            # flaky divergence (should not happen: everything here is
            # deterministic) — keep the full program as the artifact
            _log.warning("divergence did not reproduce under the reducer")
    artifact = write_divergence_artifact(
        report, options.artifacts_dir, reduced_source=reduced
    )
    recorder = flight_recorder()
    if recorder is not None:
        # recent program history + log records, inside the artifact dir
        recorder.dump(
            artifact,
            "fuzz_divergence",
            meta={
                "program": report.program.name,
                "seed": report.program.seed,
                "kinds": [d.kind for d in report.divergences],
            },
        )
    result.artifact_dirs.append(artifact)
    if reduced is not None:
        result.reduced_sources[report.program.name] = reduced
    if options.corpus_dir is not None:
        corpus = Path(options.corpus_dir)
        corpus.mkdir(parents=True, exist_ok=True)
        body = reduced if reduced is not None else report.program.source
        header = (
            f"/* {report.program.name}: "
            f"{'; '.join(d.kind for d in report.divergences)}\n"
            f"   regenerate: repro fuzz --seed {report.program.seed} "
            f"--programs 1 */\n"
        )
        (corpus / f"{report.program.name}.c").write_text(header + body)

"""Parallel, cached, instrumented experiment runner.

Four cooperating modules:

* :mod:`~repro.runner.scheduler` — process-pool job scheduler with
  per-cell timeouts, bounded retries, and graceful degradation;
* :mod:`~repro.runner.cache` — content-addressed on-disk result cache;
* :mod:`~repro.runner.telemetry` — per-pass span tracing with Chrome
  trace export;
* :mod:`~repro.runner.report` — suite orchestration, aggregation into the
  harness's figure shapes, and ``suite.json`` serialization.

Heavy submodules are loaded lazily: the compiler pipeline itself imports
:mod:`~repro.runner.telemetry` for its pass spans, so this package's
``__init__`` must not eagerly import the scheduler (which imports the
pipeline back).
"""

from __future__ import annotations

from . import telemetry
from .telemetry import span, tracing

__all__ = [
    "CellData",
    "CellFailure",
    "CellOutcome",
    "CellSpec",
    "ResultCache",
    "SuiteReport",
    "build_suite_specs",
    "cell_key",
    "execute_cell",
    "run_cells",
    "run_suite_report",
    "span",
    "telemetry",
    "tracing",
    "write_suite_json",
]

_LAZY = {
    "CellData": "scheduler",
    "CellFailure": "scheduler",
    "CellOutcome": "scheduler",
    "CellSpec": "scheduler",
    "execute_cell": "scheduler",
    "run_cells": "scheduler",
    "ResultCache": "cache",
    "cell_key": "cache",
    "SuiteReport": "report",
    "build_suite_specs": "report",
    "run_suite_report": "report",
    "write_suite_json": "report",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value

"""Compatibility shim — the tracing layer moved to :mod:`repro.trace`.

This module originally held the runner's span telemetry.  It grew into
the end-to-end tracing layer (trace context propagation across the serve
pool's fork boundary, flight recorder, JSONL export) and now lives in
the :mod:`repro.trace` package; everything importable from here is
re-exported unchanged so existing callers and cached payloads keep
working.  New code should import from ``repro.trace`` directly.
"""

from __future__ import annotations

from ..trace import (  # noqa: F401
    SpanEvent,
    Trace,
    TraceContext,
    chrome_trace,
    current_trace,
    format_span_summary,
    module_op_breakdown,
    module_op_count,
    span,
    tracing,
    write_chrome_trace,
)

__all__ = [
    "SpanEvent",
    "Trace",
    "TraceContext",
    "chrome_trace",
    "current_trace",
    "format_span_summary",
    "module_op_breakdown",
    "module_op_count",
    "span",
    "tracing",
    "write_chrome_trace",
]

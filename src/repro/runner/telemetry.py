"""Lightweight tracing for the experiment runner.

A :class:`Trace` records nested, wall-clock :func:`span`\\ s — one per
compiler pass, plus ``parse`` and ``execute`` — together with the static
operation count of the module before and after each pass, so a trace shows
both where the time goes and which pass removes which operations.

The layer is designed to cost nothing when disabled: :func:`span` checks a
module-level current trace and yields immediately when none is installed,
so the pipeline can be instrumented unconditionally.  Traces export in two
forms: the Chrome trace-event format (``chrome://tracing`` /
https://ui.perfetto.dev) via :func:`chrome_trace`, and a human summary
table via :func:`format_span_summary`.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "SpanEvent",
    "Trace",
    "chrome_trace",
    "current_trace",
    "format_span_summary",
    "module_op_breakdown",
    "module_op_count",
    "span",
    "tracing",
]


@dataclass
class SpanEvent:
    """One completed span.

    ``start`` is seconds since the owning trace began; ``seconds`` is the
    inclusive duration and ``self_seconds`` excludes time spent in child
    spans, so summing ``self_seconds`` over a trace never double-counts.
    """

    name: str
    start: float
    seconds: float
    depth: int
    self_seconds: float
    args: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "depth": self.depth,
            "self_seconds": self.self_seconds,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SpanEvent":
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),  # type: ignore[arg-type]
            seconds=float(data["seconds"]),  # type: ignore[arg-type]
            depth=int(data["depth"]),  # type: ignore[arg-type]
            self_seconds=float(data["self_seconds"]),  # type: ignore[arg-type]
            args=dict(data.get("args", {})),  # type: ignore[arg-type]
        )


def module_op_count(module) -> int:
    """Static instruction count — the per-pass size metric."""
    return sum(
        1 for function in module.functions.values() for _ in function.instructions()
    )


def module_op_breakdown(module) -> dict[str, int]:
    """Static instruction counts bucketed by opcode class.

    Buckets: ``loads`` (sload/cload/load), ``stores`` (sstore/store),
    ``copies`` (mov), ``calls``, ``branches`` (br/cbr/ret), ``other``
    (arithmetic, address computation, phi...).  ``nop`` placeholders are
    excluded — they are dead weight the clean pass erases, not work.
    """
    from ..ir.instructions import (
        Branch,
        Call,
        CLoad,
        MemLoad,
        MemStore,
        Mov,
        Nop,
        Ret,
        ScalarLoad,
        ScalarStore,
    )

    counts = {
        "loads": 0, "stores": 0, "copies": 0,
        "calls": 0, "branches": 0, "other": 0,
    }
    for function in module.functions.values():
        for instr in function.instructions():
            if isinstance(instr, (ScalarLoad, CLoad, MemLoad)):
                counts["loads"] += 1
            elif isinstance(instr, (ScalarStore, MemStore)):
                counts["stores"] += 1
            elif isinstance(instr, Mov):
                counts["copies"] += 1
            elif isinstance(instr, Call):
                counts["calls"] += 1
            elif isinstance(instr, (Branch, Ret)):
                counts["branches"] += 1
            elif not isinstance(instr, Nop):
                counts["other"] += 1
    return counts


class Trace:
    """An ordered collection of spans from one traced activity."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.epoch = time.perf_counter()
        self.events: list[SpanEvent] = []
        # one child-time accumulator per open span, plus a root slot
        self._child_time: list[float] = [0.0]

    @contextmanager
    def span(self, name: str, module=None, **args: object) -> Iterator[None]:
        depth = len(self._child_time) - 1
        self._child_time.append(0.0)
        ops_before = module_op_count(module) if module is not None else None
        classes_before = module_op_breakdown(module) if module is not None else None
        start = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - start
            child_time = self._child_time.pop()
            self._child_time[-1] += seconds
            event_args: dict[str, object] = dict(args)
            if ops_before is not None:
                ops_after = module_op_count(module)
                event_args["ops_before"] = ops_before
                event_args["ops_after"] = ops_after
                event_args["ops_delta"] = ops_after - ops_before
            if classes_before is not None:
                classes_after = module_op_breakdown(module)
                class_delta = {
                    cls: classes_after[cls] - classes_before[cls]
                    for cls in classes_after
                    if classes_after[cls] != classes_before[cls]
                }
                if class_delta:
                    event_args["ops_by_class_delta"] = class_delta
            self.events.append(
                SpanEvent(
                    name=name,
                    start=start - self.epoch,
                    seconds=seconds,
                    depth=depth,
                    self_seconds=max(0.0, seconds - child_time),
                    args=event_args,
                )
            )

    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.events if e.depth == 0)


_CURRENT: Trace | None = None


def current_trace() -> Trace | None:
    return _CURRENT


@contextmanager
def tracing(name: str = "trace") -> Iterator[Trace]:
    """Install a fresh trace as the current one for the duration."""
    global _CURRENT
    previous = _CURRENT
    trace = Trace(name)
    _CURRENT = trace
    try:
        yield trace
    finally:
        _CURRENT = previous


@contextmanager
def span(name: str, module=None, **args: object) -> Iterator[None]:
    """Record a span on the current trace; free no-op when tracing is off."""
    trace = _CURRENT
    if trace is None:
        yield
        return
    with trace.span(name, module=module, **args):
        yield


# -- export ----------------------------------------------------------------


def chrome_trace(groups: dict[str, list[SpanEvent]]) -> dict:
    """Convert span groups (label -> events) to the Chrome trace-event
    format: one synthetic thread per group, complete (``ph: X``) events in
    microseconds."""
    trace_events: list[dict] = []
    for tid, (label, events) in enumerate(sorted(groups.items())):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": label},
            }
        )
        for event in events:
            trace_events.append(
                {
                    "name": event.name,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": round(event.start * 1e6, 3),
                    "dur": round(event.seconds * 1e6, 3),
                    "args": dict(event.args),
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, groups: dict[str, list[SpanEvent]]) -> None:
    from pathlib import Path

    Path(path).write_text(json.dumps(chrome_trace(groups), indent=1) + "\n")


def format_span_summary(groups: dict[str, list[SpanEvent]]) -> str:
    """Aggregate spans by name across all groups: calls, self time, the net
    static operations removed (``-ops_delta`` summed), and the load subset
    of that (from ``ops_by_class_delta``)."""
    totals: dict[str, dict[str, float]] = {}
    for events in groups.values():
        for event in events:
            entry = totals.setdefault(
                event.name, {"calls": 0, "self": 0.0, "removed": 0, "loads": 0}
            )
            entry["calls"] += 1
            entry["self"] += event.self_seconds
            delta = event.args.get("ops_delta")
            if isinstance(delta, int):
                entry["removed"] -= delta
            by_class = event.args.get("ops_by_class_delta")
            if isinstance(by_class, dict):
                loads_delta = by_class.get("loads")
                if isinstance(loads_delta, int):
                    entry["loads"] -= loads_delta
    grand_self = sum(entry["self"] for entry in totals.values()) or 1.0
    header = (
        f"{'span':<20} {'calls':>6} {'self (s)':>10} {'% self':>8} "
        f"{'ops removed':>12} {'loads removed':>14}"
    )
    lines = [header, "-" * len(header)]
    for name, entry in sorted(totals.items(), key=lambda kv: -kv[1]["self"]):
        lines.append(
            f"{name:<20} {int(entry['calls']):>6} {entry['self']:>10.3f} "
            f"{100.0 * entry['self'] / grand_self:>8.1f} "
            f"{int(entry['removed']):>12} {int(entry['loads']):>14}"
        )
    return "\n".join(lines)

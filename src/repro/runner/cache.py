"""Content-addressed on-disk result cache for experiment cells.

A cell's key is the SHA-256 of everything that determines its result:

* the workload's C source and preprocessor defines,
* the full :class:`~repro.pipeline.PipelineOptions` (including nested
  promotion and register-allocation options),
* the :class:`~repro.interp.MachineOptions`,
* :data:`SCHEMA_VERSION` (bump when the stored payload changes meaning),
* a fingerprint of the compiler's own source files, so editing any pass
  invalidates every cached cell automatically — only genuinely unrelated
  edits (docs, tests, the runner itself) keep the cache warm.

Values are small JSON payloads (counters, output, exit code, timing) laid
out two-level deep under the cache root — ``.repro-cache/ab/abcdef....json``
— so the directory stays listable even with tens of thousands of cells.
Failures are never cached.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
from pathlib import Path

__all__ = ["DEFAULT_CACHE_DIR", "SCHEMA_VERSION", "ResultCache", "cell_key"]

#: bump when the cached payload or the meaning of a counter changes
SCHEMA_VERSION = 3  # v3: cells may be produced by incremental per-function
#                     compilation (repro.inccomp); byte-identical by
#                     contract, but invalidate pre-inccomp payloads

DEFAULT_CACHE_DIR = Path(".repro-cache")

#: directories whose edits do not affect experiment results
_NON_SEMANTIC_PARTS = ("runner", "serve")


def _jsonable(value):
    """Canonical, deterministic JSON form of options objects."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


@functools.cache
def code_fingerprint() -> str:
    """SHA-256 over every semantic source file of the ``repro`` package."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root)
        if relative.parts and relative.parts[0] in _NON_SEMANTIC_PARTS:
            continue
        digest.update(str(relative).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cell_key(
    source: str,
    defines: dict[str, str] | None,
    options,
    machine,
    schema_version: int = SCHEMA_VERSION,
) -> str:
    """The content address of one (program, variant, machine) cell."""
    payload = {
        "schema": schema_version,
        "code": code_fingerprint(),
        "source": source,
        "defines": _jsonable(defines or {}),
        "pipeline": _jsonable(options),
        "machine": _jsonable(machine),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Directory-backed cache of cell payload dicts, keyed by hex digest."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps({"schema": SCHEMA_VERSION, **payload}, sort_keys=True)
        # write-then-rename so concurrent runs never observe a torn file
        tmp = path.with_suffix(f".tmp.{id(self)}")
        tmp.write_text(body)
        tmp.replace(path)

    def clear(self) -> int:
        """Explicit invalidation: remove every cached cell, return count."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))

"""Suite orchestration and reporting.

:func:`run_suite_report` is the runner's front door: it expands the
workload x variant matrix into :class:`~repro.runner.scheduler.CellSpec`
jobs, hands them to the scheduler, and folds the outcomes back into the
harness's :class:`~repro.harness.experiments.ProgramResult` /
``FigureRow`` shapes.  The result is a :class:`SuiteReport` that renders
the paper's Figure 5/6/7 tables *and* serializes to a machine-readable
``suite.json``.

Output-agreement checking (the end-to-end correctness oracle) happens
here, after the join, over cells that succeeded — a crashed variant
produces a :class:`~repro.runner.scheduler.CellFailure` entry and a
non-zero suite exit code without suppressing the comparison of its
healthy siblings.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..diag.host import host_metadata
from ..harness.experiments import METRICS, ProgramResult, figure_rows
from ..inccomp.store import FunctionStore
from ..interp import MachineOptions
from ..pipeline import ExperimentCell, PipelineOptions, paper_variants
from ..regalloc import RegAllocOptions
from ..workloads import Workload, all_workloads, get_workload
from .cache import SCHEMA_VERSION, ResultCache
from .scheduler import (
    CellData,
    CellFailure,
    CellOutcome,
    CellSpec,
    ProgressFn,
    run_cells,
)
from .telemetry import SpanEvent

__all__ = [
    "SuiteReport",
    "build_suite_specs",
    "run_suite_report",
    "write_suite_json",
]


@dataclass
class SuiteReport:
    """Everything one suite run produced."""

    results: dict[str, ProgramResult]
    failures: list[CellFailure]
    disagreements: list[str]
    outcomes: dict[tuple[str, str], CellOutcome]
    seconds: float = 0.0
    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    #: interpreter engine every cell ran under (threaded | simple)
    engine: str = "threaded"

    @property
    def ok(self) -> bool:
        return not self.failures and not self.disagreements

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def trace_groups(self) -> dict[str, list[SpanEvent]]:
        """Per-cell span groups for Chrome-trace export / the summary."""
        groups: dict[str, list[SpanEvent]] = {}
        for (workload, variant), outcome in sorted(self.outcomes.items()):
            if isinstance(outcome, CellData) and outcome.trace_events:
                groups[f"{workload}:{variant}"] = [
                    SpanEvent.from_dict(event) for event in outcome.trace_events
                ]
        return groups

    def to_dict(self) -> dict:
        programs: dict[str, dict] = {}
        for (workload, variant), outcome in sorted(self.outcomes.items()):
            entry = programs.setdefault(workload, {"cells": {}, "failures": {}})
            if isinstance(outcome, CellData):
                entry["cells"][variant] = {
                    "counters": outcome.counters.as_dict(),
                    "exit_code": outcome.exit_code,
                    "seconds": round(outcome.seconds, 6),
                    "from_cache": outcome.from_cache,
                    "metrics": dict(outcome.metrics),
                }
            else:
                entry["failures"][variant] = outcome.as_dict()
        figures = {
            metric: [
                {
                    "program": row.program,
                    "analysis": row.analysis,
                    "without": row.without,
                    "with": row.with_promotion,
                    "difference": row.difference,
                    "percent_removed": round(row.percent_removed, 4),
                }
                for row in figure_rows(self.results, metric)
            ]
            for metric in METRICS
        }
        return {
            "schema": SCHEMA_VERSION,
            "host": host_metadata(),
            "ok": self.ok,
            "jobs": self.jobs,
            "engine": self.engine,
            "seconds": round(self.seconds, 6),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "programs": programs,
            "figures": figures,
            "disagreements": list(self.disagreements),
        }

    def json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def build_suite_specs(
    workloads: list[Workload],
    pointer_promotion: bool = False,
    regalloc: RegAllocOptions | None = None,
    max_steps: int = 50_000_000,
    engine: str = "threaded",
) -> list[CellSpec]:
    """The full matrix: one spec per (workload, paper variant)."""
    machine = MachineOptions(max_steps=max_steps, engine=engine)
    specs: list[CellSpec] = []
    for workload in workloads:
        for variant, options in paper_variants(
            pointer_promotion=pointer_promotion, regalloc=regalloc
        ).items():
            specs.append(
                CellSpec(
                    workload=workload.name,
                    variant=variant,
                    source=workload.source,
                    options=options,
                    machine=machine,
                    defines=tuple(sorted(workload.defines.items())),
                )
            )
    return specs


def collect_results(
    outcomes: dict[tuple[str, str], CellOutcome],
    check_agreement: bool = True,
) -> tuple[dict[str, ProgramResult], list[CellFailure], list[str]]:
    """Fold cell outcomes into per-program results plus failure lists.

    Only programs whose every variant succeeded appear in ``results`` (a
    figure row needs both sides of the without/with pair); programs with
    failures are reported through the failure list and ``suite.json``.
    """
    per_program: dict[str, dict[str, CellOutcome]] = {}
    for (workload, variant), outcome in outcomes.items():
        per_program.setdefault(workload, {})[variant] = outcome
    results: dict[str, ProgramResult] = {}
    failures: list[CellFailure] = []
    disagreements: list[str] = []
    for workload, cells in per_program.items():
        succeeded = {
            variant: outcome
            for variant, outcome in cells.items()
            if isinstance(outcome, CellData)
        }
        failures.extend(
            outcome
            for outcome in cells.values()
            if isinstance(outcome, CellFailure)
        )
        if check_agreement and len(succeeded) > 1:
            disagreements.extend(_check_agreement(workload, succeeded))
        if len(succeeded) == len(cells):
            result = ProgramResult(name=workload)
            for variant, data in succeeded.items():
                result.cells[variant] = ExperimentCell(
                    variant=variant,
                    counters=data.counters,
                    exit_code=data.exit_code,
                    output=data.output,
                    compile_result=data.compile_result,
                )
            results[workload] = result
    return results, failures, disagreements


def _check_agreement(workload: str, cells: dict[str, CellData]) -> list[str]:
    baseline_variant, baseline = next(iter(cells.items()))
    problems = []
    for variant, data in cells.items():
        if data.output != baseline.output or data.exit_code != baseline.exit_code:
            problems.append(
                f"{workload}: variant {variant} diverged from "
                f"{baseline_variant}: exit {data.exit_code} vs "
                f"{baseline.exit_code}"
            )
    return problems


def run_suite_report(
    names: list[str] | None = None,
    *,
    pointer_promotion: bool = False,
    regalloc: RegAllocOptions | None = None,
    max_steps: int = 50_000_000,
    engine: str = "threaded",
    jobs: int = 1,
    cache: ResultCache | None = None,
    timeout: float | None = None,
    retries: int = 1,
    collect_trace: bool = False,
    check_agreement: bool = True,
    progress: ProgressFn | None = None,
    fn_store: "FunctionStore | None" = None,
) -> SuiteReport:
    """Run the suite (or a named subset) through the scheduler."""
    workloads = (
        [get_workload(name) for name in names]
        if names is not None
        else all_workloads()
    )
    specs = build_suite_specs(
        workloads,
        pointer_promotion=pointer_promotion,
        regalloc=regalloc,
        max_steps=max_steps,
        engine=engine,
    )
    started = time.perf_counter()
    outcomes = run_cells(
        specs,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        cache=cache,
        collect_trace=collect_trace,
        progress=progress,
        fn_store=fn_store,
    )
    results, failures, disagreements = collect_results(
        outcomes, check_agreement=check_agreement
    )
    # preserve the requested workload ordering in the figure tables
    ordered = {w.name: results[w.name] for w in workloads if w.name in results}
    return SuiteReport(
        results=ordered,
        failures=failures,
        disagreements=disagreements,
        outcomes=outcomes,
        seconds=time.perf_counter() - started,
        jobs=jobs,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        engine=engine,
    )


def write_suite_json(path: str | Path, report: SuiteReport) -> None:
    Path(path).write_text(report.json() + "\n")

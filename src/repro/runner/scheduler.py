"""Job scheduler: fan experiment cells out over a process pool.

Each ``(workload, variant)`` cell is an independent job — it carries its
own source text, so injected or synthetic workloads run in worker
processes without any registry coordination.  The scheduler provides:

* **parallelism** — ``jobs > 1`` executes cells on a
  :class:`~concurrent.futures.ProcessPoolExecutor`; ``jobs <= 1`` runs
  inline in-process (no pickling, deterministic, and the full
  ``CompileResult`` stays available to the caller via the slim result's
  ``compile_result`` field);
* **graceful degradation** — a cell that raises or times out yields a
  structured :class:`CellFailure` instead of killing the suite; output
  agreement is checked *after* the join, over succeeded cells only (see
  :mod:`repro.runner.report`);
* **bounded retries** — crashed cells (including a worker process dying
  and taking the pool with it) are resubmitted to a fresh pool up to
  ``retries`` extra times;
* **caching** — when a :class:`~repro.runner.cache.ResultCache` is given,
  hits skip execution entirely and successes are written back;
* **telemetry** — with ``collect_trace=True`` every cell records per-pass
  spans (see :mod:`repro.runner.telemetry`) that travel back to the parent
  as plain dicts for merging into one Chrome trace.

Timeouts are enforced at the join: the parent waits at most ``timeout``
seconds per cell, so a cell is guaranteed *at least* that budget (cells
joined later get more, since all cells run concurrently).  A timed-out
worker is abandoned, not killed — the interpreter's ``max_steps`` fuel
bounds how long it can linger.  Inline execution cannot be preempted, so
``timeout`` only applies when ``jobs > 1``.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Union

from ..diag.log import get_logger
from ..diag.metrics import metrics_session
from ..errors import ReproError
from ..inccomp.store import FunctionStore
from ..interp import Counters, MachineOptions
from ..pipeline import (
    CompileResult,
    PipelineOptions,
    compile_and_run,
    compile_source,
    run_compiled,
)
from ..trace import TraceContext
from . import telemetry
from .cache import ResultCache, cell_key

_log = get_logger(__name__)

__all__ = [
    "CellData",
    "CellFailure",
    "CellOutcome",
    "CellSpec",
    "compile_memo_key",
    "execute_cell",
    "run_cells",
    "spec_cache_key",
]


@dataclass(frozen=True)
class CellSpec:
    """One schedulable job: compile ``source`` with ``options`` and run it."""

    workload: str
    variant: str
    source: str
    options: PipelineOptions
    machine: MachineOptions
    defines: tuple[tuple[str, str], ...] = ()

    @property
    def key(self) -> tuple[str, str]:
        return (self.workload, self.variant)


@dataclass
class CellData:
    """A successful cell — slim and picklable (no IR attached)."""

    workload: str
    variant: str
    counters: Counters
    exit_code: int
    output: str
    seconds: float
    from_cache: bool = False
    trace_events: list[dict] = field(default_factory=list)
    #: metrics the passes and interpreter published while this cell ran
    #: (see :mod:`repro.diag.metrics`) — the drift gate's raw material
    metrics: dict[str, float] = field(default_factory=dict)
    #: populated only for inline (jobs<=1, cache-miss) execution
    compile_result: CompileResult | None = None

    ok = True

    def cache_payload(self) -> dict:
        return {
            "counters": self.counters.as_dict(),
            "exit_code": self.exit_code,
            "output": self.output,
            "seconds": self.seconds,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_cache_payload(cls, spec: CellSpec, payload: dict) -> "CellData":
        return cls(
            workload=spec.workload,
            variant=spec.variant,
            counters=Counters(**payload["counters"]),
            exit_code=int(payload["exit_code"]),
            output=payload["output"],
            seconds=float(payload["seconds"]),
            from_cache=True,
            metrics=dict(payload.get("metrics", {})),
        )


@dataclass
class CellFailure:
    """A cell that crashed or timed out; the suite keeps going."""

    workload: str
    variant: str
    kind: str  # "crash" | "timeout"
    message: str
    attempts: int
    seconds: float = 0.0

    ok = False

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "seconds": round(self.seconds, 6),
        }


CellOutcome = Union[CellData, CellFailure]


def execute_cell(
    spec: CellSpec,
    collect_trace: bool = False,
    keep_compile_result: bool = False,
    compile_cache: dict[str, CompileResult] | None = None,
    trace_ctx: TraceContext | None = None,
    trace_worker: str | None = None,
    fn_store: FunctionStore | None = None,
) -> CellData:
    """Compile and run one cell (runs in the worker process).

    ``keep_compile_result`` attaches the full IR-bearing
    :class:`CompileResult`; pooled runs leave it off so only the slim
    counters/output payload crosses the process boundary.

    ``compile_cache`` (a plain dict keyed by :func:`compile_memo_key`)
    lets sibling cells that differ only in :class:`MachineOptions` — the
    fuzz oracle's engine pairs — share one compilation.  Running never
    mutates the compiled module, so reuse is sound; the compile-time
    metrics land only in the first sharing cell's snapshot.

    ``trace_ctx`` joins this cell to a distributed trace: spans are
    stamped with the context's trace id, parented under its
    ``parent_id``, and returned in ``trace_events`` (with identity and
    wall-clock fields) for the requesting process to adopt.  It implies
    ``collect_trace``.
    """
    started = time.perf_counter()
    with metrics_session() as registry:
        if collect_trace or trace_ctx is not None:
            with telemetry.tracing(
                f"{spec.workload}:{spec.variant}",
                context=trace_ctx,
                worker=(
                    trace_worker or f"pid{os.getpid()}"
                    if trace_ctx is not None
                    else None
                ),
            ) as trace:
                if trace_ctx is not None:
                    # a live ledger is what makes _pass_span tag each
                    # pass with its decision count in exported spans;
                    # plain --trace runs skip it to keep that output
                    # byte-identical with the pre-tracing format
                    from ..diag.ledger import decision_ledger

                    with decision_ledger():
                        cell = _compile_and_run(spec, compile_cache, fn_store)
                else:
                    cell = _compile_and_run(spec, compile_cache, fn_store)
            events = [event.as_dict() for event in trace.events]
        else:
            cell = _compile_and_run(spec, compile_cache, fn_store)
            events = []
    _log.debug(
        "cell %s[%s] done in %.3fs", spec.workload, spec.variant,
        time.perf_counter() - started,
    )
    return CellData(
        workload=spec.workload,
        variant=spec.variant,
        counters=cell.counters,
        exit_code=cell.exit_code,
        output=cell.output,
        seconds=time.perf_counter() - started,
        trace_events=events,
        metrics=registry.as_dict(),
        compile_result=cell.compile_result if keep_compile_result else None,
    )


def _compile_and_run(
    spec: CellSpec,
    compile_cache: dict[str, CompileResult] | None = None,
    fn_store: FunctionStore | None = None,
):
    if compile_cache is None:
        return compile_and_run(
            spec.source,
            spec.options,
            name=spec.workload,
            defines=dict(spec.defines) or None,
            machine_options=spec.machine,
            fn_store=fn_store,
        )
    key = compile_memo_key(spec)
    compiled = compile_cache.get(key)
    if compiled is None:
        compiled = compile_source(
            spec.source,
            spec.options,
            name=spec.workload,
            defines=dict(spec.defines) or None,
            fn_store=fn_store,
        )
        compile_cache[key] = compiled
    return run_compiled(compiled, spec.machine)


def spec_cache_key(spec: CellSpec) -> str:
    return cell_key(spec.source, dict(spec.defines), spec.options, spec.machine)


def compile_memo_key(spec: CellSpec) -> str:
    """Machine-independent cache key: everything that shapes the compiled
    module but nothing about how it will be interpreted."""
    return cell_key(spec.source, dict(spec.defines), spec.options, None)


ProgressFn = Callable[[CellSpec, CellOutcome], None]


def run_cells(
    specs: list[CellSpec],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    cache: ResultCache | None = None,
    collect_trace: bool = False,
    progress: ProgressFn | None = None,
    compile_cache: dict[str, CompileResult] | None = None,
    fn_store: FunctionStore | None = None,
) -> dict[tuple[str, str], CellOutcome]:
    """Run every cell, returning an outcome per ``(workload, variant)``.

    ``compile_cache`` enables compile sharing between cells that differ
    only in machine options — inline (``jobs <= 1``) execution only,
    since compiled modules do not cross process boundaries.  The caller
    owns the dict (and its memory): pass a fresh ``{}`` per batch to keep
    it bounded.

    ``fn_store`` enables incremental per-function compilation (see
    :mod:`repro.inccomp`): cells that miss ``cache`` still reuse every
    optimized function body whose content key is unchanged.  Pooled runs
    ship the store to each worker by pickle, so only a disk-backed store
    (``root`` set) actually shares entries across processes; a
    memory-only store degrades to per-submission scratch space.
    """
    outcomes: dict[tuple[str, str], CellOutcome] = {}
    by_key = {spec.key: spec for spec in specs}
    if len(by_key) != len(specs):
        raise ValueError("duplicate (workload, variant) cells in schedule")

    def finish(spec: CellSpec, outcome: CellOutcome) -> None:
        outcomes[spec.key] = outcome
        if (
            cache is not None
            and isinstance(outcome, CellData)
            and not outcome.from_cache
        ):
            cache.put(spec_cache_key(spec), outcome.cache_payload())
        if progress is not None:
            progress(spec, outcome)

    pending: list[CellSpec] = []
    for spec in specs:
        payload = cache.get(spec_cache_key(spec)) if cache is not None else None
        if payload is not None:
            finish(spec, CellData.from_cache_payload(spec, payload))
        else:
            pending.append(spec)

    if jobs <= 1:
        for spec in pending:
            finish(
                spec,
                _run_inline(spec, retries, collect_trace, compile_cache, fn_store),
            )
    else:
        _run_pooled(
            pending, jobs, timeout, retries, collect_trace, finish, fn_store
        )
    return outcomes


def _run_inline(
    spec: CellSpec,
    retries: int,
    collect_trace: bool,
    compile_cache: dict[str, CompileResult] | None = None,
    fn_store: FunctionStore | None = None,
) -> CellOutcome:
    attempts = 0
    started = time.perf_counter()
    while True:
        attempts += 1
        try:
            return execute_cell(
                spec,
                collect_trace,
                keep_compile_result=True,
                compile_cache=compile_cache,
                fn_store=fn_store,
            )
        except ReproError as error:
            last = f"{type(error).__name__}: {error}"
        except Exception as error:  # genuinely unexpected: keep the trace
            last = "".join(
                traceback.format_exception_only(type(error), error)
            ).strip()
        if attempts > retries:
            _log.warning(
                "cell %s[%s] crashed after %d attempt(s): %s",
                spec.workload, spec.variant, attempts, last,
            )
            return CellFailure(
                workload=spec.workload,
                variant=spec.variant,
                kind="crash",
                message=last,
                attempts=attempts,
                seconds=time.perf_counter() - started,
            )


def _run_pooled(
    pending: list[CellSpec],
    jobs: int,
    timeout: float | None,
    retries: int,
    collect_trace: bool,
    finish: Callable[[CellSpec, CellOutcome], None],
    fn_store: FunctionStore | None = None,
) -> None:
    attempts: dict[tuple[str, str], int] = {spec.key: 0 for spec in pending}
    # only a disk-backed store shares entries across process boundaries;
    # shipping a memory-only one would just pickle dead weight per cell
    if fn_store is not None and fn_store.root is None:
        fn_store = None
    round_specs = list(pending)
    while round_specs:
        retry_specs: list[CellSpec] = []
        abandoned_workers = False
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(round_specs)))
        futures = {
            spec.key: pool.submit(
                execute_cell, spec, collect_trace, fn_store=fn_store
            )
            for spec in round_specs
        }
        for spec in round_specs:
            future = futures[spec.key]
            attempts[spec.key] += 1
            started = time.perf_counter()
            try:
                finish(spec, future.result(timeout=timeout))
                continue
            except FutureTimeoutError:
                future.cancel()
                abandoned_workers = True
                finish(
                    spec,
                    CellFailure(
                        workload=spec.workload,
                        variant=spec.variant,
                        kind="timeout",
                        message=f"exceeded {timeout:.3g}s cell budget",
                        attempts=attempts[spec.key],
                        seconds=time.perf_counter() - started,
                    ),
                )
                continue
            except BrokenExecutor as error:
                # the worker process died (segfault, OOM-kill); the whole
                # pool is unusable, so every unfinished sibling retries in
                # a fresh pool next round
                message = f"worker process died: {error}"
            except ReproError as error:
                message = f"{type(error).__name__}: {error}"
            except Exception as error:
                message = "".join(
                    traceback.format_exception_only(type(error), error)
                ).strip()
            if attempts[spec.key] <= retries:
                retry_specs.append(spec)
            else:
                finish(
                    spec,
                    CellFailure(
                        workload=spec.workload,
                        variant=spec.variant,
                        kind="crash",
                        message=message,
                        attempts=attempts[spec.key],
                        seconds=time.perf_counter() - started,
                    ),
                )
        # don't block the suite on abandoned (timed-out) workers; their
        # max_steps fuel bounds how long they can run on
        pool.shutdown(wait=not abandoned_workers, cancel_futures=True)
        round_specs = retry_specs

"""Client-side resilience primitives: retry, breaker, latency tracking.

These are the building blocks :class:`~repro.serve.client.ResilientClient`
composes.  Each one takes its clock / randomness as an injectable so the
state machines are exhaustively testable with a fake clock and a scripted
rng — ``tests/serve/test_resilience.py`` runs every transition with zero
real sleeps.

* :class:`RetryPolicy` — which error codes are worth retrying (the
  closed vocabulary: ``worker_crashed``, ``queue_full``,
  ``deadline_exceeded``, plus transport-level connection errors) and the
  jittered exponential backoff schedule between attempts;
* :class:`CircuitBreaker` — the classic closed/open/half-open machine
  per host: consecutive failures trip it open, a recovery timeout lets
  one half-open probe through, the probe's outcome closes or re-opens
  it.  While open, requests fail fast with a *client-side* shed
  (``circuit_open``) instead of hammering a sick server;
* :class:`LatencyTracker` — a bounded sample of recent latencies whose
  p95 derives the hedging delay (fire a backup request only once the
  primary is slower than 95% of its peers);
* :class:`ResilienceStats` — the counters ``repro loadgen`` folds into
  ``BENCH_serve.json`` so resilience behaviour is benchmarked alongside
  latency.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "LatencyTracker",
    "ResilienceStats",
    "RetryPolicy",
    "RETRYABLE_CODES",
]

#: the closed vocabulary of server error codes a retry can fix: the
#: work was lost to a crash, shed under pressure, or timed out — all
#: safe to re-send under the same idempotency key.  Everything else
#: (``cell_failed``, ``invalid_params``, ``draining``, ...) is
#: deterministic or terminal and retrying would only repeat it.
RETRYABLE_CODES = frozenset(
    {"worker_crashed", "queue_full", "deadline_exceeded"}
)


class CircuitOpen(Exception):
    """Request shed client-side: the breaker is open for this host."""


class RetryPolicy:
    """Jittered exponential backoff over the retryable vocabulary."""

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        rng: random.Random | None = None,
    ) -> None:
        assert max_attempts >= 1
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.multiplier = multiplier
        #: fraction of the nominal delay randomized away: delay is drawn
        #: uniformly from [(1-jitter)·d, d], decorrelating retry storms
        self.jitter = jitter
        self.rng = rng or random.Random()

    def retryable(self, code: str) -> bool:
        return code in RETRYABLE_CODES

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        nominal = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (attempt - 1),
        )
        if self.jitter <= 0:
            return nominal
        low = nominal * (1.0 - self.jitter)
        return low + (nominal - low) * self.rng.random()

    def schedule(self) -> list[float]:
        """The nominal (jitter-free) delays between all attempts."""
        return [
            min(
                self.max_delay_s,
                self.base_delay_s * self.multiplier ** (attempt - 1),
            )
            for attempt in range(1, self.max_attempts)
        ]


class CircuitBreaker:
    """Closed / open / half-open failure gate, fake-clock testable.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip to open;
    * **open** — :meth:`allow` refuses everything until ``recovery_s``
      has elapsed, then transitions to half-open;
    * **half-open** — exactly one in-flight probe is let through
      (concurrent callers are still refused, which is the race the
      tests pin); probe success closes the breaker, probe failure
      re-opens it and restarts the recovery clock.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        assert failure_threshold >= 1
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.clock = clock
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at: float | None = None
        self._probe_inflight = False
        #: times the breaker tripped open (cumulative, for stats)
        self.trips = 0

    def allow(self) -> bool:
        """May a request proceed right now?  (Advances open→half-open.)"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.clock() - self.opened_at >= self.recovery_s:
                self.state = self.HALF_OPEN
                self._probe_inflight = False
            else:
                return False
        # half-open: admit exactly one probe at a time
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        self.failures = 0
        self._probe_inflight = False
        if self.state != self.CLOSED:
            self.state = self.CLOSED
            self.opened_at = None

    def record_failure(self) -> None:
        if self.state == self.HALF_OPEN:
            # the probe failed: straight back to open, clock restarted
            self._trip()
            return
        self.failures += 1
        if self.state == self.CLOSED and self.failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = self.OPEN
        self.opened_at = self.clock()
        self.failures = 0
        self._probe_inflight = False
        self.trips += 1


class LatencyTracker:
    """Bounded window of recent request latencies; p95 drives hedging."""

    def __init__(self, window: int = 256) -> None:
        self.window = window
        self._samples: list[float] = []
        self._cursor = 0

    def record(self, latency_s: float) -> None:
        if len(self._samples) < self.window:
            self._samples.append(latency_s)
        else:
            self._samples[self._cursor] = latency_s
            self._cursor = (self._cursor + 1) % self.window

    def __len__(self) -> int:
        return len(self._samples)

    def p95(self) -> float | None:
        """The 95th-percentile latency, or None with no samples yet."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, round(0.95 * (len(ordered) - 1)))
        return ordered[index]


@dataclass
class ResilienceStats:
    """What the resilient client did on the caller's behalf."""

    attempts: int = 0
    retried: int = 0
    hedged: int = 0
    hedge_wins: int = 0
    reconnects: int = 0
    #: requests shed client-side because the breaker was open
    breaker_open: int = 0
    retries_by_code: dict[str, int] = field(default_factory=dict)

    def record_retry(self, code: str) -> None:
        self.retried += 1
        self.retries_by_code[code] = self.retries_by_code.get(code, 0) + 1

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "retried": self.retried,
            "hedged": self.hedged,
            "hedge_wins": self.hedge_wins,
            "reconnects": self.reconnects,
            "breaker_open": self.breaker_open,
            "retries_by_code": dict(sorted(self.retries_by_code.items())),
        }

"""Persistent worker pool: warm processes executing scheduler cells.

The one-shot CLI pays interpreter start-up, module imports, and compile
time on every invocation.  Workers here are long-lived
:mod:`multiprocessing` processes that amortize all three:

* imports happen once per worker lifetime;
* each worker keeps a ``compile_cache`` dict (keyed by
  :func:`repro.runner.scheduler.compile_memo_key`) so repeat requests
  for the same source/options reuse the compiled module — and with it
  the block-threaded engine's decode cache, which lives on the
  :class:`~repro.ir.module.Module`;
* below that, a memory-only :class:`~repro.inccomp.FunctionStore` memo
  makes *cold* requests incremental: a request whose source misses
  ``compile_cache`` still reuses every per-function optimized body whose
  content key matches an earlier request (see :mod:`repro.inccomp`);
* the request unit is exactly the scheduler's cell
  (:func:`repro.runner.scheduler.execute_cell`), so serving and the
  batch runner share semantics, metrics, and cache keys.

Lifecycle invariants (the parts the tests pin down):

* a worker is **recycled** (graceful shutdown + fresh spawn) after
  ``recycle_after`` requests, bounding memory growth of the warm caches;
* a worker that **crashes** mid-request (segfault, ``kill -9``) is
  killed/joined — never left as a zombie — and respawned; the in-flight
  request is retried once on the fresh worker, then failed cleanly with
  ``worker_crashed`` while the pool keeps serving;
* when a request **deadline fires mid-cell** the worker is killed and
  reaped immediately (the cell cannot be cancelled cooperatively —
  unlike the batch scheduler we never abandon a hot worker to its
  ``max_steps`` fuel) and a replacement is spawned before the next
  ticket is picked up.

Each pool slot runs one asyncio *driver* task: pull a ticket from the
admission queue, ship the job over the worker's pipe, await the reply in
an executor thread (bounded by the ticket's remaining deadline), settle
the ticket's future.  Drain = close the queue; drivers finish their
in-flight ticket, shut their worker down gracefully, and exit.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import os
import signal
import stat
import time
import traceback

from ..diag.log import current_verbosity, get_logger, set_log_context
from .metrics import ServeMetrics
from .queue import AdmissionQueue, Ticket

_log = get_logger(__name__)

__all__ = ["WorkerPool", "worker_main"]

#: default requests handled before a worker is recycled
DEFAULT_RECYCLE_AFTER = 200

#: crash retries per request ("retried once then failed cleanly")
CRASH_RETRIES = 1

_JOIN_TIMEOUT = 5.0


# --------------------------------------------------------------------------
# child side


@contextlib.contextmanager
def _maybe_tracing(name: str, trace_ctx, worker_label: str):
    """Trace the job only when the requester sent a context — untraced
    requests keep the original zero-instrumentation path."""
    if trace_ctx is None:
        yield None
        return
    from ..trace import tracing

    with tracing(name, context=trace_ctx, worker=worker_label) as trace:
        yield trace


def _handle_job(
    job: dict,
    compile_cache: dict,
    worker_index: int = 0,
    fn_store=None,
) -> dict:
    """Execute one job inside the worker process.

    A ``trace_ctx`` dict in the job joins this execution to the
    requesting side's trace: spans recorded here carry its trace id, are
    parented under the parent's dispatch span, and travel back in the
    reply as ``trace_spans`` for the server to adopt.
    """
    kind = job["kind"]
    ctx_data = job.get("trace_ctx")
    trace_ctx = None
    if ctx_data is not None:
        from ..trace import TraceContext

        trace_ctx = TraceContext.from_dict(ctx_data)
    worker_label = f"w{worker_index}"
    if kind == "cell":
        from ..runner.scheduler import execute_cell

        spec = job["spec"]
        cell = execute_cell(
            spec,
            compile_cache=compile_cache,
            trace_ctx=trace_ctx,
            trace_worker=worker_label,
            fn_store=fn_store,
        )
        result = {
            "workload": cell.workload,
            "variant": cell.variant,
            "cell": cell.cache_payload(),
        }
        if trace_ctx is not None:
            result["trace_spans"] = cell.trace_events
        return result
    if kind == "compile":
        from ..ir.printer import format_module
        from ..pipeline import compile_source

        with _maybe_tracing("compile", trace_ctx, worker_label) as trace:
            compiled = compile_source(
                job["source"],
                job["options"],
                name=job.get("name", "request"),
                defines=job.get("defines") or None,
                fn_store=fn_store,
            )
        reports = list(compiled.promotion_reports.values())
        tags = (
            set().union(*(r.promoted_tags for r in reports)) if reports else set()
        )
        result = {
            "variant": job["options"].variant_name(),
            "il": format_module(compiled.module),
            "promotion": {
                "tags_promoted": len(tags),
                "references_rewritten": sum(
                    r.references_rewritten for r in reports
                ),
                "loads_inserted": sum(r.loads_inserted for r in reports),
                "stores_inserted": sum(r.stores_inserted for r in reports),
            },
        }
        if trace_ctx is not None:
            result["trace_spans"] = [e.as_dict() for e in trace.events]
        return result
    if kind == "explain":
        from ..diag.ledger import decision_ledger
        from ..pipeline import compile_source

        with _maybe_tracing("explain", trace_ctx, worker_label) as trace:
            with decision_ledger() as ledger:
                compile_source(
                    job["source"],
                    job["options"],
                    name=job.get("name", "request"),
                    defines=job.get("defines") or None,
                    fn_store=fn_store,
                )
        filters = job.get("filters") or {}
        decisions = ledger.query(**filters)
        result = {
            "count": len(decisions),
            "decisions": [decision.as_dict() for decision in decisions],
        }
        if trace_ctx is not None:
            result["trace_spans"] = [e.as_dict() for e in trace.events]
        return result
    raise ValueError(f"unknown job kind {kind!r}")


def _close_inherited_sockets(keep_fd: int) -> None:
    """Close every socket fd a forked child inherited except ``keep_fd``.

    Only sockets: the parent's listening socket and accepted client
    connections are the fds whose inherited dups change kernel-visible
    behaviour (no FIN on close, port staying bound after parent death).
    Pipes and the event loop's epoll fd are inert in the child.  The job
    pipe itself is a Unix socketpair, hence the explicit keep.
    """
    try:
        fd_names = os.listdir("/proc/self/fd")
    except OSError:  # pragma: no cover - no procfs (non-Linux POSIX)
        return
    for name in fd_names:
        fd = int(name)
        if fd == keep_fd or fd < 3:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:  # pragma: no cover - raced with the listdir
            continue


def worker_main(
    conn,
    worker_index: int = 0,
    verbosity: int | None = None,
    slow_start_s: float = 0.0,
) -> None:
    """Child entry point: serve jobs from the pipe until told to stop.

    ``verbosity`` is the parent's global ``-v/-vv/-q`` level at spawn
    time; worker records are re-formatted with the worker id and the
    trace id of the job in flight (``-`` when untraced).
    ``slow_start_s`` is the chaos layer's ``pool.slow_start`` fault: the
    worker sleeps that long before serving its first job.
    """
    # the server handles SIGINT/SIGTERM itself and drains; a stray
    # terminal Ctrl-C must not take the workers down mid-cell
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # a fork-context child inherits every parent fd, including live TCP
    # connections: while this worker is alive, a connection the server
    # closes would never FIN (the child's dup keeps it open) and the
    # client would wait forever.  Drop everything except the job pipe.
    _close_inherited_sockets(keep_fd=conn.fileno())
    from ..diag.log import setup_worker_logging

    setup_worker_logging(worker_index, verbosity)
    if slow_start_s > 0:
        time.sleep(slow_start_s)
    # pre-import the execution stack while the worker is still idle so
    # the first job it handles (and its trace) doesn't pay module load
    from ..runner import scheduler  # noqa: F401

    compile_cache: dict = {}
    # the per-function warm memo: requests that share any function body
    # with an earlier request (same key, any module) skip re-optimizing
    # it, which is most of a cold request's compile cost.  Memory-only
    # and bounded; recycled with the worker like compile_cache.
    from ..inccomp import FunctionStore

    fn_store = FunctionStore(root=None, max_entries=4096)
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            break
        if job is None:  # graceful shutdown / recycle sentinel
            break
        ctx = job.get("trace_ctx") if isinstance(job, dict) else None
        set_log_context(trace_id=ctx["trace_id"] if ctx else "-")
        try:
            chaos = job.pop("_chaos", None) if isinstance(job, dict) else None
            if chaos is not None:
                from ..chaos.inject import enact_worker_fault

                # crash shapes never return; hang sleeps until the
                # parent's deadline reaper kills this process
                enact_worker_fault(
                    chaos,
                    lambda: _handle_job(job, compile_cache, worker_index, fn_store),
                )
            result = _handle_job(job, compile_cache, worker_index, fn_store)
            reply = {"ok": True, "result": result}
        except Exception as error:
            from ..errors import ReproError

            code = "cell_failed" if isinstance(error, ReproError) else "internal"
            message = "".join(
                traceback.format_exception_only(type(error), error)
            ).strip()
            reply = {"ok": False, "error": {"code": code, "message": message}}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# --------------------------------------------------------------------------
# parent side


def _default_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _consume_exception(future) -> None:
    """Swallow exceptions of abandoned recv futures (killed workers)."""
    if not future.cancelled():
        future.exception()


class _WorkerHandle:
    """One child process plus its parent-side pipe end."""

    def __init__(self, ctx, index: int = 0, slow_start_s: float = 0.0) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        # capture the parent's -v/-vv/-q level at spawn so the child
        # re-applies it after the fork
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn, index, current_verbosity(), slow_start_s),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.handled = 0
        self.started_at = time.monotonic()

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL + join: the worker is dead *and reaped* on return."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(_JOIN_TIMEOUT)
        self.conn.close()

    def shutdown(self) -> None:
        """Graceful stop: sentinel, bounded join, kill as last resort."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(_JOIN_TIMEOUT)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join(_JOIN_TIMEOUT)
        self.conn.close()


class _Slot:
    """A pool position: the current worker + driver-task bookkeeping."""

    def __init__(self, index: int, worker: _WorkerHandle) -> None:
        self.index = index
        self.worker = worker
        self.busy = False
        self.restarts = 0
        self.recycles = 0


class WorkerPool:
    """``size`` slots driving workers off one :class:`AdmissionQueue`."""

    def __init__(
        self,
        queue: AdmissionQueue,
        *,
        size: int = 2,
        recycle_after: int = DEFAULT_RECYCLE_AFTER,
        metrics: ServeMetrics | None = None,
        mp_context=None,
        chaos=None,
        on_replace=None,
    ) -> None:
        self.queue = queue
        self.size = max(1, size)
        self.recycle_after = max(1, recycle_after)
        self.metrics = metrics or ServeMetrics()
        self.ctx = mp_context or _default_context()
        self.slots: list[_Slot] = []
        self._drivers: list[asyncio.Task] = []
        self._hard_stop = False
        #: optional :class:`repro.chaos.FaultPlan`; every hook below is
        #: behind ``chaos is not None`` so a plain pool pays nothing
        self.chaos = chaos
        #: ``on_replace(reason, trace)`` fires after a worker is killed
        #: and respawned — the server uses it to dump a flight bundle
        #: per crash
        self.on_replace = on_replace
        #: every worker pid this pool ever spawned — the soak harness's
        #: leak check walks this after drain
        self.spawned_pids: set[int] = set()
        self._state_waiters: list[tuple[object, asyncio.Future]] = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self.slots = [
            _Slot(index, self._spawn(index)) for index in range(self.size)
        ]
        self._drivers = [
            asyncio.create_task(self._drive(slot), name=f"serve-worker-{slot.index}")
            for slot in self.slots
        ]
        self._update_gauges()

    def _spawn(self, index: int) -> _WorkerHandle:
        """Spawn one worker, applying a ``pool.slow_start`` fault if the
        plan decides one for this slot's spawn."""
        slow_start_s = 0.0
        if self.chaos is not None:
            fault = self.chaos.decide("pool.slow_start", f"w{index}")
            if fault is not None:
                slow_start_s = fault.delay_s
                self.metrics.inc("chaos.injected.pool.slow_start")
        worker = _WorkerHandle(self.ctx, index, slow_start_s)
        self.spawned_pids.add(worker.pid)
        return worker

    async def drain(self) -> None:
        """Finish in-flight work, shut every worker down, return."""
        self.queue.close()
        if self._drivers:
            await asyncio.gather(*self._drivers, return_exceptions=True)

    async def stop(self) -> None:
        """Hard stop: fail queued work, kill workers, cancel drivers."""
        self._hard_stop = True
        self.queue.close()
        self.queue.fail_pending("draining", "server shut down")
        for driver in self._drivers:
            driver.cancel()
        if self._drivers:
            await asyncio.gather(*self._drivers, return_exceptions=True)
        for slot in self.slots:
            slot.worker.kill()

    def describe(self) -> list[dict]:
        """Per-worker health facts for the ``health`` endpoint."""
        return [
            {
                "pid": slot.worker.pid,
                "busy": slot.busy,
                "handled": slot.worker.handled,
                "restarts": slot.restarts,
                "recycles": slot.recycles,
                "alive": slot.worker.alive(),
            }
            for slot in self.slots
        ]

    @property
    def busy_count(self) -> int:
        return sum(1 for slot in self.slots if slot.busy)

    # -- the driver loop ---------------------------------------------------

    async def _drive(self, slot: _Slot) -> None:
        try:
            while True:
                ticket = await self.queue.get()
                if ticket is None:
                    break
                slot.busy = True
                self._update_gauges()
                self._notify_state()
                queue_wait = time.monotonic() - ticket.enqueued_at
                self.metrics.observe_queue_wait(queue_wait)
                if ticket.trace is not None:
                    ticket.trace.add_event(
                        "queue_wait",
                        start_perf=ticket.enqueued_perf,
                        seconds=queue_wait,
                        priority=ticket.priority,
                    )
                try:
                    await self._execute(slot, ticket)
                finally:
                    slot.busy = False
                    self._update_gauges()
                    self._notify_state()
                if slot.worker.handled >= self.recycle_after:
                    self._recycle(slot)
        except asyncio.CancelledError:
            raise
        finally:
            # on hard stop the pool kills workers itself; a bounded join
            # here would stall the event loop during cancellation
            if not self._hard_stop:
                slot.worker.shutdown()

    async def _execute(self, slot: _Slot, ticket: Ticket) -> None:
        loop = asyncio.get_running_loop()
        while True:
            worker = slot.worker
            job = ticket.job
            dispatch_id = None
            dispatch_start = time.perf_counter()
            if ticket.trace is not None:
                # the dispatch span id is minted *before* the send so the
                # worker can parent its spans under it; the span itself is
                # recorded retroactively once the reply (or failure) lands
                dispatch_id = ticket.trace.new_span_id()
                job = dict(job)
                job["trace_ctx"] = {
                    "trace_id": ticket.trace.context.trace_id,
                    "parent_id": dispatch_id,
                }

            def record_dispatch(**args: object) -> None:
                if ticket.trace is not None:
                    ticket.trace.add_event(
                        "dispatch",
                        start_perf=dispatch_start,
                        seconds=time.perf_counter() - dispatch_start,
                        span_id=dispatch_id,
                        worker=slot.index,
                        pid=worker.pid,
                        attempt=ticket.attempts,
                        **args,
                    )

            if self.chaos is not None and ticket.chaos_token is not None:
                # each attempt consults the plan afresh (the occurrence
                # counter advances), so a retry's fate is also seeded
                delay = self.chaos.decide(
                    "server.dispatch_delay", ticket.chaos_token
                )
                if delay is not None:
                    self.metrics.inc("chaos.injected.server.dispatch_delay")
                    await asyncio.sleep(delay.delay_s)
                fault = self._worker_fault(ticket.chaos_token)
                if fault is not None:
                    self.metrics.inc(f"chaos.injected.{fault.site}")
                    job = dict(job)
                    job["_chaos"] = fault.worker_payload()
            try:
                worker.conn.send(job)
            except (BrokenPipeError, OSError):
                # died while idle: not an execution attempt, just respawn
                self._replace(slot, reason="idle_crash", trace=ticket.trace)
                continue
            ticket.attempts += 1
            recv = loop.run_in_executor(None, worker.conn.recv)
            recv.add_done_callback(_consume_exception)
            try:
                reply = await asyncio.wait_for(
                    asyncio.shield(recv), ticket.remaining()
                )
            except asyncio.TimeoutError:
                # deadline fired mid-cell: kill the worker (don't leak it,
                # don't let the cell burn CPU to its max_steps fuel)
                self._replace(slot, reason="deadline_kill", trace=ticket.trace)
                record_dispatch(outcome="deadline_kill")
                ticket.fail(
                    "deadline_exceeded",
                    f"deadline fired mid-cell after attempt {ticket.attempts}; "
                    "worker killed and respawned",
                )
                return
            except (EOFError, OSError, BrokenPipeError):
                self._replace(slot, reason="crash", trace=ticket.trace)
                record_dispatch(outcome="crash")
                if ticket.attempts <= CRASH_RETRIES and not ticket.expired():
                    _log.warning(
                        "worker crashed mid-request (attempt %d); retrying "
                        "on a fresh worker", ticket.attempts,
                    )
                    continue
                ticket.fail(
                    "worker_crashed",
                    f"worker died {ticket.attempts} time(s) on this request",
                )
                return
            worker.handled += 1
            record_dispatch(outcome="ok" if reply.get("ok") else "error")
            if reply.get("ok"):
                ticket.fulfil(reply["result"])
            else:
                error = reply.get("error", {})
                ticket.fail(
                    error.get("code", "internal"),
                    error.get("message", "worker reported no detail"),
                )
            return

    def _worker_fault(self, token: str):
        """First worker-enactable fault the plan decides for this attempt."""
        for site in (
            "pool.crash_before",
            "pool.crash_during",
            "pool.crash_after",
            "pool.hang",
        ):
            fault = self.chaos.decide(site, token)
            if fault is not None:
                return fault
        return None

    # -- worker replacement ------------------------------------------------

    def _replace(self, slot: _Slot, reason: str, trace=None) -> None:
        slot.worker.kill()
        slot.restarts += 1
        self.metrics.inc("serve.worker_restarts")
        self.metrics.inc(f"serve.worker_restarts.{reason}")
        _log.info(
            "worker %d (pid %s) replaced: %s",
            slot.index, slot.worker.pid, reason,
        )
        slot.worker = self._spawn(slot.index)
        if self.on_replace is not None:
            self.on_replace(reason, trace)
        self._notify_state()

    def _recycle(self, slot: _Slot) -> None:
        slot.worker.shutdown()
        slot.recycles += 1
        self.metrics.inc("serve.worker_recycles")
        _log.info(
            "worker %d recycled after %d request(s)",
            slot.index, self.recycle_after,
        )
        slot.worker = self._spawn(slot.index)
        self._notify_state()

    def _update_gauges(self) -> None:
        self.metrics.set_gauge("serve.queue_depth", self.queue.depth)
        self.metrics.set_gauge("serve.workers_busy", self.busy_count)

    # -- event-driven state waiters ----------------------------------------
    #
    # Tests (and the soak harness) used to poll ``slot.busy`` /
    # ``slot.recycles`` in 10ms sleep loops — the main source of flakes
    # under CI load.  Every state transition above now wakes these
    # waiters, so "wait until a worker is busy" is one await with no
    # wall-clock guessing.

    def _notify_state(self) -> None:
        if not self._state_waiters:
            return
        remaining = []
        for predicate, future in self._state_waiters:
            if future.done():
                continue
            if predicate():
                future.set_result(None)
            else:
                remaining.append((predicate, future))
        self._state_waiters = remaining

    async def wait_until(self, predicate, timeout: float = 10.0) -> None:
        """Await ``predicate()`` becoming true at a pool state change."""
        if predicate():
            return
        future = asyncio.get_running_loop().create_future()
        self._state_waiters.append(future_entry := (predicate, future))
        try:
            await asyncio.wait_for(future, timeout)
        finally:
            if future_entry in self._state_waiters:
                self._state_waiters.remove(future_entry)

    async def wait_busy(self, count: int = 1, timeout: float = 10.0) -> None:
        await self.wait_until(lambda: self.busy_count >= count, timeout)

    async def wait_idle(self, timeout: float = 10.0) -> None:
        await self.wait_until(lambda: self.busy_count == 0, timeout)

    async def wait_recycled(self, count: int = 1, timeout: float = 10.0) -> None:
        await self.wait_until(
            lambda: sum(slot.recycles for slot in self.slots) >= count, timeout
        )

    async def wait_restarted(self, count: int = 1, timeout: float = 10.0) -> None:
        await self.wait_until(
            lambda: sum(slot.restarts for slot in self.slots) >= count, timeout
        )

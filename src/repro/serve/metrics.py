"""Serving metrics: latency histograms on top of the diag registry.

The server owns one long-lived
:class:`~repro.diag.metrics.MetricsRegistry` — the same counter/gauge
vocabulary the passes and the drift gate speak — and publishes serving
counters into it (``serve.requests``, ``serve.cache_hits``,
``serve.coalesced``, ``serve.worker_restarts``, ...).  Latencies need
distribution shape, not just totals, so each op additionally feeds a
fixed-bucket :class:`LatencyHistogram` from which the ``metrics``
endpoint reports p50/p95/p99.

Buckets are log-spaced from 0.5 ms to 30 s: a warm-cache hit lands in
the sub-millisecond buckets, a cold 4-variant compile in the seconds
range, so one bucket layout covers both regimes.  Quantiles are
interpolated within the containing bucket — exact enough for serving
dashboards, constant memory regardless of traffic.
"""

from __future__ import annotations

import time

from ..diag.metrics import MetricsRegistry

__all__ = ["LatencyHistogram", "ServeMetrics"]

#: upper bounds (seconds) of the histogram buckets; a final +inf bucket
#: catches everything beyond the last bound
BUCKET_BOUNDS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram with interpolated quantiles."""

    __slots__ = ("counts", "count", "total", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        index = 0
        for bound in BUCKET_BOUNDS:
            if seconds <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def quantile(self, q: float) -> float:
        """The latency (seconds) at quantile ``q`` in ``[0, 1]``."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else self.max
                )
                upper = max(upper, lower)
                fraction = (target - previous) / bucket_count
                return min(lower + (upper - lower) * fraction, self.max)
        return self.max

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(self.total / self.count * 1000, 3)
            if self.count
            else 0.0,
            "p50_ms": round(self.quantile(0.50) * 1000, 3),
            "p95_ms": round(self.quantile(0.95) * 1000, 3),
            "p99_ms": round(self.quantile(0.99) * 1000, 3),
            "max_ms": round(self.max * 1000, 3),
        }


class ServeMetrics:
    """The server's metrics façade: one registry + per-op histograms."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        # an empty registry is falsy (``__len__``), so test identity
        self.registry = registry if registry is not None else MetricsRegistry()
        self.latency: dict[str, LatencyHistogram] = {}
        self.queue_wait = LatencyHistogram()
        self.started_at = time.monotonic()

    def observe_request(self, op: str, seconds: float, ok: bool) -> None:
        self.registry.inc("serve.requests")
        self.registry.inc(f"serve.requests.{op}")
        if not ok:
            self.registry.inc("serve.errors")
        histogram = self.latency.get(op)
        if histogram is None:
            histogram = self.latency[op] = LatencyHistogram()
        histogram.observe(seconds)

    def observe_error(self, code: str) -> None:
        self.registry.inc(f"serve.errors.{code}")

    def observe_queue_wait(self, seconds: float) -> None:
        self.queue_wait.observe(seconds)

    def inc(self, name: str, delta: int | float = 1) -> None:
        self.registry.inc(name, delta)

    def set_gauge(self, name: str, value: int | float) -> None:
        self.registry.set_gauge(name, value)

    def uptime_s(self) -> float:
        return time.monotonic() - self.started_at

    def snapshot(self) -> dict:
        return {
            "uptime_s": round(self.uptime_s(), 3),
            "metrics": self.registry.as_dict(),
            "latency": {
                op: histogram.snapshot()
                for op, histogram in sorted(self.latency.items())
            },
            "queue_wait": self.queue_wait.snapshot(),
        }

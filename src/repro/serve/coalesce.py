"""Single-flight request coalescing.

Identical in-flight requests collapse onto one computation.  "Identical"
means *the same content-addressed fingerprint* — the exact
:func:`repro.runner.scheduler.spec_cache_key` the result cache uses, so
two requests coalesce precisely when they would have produced the same
cache entry (same source, defines, pipeline options, machine options,
compiler fingerprint).

The first claimant becomes the **leader** and actually runs the work;
followers arriving before the leader resolves await the leader's future
and are never queued, so a thundering herd of N identical requests costs
one worker execution and N-1 metric ticks (``serve.coalesced``).

Results propagate as ``(ok, payload)`` tuples, never exceptions — a
failing leader fails its followers with the same error payload, which is
the correct semantics: they asked the same question.
"""

from __future__ import annotations

import asyncio

__all__ = ["SingleFlight"]


class SingleFlight:
    """In-flight futures keyed by content-addressed fingerprint."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}

    @property
    def depth(self) -> int:
        return len(self._inflight)

    def claim(self, key: str) -> tuple[asyncio.Future, bool]:
        """Return ``(future, is_leader)`` for ``key``.

        The leader must eventually call :meth:`resolve` exactly once —
        including on error paths — or followers wait forever.
        """
        future = self._inflight.get(key)
        if future is not None:
            return future, False
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        return future, True

    def resolve(self, key: str, ok: bool, payload: dict) -> None:
        """Leader publishes the outcome and retires the key."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result((ok, payload))

    def abandon_all(self, code: str, message: str) -> int:
        """Hard shutdown: fail every in-flight future; returns the count."""
        failed = 0
        for key in list(self._inflight):
            self.resolve(key, False, {"code": code, "message": message})
            failed += 1
        return failed

"""Admission control: a bounded two-lane queue with deadlines.

Every unit of worker-pool work enters through here.  The queue enforces
the server's backpressure contract:

* **bounded depth** — ``put`` raises :class:`QueueFull` once ``limit``
  normal-lane tickets are waiting, so overload turns into an explicit
  ``queue_full`` rejection the client can retry against, never an
  unbounded in-memory backlog;
* **priority lanes** — ``high`` tickets (health probes, operator
  traffic) are dequeued before any ``normal`` ticket and have their own
  small reserve so a saturated normal lane cannot starve them;
* **deadlines** — a ticket whose absolute deadline has already passed
  when a worker would pick it up is failed with ``deadline_exceeded``
  at dequeue time instead of wasting a worker on a result nobody is
  waiting for;
* **draining** — after :meth:`close`, ``put`` raises :class:`Draining`
  and waiters are released once the backlog is empty (``get`` returns
  ``None``), which is what lets a drain finish in-flight work without
  accepting new work.

Tickets resolve through their ``future`` (an :class:`asyncio.Future` of
``(ok, payload)``); the queue itself only ever *fails* tickets — the
worker pool fulfils them.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

__all__ = ["AdmissionQueue", "Draining", "QueueFull", "Ticket"]

#: extra slots reserved for the high-priority lane beyond ``limit``
HIGH_LANE_RESERVE = 8


class QueueFull(Exception):
    """The normal lane is at capacity; the request must be rejected."""


class Draining(Exception):
    """The server is draining; no new work is admitted."""


@dataclass
class Ticket:
    """One queued unit of work plus its completion future."""

    job: dict
    future: asyncio.Future
    #: absolute :func:`time.monotonic` deadline, or None for no deadline
    deadline: float | None = None
    priority: str = "normal"
    enqueued_at: float = field(default_factory=time.monotonic)
    #: same instant on the :func:`time.perf_counter` clock — trace span
    #: timestamps live in that domain (see :class:`repro.trace.Trace`)
    enqueued_perf: float = field(default_factory=time.perf_counter)
    attempts: int = 0
    #: the sampled request's live trace; the pool records queue-wait and
    #: dispatch spans on it and ships its context into the worker
    trace: object | None = None
    #: stable fault-decision token (idempotency key or request digest);
    #: ``None`` when the server has no chaos plan
    chaos_token: str | None = None

    def remaining(self, now: float | None = None) -> float | None:
        """Seconds left before the deadline; None when unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - (time.monotonic() if now is None else now)

    def expired(self, now: float | None = None) -> bool:
        remaining = self.remaining(now)
        return remaining is not None and remaining <= 0

    def fail(self, code: str, message: str) -> None:
        if not self.future.done():
            self.future.set_result((False, {"code": code, "message": message}))

    def fulfil(self, payload: dict) -> None:
        if not self.future.done():
            self.future.set_result((True, payload))


class AdmissionQueue:
    """Two deques + a condition variable; see the module docstring."""

    def __init__(self, limit: int = 64) -> None:
        self.limit = limit
        self._high: list[Ticket] = []
        self._normal: list[Ticket] = []
        self._closed = False
        self._waiters: list[asyncio.Future] = []

    @property
    def depth(self) -> int:
        return len(self._high) + len(self._normal)

    @property
    def normal_depth(self) -> int:
        return len(self._normal)

    @property
    def high_depth(self) -> int:
        return len(self._high)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, ticket: Ticket) -> None:
        """Admit a ticket or raise :class:`QueueFull` / :class:`Draining`."""
        if self._closed:
            raise Draining("server is draining")
        if ticket.priority == "high":
            if len(self._high) >= self.limit + HIGH_LANE_RESERVE:
                raise QueueFull(
                    f"high lane at capacity ({len(self._high)} waiting)"
                )
            self._high.append(ticket)
        else:
            if len(self._normal) >= self.limit:
                raise QueueFull(
                    f"admission queue at capacity ({len(self._normal)} waiting)"
                )
            self._normal.append(ticket)
        self._wake_one()

    async def get(self) -> Ticket | None:
        """Next runnable ticket; ``None`` once drained and empty.

        Tickets that expired while queued are failed here and skipped —
        the caller only ever sees work that still has budget.
        """
        while True:
            ticket = self._pop()
            if ticket is not None:
                if ticket.expired():
                    ticket.fail(
                        "deadline_exceeded",
                        "deadline expired while queued "
                        f"(waited {time.monotonic() - ticket.enqueued_at:.3f}s)",
                    )
                    continue
                return ticket
            if self._closed:
                return None
            waiter: asyncio.Future = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            finally:
                if waiter in self._waiters:
                    self._waiters.remove(waiter)

    def requeue(self, ticket: Ticket) -> None:
        """Put a ticket back at the *front* of its lane (crash retry)."""
        lane = self._high if ticket.priority == "high" else self._normal
        lane.insert(0, ticket)
        self._wake_one()

    def close(self) -> None:
        """Stop admitting; release every waiter so drains can finish."""
        self._closed = True
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(None)

    def fail_pending(self, code: str, message: str) -> int:
        """Fail every queued ticket (hard shutdown); returns the count."""
        failed = 0
        for ticket in self._high + self._normal:
            ticket.fail(code, message)
            failed += 1
        self._high.clear()
        self._normal.clear()
        return failed

    def _pop(self) -> Ticket | None:
        if self._high:
            return self._high.pop(0)
        if self._normal:
            return self._normal.pop(0)
        return None

    def _wake_one(self) -> None:
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(None)
                return

"""Wire protocol for ``repro serve``: newline-delimited JSON over TCP.

One request per line, one response line per request.  Frames are UTF-8
JSON objects terminated by ``\\n``; a connection may pipeline — the
server answers each request as it completes, matching responses to
requests by ``id``, so responses can arrive out of order.

Request::

    {"id": 7, "op": "suite_cell",
     "params": {"workload": "dhrystone", "variant": "modref/promo"},
     "deadline_s": 5.0, "priority": "normal"}

Response (success / failure)::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "queue_full",
                                     "message": "..."}}

``id`` is any JSON scalar the client chooses and is echoed verbatim
(``null`` when a frame was too broken to carry one).  ``deadline_s``,
``priority``, ``trace`` (request a sampled trace back with the
result) and ``idempotency_key`` (a client-chosen string naming the
*logical* request, so a retry of the same work coalesces onto the
original in-flight computation instead of queueing a duplicate) are
optional; see :data:`OPS` for the verbs and
:data:`ERROR_CODES` for every error the server emits.  Frames larger
than :data:`MAX_LINE_BYTES` are rejected with ``payload_too_large`` and
the connection is closed (the stream can no longer be framed reliably).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "OPS",
    "ProtocolError",
    "Request",
    "encode_error",
    "encode_frame",
    "encode_result",
    "parse_request",
]

#: hard cap on one request/response frame (the stream limit)
MAX_LINE_BYTES = 1 << 20

#: the verbs the server understands
OPS = frozenset(
    {"compile", "run", "suite_cell", "explain", "health", "drain", "metrics"}
)

#: every error code the server can put in ``error.code``
ERROR_CODES = frozenset(
    {
        "bad_request",  # frame is not a JSON object
        "unknown_op",  # op missing or not in OPS
        "invalid_params",  # params missing/ill-typed/unknown workload
        "payload_too_large",  # frame exceeded MAX_LINE_BYTES
        "queue_full",  # admission queue at capacity (backpressure)
        "deadline_exceeded",  # deadline fired while queued or mid-cell
        "worker_crashed",  # worker died twice on this request
        "cell_failed",  # the computation itself raised (compile/run error)
        "draining",  # server is shutting down, not accepting work
        "internal",  # unexpected server-side failure
    }
)

_PRIORITIES = ("high", "normal")


class ProtocolError(Exception):
    """A request the server refuses; carries the wire error code."""

    def __init__(self, code: str, message: str, request_id=None) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message
        self.request_id = request_id


@dataclass(frozen=True)
class Request:
    """One parsed, validated request frame."""

    op: str
    id: object = None
    params: dict = field(default_factory=dict)
    deadline_s: float | None = None
    priority: str = "normal"
    #: client opt-in to tracing: forces sampling for this request and
    #: returns the connected span tree in ``result.trace``
    trace: bool = False
    #: client-chosen identity of the *logical* request: retries carrying
    #: the same key single-flight onto the original computation, and the
    #: chaos layer uses it as the stable fault-decision token
    idempotency_key: str | None = None


def parse_request(line: bytes) -> Request:
    """Decode and validate one frame; raises :class:`ProtocolError`."""
    try:
        payload = json.loads(line)
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError("bad_request", f"frame is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError("bad_request", "frame must be a JSON object")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int, float)):
        raise ProtocolError("bad_request", "id must be a JSON scalar")
    op = payload.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            "unknown_op",
            f"op must be one of {sorted(OPS)}, got {op!r}",
            request_id=request_id,
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            "invalid_params", "params must be an object", request_id=request_id
        )
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
            raise ProtocolError(
                "invalid_params",
                "deadline_s must be a positive number",
                request_id=request_id,
            )
        deadline_s = float(deadline_s)
    priority = payload.get("priority", "normal")
    if priority not in _PRIORITIES:
        raise ProtocolError(
            "invalid_params",
            f"priority must be one of {_PRIORITIES}, got {priority!r}",
            request_id=request_id,
        )
    trace = payload.get("trace", False)
    if not isinstance(trace, bool):
        raise ProtocolError(
            "invalid_params",
            "trace must be a boolean",
            request_id=request_id,
        )
    idempotency_key = payload.get("idempotency_key")
    if idempotency_key is not None:
        if (
            not isinstance(idempotency_key, str)
            or not idempotency_key
            or len(idempotency_key) > 200
        ):
            raise ProtocolError(
                "invalid_params",
                "idempotency_key must be a non-empty string of at most "
                "200 characters",
                request_id=request_id,
            )
    return Request(
        op=op,
        id=request_id,
        params=params,
        deadline_s=deadline_s,
        priority=priority,
        trace=trace,
        idempotency_key=idempotency_key,
    )


def encode_frame(payload: dict) -> bytes:
    """One response line (compact JSON, newline-terminated)."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def encode_result(request_id, result: dict) -> bytes:
    return encode_frame({"id": request_id, "ok": True, "result": result})


def encode_error(request_id, code: str, message: str) -> bytes:
    assert code in ERROR_CODES, code
    return encode_frame(
        {
            "id": request_id,
            "ok": False,
            "error": {"code": code, "message": message},
        }
    )

"""``repro.serve`` — the resident compile-and-execute service.

Turns the one-shot experiment pipeline into a serving system: a
stdlib-only asyncio TCP server (newline-delimited JSON) in front of a
persistent worker pool that keeps imports, compiled modules, and the
block-threaded engine's decode caches warm across requests.

Modules:

* :mod:`~repro.serve.protocol` — wire framing, ops, error codes;
* :mod:`~repro.serve.queue` — bounded admission queue: backpressure,
  priority lanes, per-request deadlines;
* :mod:`~repro.serve.coalesce` — single-flight deduplication of
  identical in-flight requests (content-addressed keys);
* :mod:`~repro.serve.pool` — persistent workers executing
  :mod:`repro.runner.scheduler` cells; crash respawn + retry-once,
  recycling, deadline kills;
* :mod:`~repro.serve.metrics` — latency histograms over the
  :mod:`repro.diag` registry;
* :mod:`~repro.serve.server` — the asyncio server and endpoint logic;
* :mod:`~repro.serve.resilience` — retry policy, circuit breaker, and
  latency tracking behind the resilient client;
* :mod:`~repro.serve.client` — pipelining client, the self-healing
  :class:`ResilientClient`, + the ``repro loadgen`` campaign harness.

Fault injection for all of the above lives in :mod:`repro.chaos`; the
server takes a plan via ``ServerConfig.chaos_plan``.

See ``docs/SERVING.md`` for the protocol spec and the ops runbook.
"""

from __future__ import annotations

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "LatencyHistogram",
    "LoadgenConfig",
    "ReproServer",
    "ResilientClient",
    "RetryPolicy",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServerConfig",
    "SingleFlight",
    "WorkerPool",
    "run_loadgen",
    "wait_for_server",
]

_LAZY = {
    "AdmissionQueue": "queue",
    "CircuitBreaker": "resilience",
    "LatencyHistogram": "metrics",
    "LoadgenConfig": "client",
    "ReproServer": "server",
    "ResilientClient": "client",
    "RetryPolicy": "resilience",
    "ServeClient": "client",
    "ServeError": "client",
    "ServeMetrics": "metrics",
    "ServerConfig": "server",
    "SingleFlight": "coalesce",
    "WorkerPool": "pool",
    "run_loadgen": "client",
    "wait_for_server": "client",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value

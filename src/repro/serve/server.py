"""The ``repro serve`` asyncio TCP server.

Request path for the work ops (``compile`` / ``run`` / ``suite_cell`` /
``explain``)::

    parse -> result cache -> single-flight coalesce -> admission queue
          -> worker pool -> (cache write-back) -> response

* **cache** — cell-shaped ops (``run``, ``suite_cell``) are keyed with
  the scheduler's content-addressed fingerprint, so completed results
  are served straight from ``.repro-cache/`` and a warm serving cache is
  interchangeable with a warm ``repro suite`` cache; a request carrying
  ``params.no_cache: true`` bypasses the read (but still writes back),
  which is how the load generator's cold slice forces real
  compile/execute work on a warm server;
* **coalesce** — identical in-flight requests collapse onto one
  computation (see :mod:`repro.serve.coalesce`);
* **admission** — bounded queue with priority lanes and per-request
  deadlines (see :mod:`repro.serve.queue`); overload is an explicit
  ``queue_full`` error, a deadline firing mid-cell kills the worker;
* **control ops** — ``health`` / ``metrics`` / ``drain`` are answered
  inline on the event loop and never queue, so they stay responsive
  under full load.

Connections may pipeline: each request is dispatched as its own task and
responses are written (serialized per connection) as they complete, so
one connection with N in-flight requests behaves like N logical clients
— that is what makes single-connection coalescing and the load
generator's concurrency model work.

Draining (``drain`` op or SIGTERM in the CLI) closes the listener and
stops admitting new work (``draining`` errors); everything already
admitted — in-flight *and* queued — still completes and is answered,
pending responses are flushed, then connections close.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import logging
import time
from dataclasses import dataclass

from ..diag.host import host_metadata
from ..diag.log import get_logger
from ..interp import MachineOptions
from ..pipeline import Analysis, PipelineOptions, paper_variants
from ..trace import (
    FlightRecorder,
    HeadSampler,
    Trace,
    TraceContext,
    new_trace_id,
    write_spans_jsonl,
)
from .coalesce import SingleFlight
from .metrics import ServeMetrics
from .pool import DEFAULT_RECYCLE_AFTER, WorkerPool
from .protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    encode_error,
    encode_result,
    parse_request,
)
from .queue import AdmissionQueue, Draining, QueueFull, Ticket

_log = get_logger(__name__)

__all__ = ["ReproServer", "ServerConfig"]


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 7411
    workers: int = 2
    queue_limit: int = 64
    #: cap applied when a request carries no ``deadline_s``
    default_deadline_s: float = 120.0
    recycle_after: int = DEFAULT_RECYCLE_AFTER
    #: result-cache directory; ``None`` disables the cache entirely
    cache_dir: str | None = ".repro-cache"
    default_max_steps: int = 50_000_000
    max_line_bytes: int = MAX_LINE_BYTES
    #: head-based sampling rate for request traces (0 = only requests
    #: that ask with ``trace: true``, 1 = every work request)
    trace_sample: float = 0.0
    #: JSONL file that receives every sampled request's spans
    trace_export: str | None = None
    #: flight-recorder ring size (always on; dumps crash bundles)
    flight_capacity: int = 512
    #: where crash bundles land (``fuzz-artifacts/``-style directories)
    artifacts_dir: str = "serve-artifacts"
    #: cap on crash bundles written per server lifetime
    max_flight_dumps: int = 20
    #: give up on a graceful drain after this many seconds (dump a
    #: flight bundle, then hard-stop the pool); ``None`` waits forever
    drain_timeout_s: float | None = None
    #: fault-injection plan: a :class:`repro.chaos.FaultPlan`, a spec
    #: string for :meth:`FaultPlan.parse` (the ``--chaos-plan`` flag),
    #: or ``None`` — with no plan, every chaos hook is a single
    #: ``is not None`` check (pay-for-use)
    chaos_plan: object | None = None


class ReproServer:
    """One serving instance; create, ``await start()``, ``await drain()``."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.metrics = ServeMetrics()
        chaos = self.config.chaos_plan
        if isinstance(chaos, str):
            from ..chaos.plan import FaultPlan

            chaos = FaultPlan.parse(chaos)
        self.chaos = chaos
        self.queue = AdmissionQueue(limit=self.config.queue_limit)
        self.pool = WorkerPool(
            self.queue,
            size=self.config.workers,
            recycle_after=self.config.recycle_after,
            metrics=self.metrics,
            chaos=self.chaos,
            on_replace=self._on_worker_replace,
        )
        self.flight = SingleFlight()
        if self.config.cache_dir is not None:
            from ..runner.cache import ResultCache

            self.cache = ResultCache(self.config.cache_dir)
        else:
            self.cache = None
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._drained = asyncio.Event()
        self._writers: set[asyncio.StreamWriter] = set()
        self._request_tasks: set[asyncio.Task] = set()
        self.sampler = HeadSampler(self.config.trace_sample)
        self.recorder = FlightRecorder(capacity=self.config.flight_capacity)
        self._spans_exported = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        # warm the lazy imports _build_job leans on so the first request
        # doesn't pay ~10ms of module loading inside its trace
        from ..runner import cache, scheduler  # noqa: F401

        # recent server-side log records ride along in crash bundles
        logging.getLogger("repro").addHandler(self.recorder.log_handler)
        if self.config.trace_export is not None:
            # truncate: the export is this server instance's span stream
            open(self.config.trace_export, "w").close()
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_line_bytes,
        )
        _log.info(
            "repro-serve listening on %s:%d (%d workers, queue limit %d)",
            self.config.host, self.port, self.config.workers,
            self.config.queue_limit,
        )

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight, flush, close, return."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self.metrics.set_gauge("serve.draining", 1)
        _log.info("drain: no longer accepting work")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.config.drain_timeout_s is None:
            await self.pool.drain()
        else:
            try:
                await asyncio.wait_for(
                    self.pool.drain(), self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                _log.error(
                    "drain did not finish within %.1fs; dumping flight "
                    "recorder and hard-stopping the pool",
                    self.config.drain_timeout_s,
                )
                self._dump_flight("drain_timeout")
                await self.pool.stop()
        # every ticket is settled; let the response writers run dry
        pending = [task for task in self._request_tasks if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        logging.getLogger("repro").removeHandler(self.recorder.log_handler)
        self._drained.set()
        _log.info("drain complete")

    async def stop(self) -> None:
        """Hard stop for tests/teardown; pending work fails ``draining``."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pool.stop()
        self.flight.abandon_all("draining", "server shut down")
        for task in list(self._request_tasks):
            task.cancel()
        if self._request_tasks:
            await asyncio.gather(*self._request_tasks, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        logging.getLogger("repro").removeHandler(self.recorder.log_handler)
        self._drained.set()

    # -- connection handling ----------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.metrics.observe_error("payload_too_large")
                    await self._send(
                        writer,
                        write_lock,
                        encode_error(
                            None,
                            "payload_too_large",
                            f"frame exceeds {self.config.max_line_bytes} "
                            "bytes; closing connection",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._serve_request(line, writer, write_lock)
                )
                tasks.add(task)
                self._request_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._request_tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_request(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        started = time.monotonic()
        op = "invalid"
        ok = False
        trace: Trace | None = None
        chaos_token: str | None = None
        try:
            request = parse_request(line)
            op = request.op
            if self.chaos is not None and op in self._WORK_OPS:
                chaos_token = self._chaos_token(request)
            trace = self._maybe_trace(request)
            if trace is None:
                result = await self._dispatch(request, None, chaos_token)
            else:
                with trace.span("request", op=op) as extra:
                    result = await self._dispatch(request, trace, chaos_token)
                    # book the root's self time — op routing, event-loop
                    # hops between stages, result framing, preemption —
                    # as an explicit framing child at span close: hit
                    # serving counts toward the cache bucket, dispatch
                    # bookkeeping toward `other`.  Derived from the close
                    # clock read itself, so coverage stays ~100% even on
                    # a sub-millisecond hit under machine load.
                    extra["frame_gap"] = (
                        "cache_hit_framing"
                        if result.get("from_cache")
                        else "request_framing"
                    )
                self._export_trace(trace)
                result["trace"] = {
                    "trace_id": trace.context.trace_id,
                    "spans": [event.as_dict() for event in trace.events],
                }
            ok = True
            frame = encode_result(request.id, result)
        except ProtocolError as error:
            self.metrics.observe_error(error.code)
            frame = encode_error(error.request_id, error.code, error.message)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # pragma: no cover - defensive
            _log.exception("internal error serving request")
            self.metrics.observe_error("internal")
            frame = encode_error(None, "internal", f"{type(error).__name__}: {error}")
        latency = time.monotonic() - started
        self.metrics.observe_request(op, latency, ok)
        # always-on coarse marker: one preallocated ring slot per request,
        # regardless of sampling — this is what crash bundles replay
        self.recorder.record_span(
            f"request.{op}",
            seconds=latency,
            wall_start=time.time() - latency,
            trace_id=(
                trace.context.trace_id if trace is not None else None
            ),
            worker="serve",
            args={"ok": ok},
        )
        if chaos_token is not None:
            wire_fault = self._wire_fault(chaos_token)
            if wire_fault is not None:
                await self._send_mangled(writer, write_lock, frame, wire_fault)
                return
        await self._send(writer, write_lock, frame)

    _WORK_OPS = frozenset({"compile", "run", "suite_cell", "explain"})

    def _maybe_trace(self, request: Request) -> Trace | None:
        """Head-based sampling decision, made once at admission: the
        client's ``trace: true`` forces it, otherwise the configured
        sample rate applies (work ops only — control ops are answered
        inline and have nothing to attribute)."""
        if request.op not in self._WORK_OPS:
            return None
        if not (request.trace or self.sampler.sample()):
            return None
        return Trace(
            f"request.{request.op}",
            context=TraceContext(new_trace_id()),
            worker="serve",
        )

    def _export_trace(self, trace: Trace) -> None:
        if self.config.trace_export is None:
            return
        self._spans_exported += write_spans_jsonl(
            self.config.trace_export, trace.events, append=True
        )

    def _on_worker_replace(self, reason: str, trace) -> None:
        """Pool callback: a worker was killed and respawned.  Crashes
        (not deadline kills, which already dump on the submit path) get
        a flight bundle *per crash* — even when the retry then succeeds
        and the client never sees an error.  This is what lets the soak
        harness demand evidence for every injected crash."""
        if reason in ("crash", "idle_crash"):
            self._dump_flight("worker_crash", trace)

    def _dump_flight(self, reason: str, trace: Trace | None = None) -> None:
        """Write a crash bundle (bounded per server lifetime)."""
        if self.recorder.dumps >= self.config.max_flight_dumps:
            return
        meta: dict = {"server_uptime_s": round(self.metrics.uptime_s(), 3)}
        if trace is not None:
            meta["trace_id"] = trace.context.trace_id
        try:
            bundle = self.recorder.dump(
                self.config.artifacts_dir,
                reason,
                extra_spans=trace.events if trace is not None else None,
                meta=meta,
            )
        except OSError as error:  # pragma: no cover - disk trouble
            _log.error("failed to write flight bundle: %s", error)
            return
        self.metrics.inc("serve.flight_dumps")
        _log.warning("flight recorder dumped to %s (%s)", bundle, reason)

    async def _send(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, frame: bytes
    ) -> None:
        async with lock:
            if writer.is_closing():
                return
            writer.write(frame)
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.drain()

    # -- chaos hooks -------------------------------------------------------

    @staticmethod
    def _chaos_token(request: Request) -> str:
        """The stable fault-decision identity of this request: the
        client's idempotency key, else the request-content digest —
        never the wire ``id``, which differs run to run."""
        if request.idempotency_key is not None:
            return request.idempotency_key
        from ..chaos.plan import request_token

        return request_token(request.op, request.params)

    def _wire_fault(self, token: str):
        """First protocol fault the plan decides for this response."""
        for site in (
            "protocol.truncate",
            "protocol.hangup",
            "protocol.split",
            "protocol.oversize",
        ):
            fault = self.chaos.decide(site, token)
            if fault is not None:
                self.metrics.inc(f"chaos.injected.{site}")
                return fault
        return None

    async def _send_mangled(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        frame: bytes,
        fault,
    ) -> None:
        """Write the chaos-reshaped response; hang up if the fault says
        so (the client observes a torn/absent response and must retry —
        other requests pipelined on this connection are collateral, as
        they would be with a real connection fault)."""
        from ..chaos.inject import mangle_response

        chunks, hangup = mangle_response(fault.site, frame)
        async with lock:
            if writer.is_closing():
                return
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                for chunk in chunks:
                    writer.write(chunk)
                    await writer.drain()
            if hangup:
                writer.close()

    def _cache_chaos(self, token: str, key: str) -> None:
        """Corrupt or evict the cached entry before the read.  Either
        way the read must degrade to a miss (``ResultCache.get`` rejects
        undecodable payloads) — never serve garbage."""
        from ..chaos.inject import corrupt_cache_entry, evict_cache_entry

        fault = self.chaos.decide("cache.corrupt", token)
        if fault is not None and corrupt_cache_entry(self.cache, key):
            self.metrics.inc("chaos.injected.cache.corrupt")
        fault = self.chaos.decide("cache.evict", token)
        if fault is not None and evict_cache_entry(self.cache, key):
            self.metrics.inc("chaos.injected.cache.evict")

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(
        self,
        request: Request,
        trace: Trace | None,
        chaos_token: str | None = None,
    ) -> dict:
        if request.op == "health":
            return self._health()
        if request.op == "metrics":
            return self._metrics()
        if request.op == "drain":
            asyncio.get_running_loop().create_task(self.drain())
            return {"status": "draining"}
        no_cache = request.params.get("no_cache", False)
        if not isinstance(no_cache, bool):
            raise ProtocolError(
                "invalid_params", "no_cache must be a boolean", request.id
            )
        if trace is not None:
            with trace.span("build_job", op=request.op) as extra:
                job, key, cacheable = self._build_job(request)
                spec = job.get("spec")
                if spec is not None:
                    # lets `repro trace --program` select cell traces
                    extra["program"] = spec.workload
                    extra["variant"] = spec.variant
        else:
            job, key, cacheable = self._build_job(request)
        return await self._submit(
            request,
            job,
            key,
            cacheable,
            trace,
            read_cache=not no_cache,
            chaos_token=chaos_token,
        )

    def _health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(self.metrics.uptime_s(), 3),
            "queue_depth": self.queue.depth,
            "inflight": self.flight.depth,
            "draining": self._draining,
            "trace_sample": self.sampler.rate,
            "workers": self.pool.describe(),
        }

    def _metrics(self) -> dict:
        self.metrics.set_gauge("serve.queue_depth", self.queue.depth)
        self.metrics.set_gauge(
            "serve.queue_depth_normal", self.queue.normal_depth
        )
        self.metrics.set_gauge("serve.queue_depth_high", self.queue.high_depth)
        self.metrics.set_gauge("serve.workers_busy", self.pool.busy_count)
        self.metrics.set_gauge(
            "serve.flight_occupancy", self.recorder.occupancy
        )
        snapshot = self.metrics.snapshot()
        snapshot["uptime_s"] = round(self.metrics.uptime_s(), 3)
        snapshot["queue"] = {
            "depth": self.queue.depth,
            "normal_depth": self.queue.normal_depth,
            "high_depth": self.queue.high_depth,
            "limit": self.config.queue_limit,
        }
        snapshot["flight_recorder"] = {
            "capacity": self.recorder.capacity,
            "occupancy": self.recorder.occupancy,
            "dropped": self.recorder.dropped,
            "dumps": self.recorder.dumps,
        }
        snapshot["trace"] = {
            "sample_rate": self.sampler.rate,
            "spans_exported": self._spans_exported,
        }
        snapshot["host"] = host_metadata()
        if self.cache is not None:
            snapshot["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            }
        if self.chaos is not None:
            snapshot["chaos"] = self.chaos.describe()
        return snapshot

    # -- request -> job translation ---------------------------------------

    def _build_job(self, request: Request) -> tuple[dict, str, bool]:
        from ..runner.scheduler import spec_cache_key

        params = request.params
        if request.op in ("run", "suite_cell"):
            if request.op == "run":
                spec = self._run_spec(request)
            else:
                spec = self._suite_cell_spec(request)
            return {"kind": "cell", "spec": spec}, spec_cache_key(spec), True
        if request.op == "compile":
            source = self._required_str(request, params, "source")
            options = self._pipeline_options(request, params)
            defines = self._defines(request, params)
            job = {
                "kind": "compile",
                "source": source,
                "name": params.get("name", "request"),
                "defines": defines,
                "options": options,
            }
            return job, self._aux_key("compile", source, defines, options), False
        if request.op == "explain":
            source = self._required_str(request, params, "source")
            options = self._pipeline_options(request, params)
            defines = self._defines(request, params)
            filters = params.get("filters") or {}
            allowed = {"pass_name", "function", "loop", "tag", "action"}
            if not isinstance(filters, dict) or set(filters) - allowed:
                raise ProtocolError(
                    "invalid_params",
                    f"filters must be an object with keys from {sorted(allowed)}",
                    request.id,
                )
            job = {
                "kind": "explain",
                "source": source,
                "name": params.get("name", "request"),
                "defines": defines,
                "options": options,
                "filters": filters,
            }
            key = self._aux_key("explain", source, defines, options, filters)
            return job, key, False
        raise ProtocolError(
            "unknown_op", f"unhandled op {request.op!r}", request.id
        )  # pragma: no cover - parse_request already rejects

    @staticmethod
    def _aux_key(op: str, source: str, defines, options, extra=None) -> str:
        from ..runner.cache import cell_key

        digest = hashlib.sha256(
            json.dumps(extra or {}, sort_keys=True).encode()
        ).hexdigest()
        return f"{op}:{cell_key(source, defines, options, None)}:{digest}"

    @staticmethod
    def _required_str(request: Request, params: dict, name: str) -> str:
        value = params.get(name)
        if not isinstance(value, str) or not value:
            raise ProtocolError(
                "invalid_params",
                f"params.{name} must be a non-empty string",
                request.id,
            )
        return value

    def _defines(self, request: Request, params: dict) -> dict[str, str]:
        defines = params.get("defines") or {}
        if not isinstance(defines, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in defines.items()
        ):
            raise ProtocolError(
                "invalid_params",
                "params.defines must map strings to strings",
                request.id,
            )
        return defines

    def _pipeline_options(self, request: Request, params: dict) -> PipelineOptions:
        analysis = params.get("analysis", "modref")
        try:
            analysis = Analysis(analysis)
        except ValueError:
            raise ProtocolError(
                "invalid_params",
                f"analysis must be one of {[a.value for a in Analysis]}, "
                f"got {analysis!r}",
                request.id,
            )
        return PipelineOptions(
            analysis=analysis,
            promotion=bool(params.get("promotion", True)),
            pointer_promotion=bool(params.get("pointer_promotion", False)),
        )

    def _machine_options(self, request: Request, params: dict) -> MachineOptions:
        engine = params.get("engine", "threaded")
        if engine not in ("threaded", "simple", "tier2"):
            raise ProtocolError(
                "invalid_params",
                f"engine must be 'threaded', 'simple', or 'tier2', "
                f"got {engine!r}",
                request.id,
            )
        max_steps = params.get("max_steps", self.config.default_max_steps)
        if not isinstance(max_steps, int) or max_steps <= 0:
            raise ProtocolError(
                "invalid_params",
                "max_steps must be a positive integer",
                request.id,
            )
        return MachineOptions(max_steps=max_steps, engine=engine)

    def _run_spec(self, request: Request):
        from ..runner.scheduler import CellSpec

        params = request.params
        source = self._required_str(request, params, "source")
        options = self._pipeline_options(request, params)
        machine = self._machine_options(request, params)
        defines = self._defines(request, params)
        return CellSpec(
            workload=params.get("name", "request"),
            variant=options.variant_name(),
            source=source,
            options=options,
            machine=machine,
            defines=tuple(sorted(defines.items())),
        )

    def _suite_cell_spec(self, request: Request):
        from ..runner.scheduler import CellSpec
        from ..workloads import get_workload, workload_names

        params = request.params
        workload_name = self._required_str(request, params, "workload")
        if workload_name not in workload_names():
            raise ProtocolError(
                "invalid_params",
                f"unknown workload {workload_name!r}; "
                f"available: {workload_names()}",
                request.id,
            )
        variants = paper_variants(
            pointer_promotion=bool(params.get("pointer_promotion", False))
        )
        variant = params.get("variant", "modref/promo")
        if variant not in variants:
            raise ProtocolError(
                "invalid_params",
                f"variant must be one of {sorted(variants)}, got {variant!r}",
                request.id,
            )
        machine = self._machine_options(request, params)
        workload = get_workload(workload_name)
        # identical to build_suite_specs so the cache fingerprint is
        # shared with `repro suite` runs
        return CellSpec(
            workload=workload.name,
            variant=variant,
            source=workload.source,
            options=variants[variant],
            machine=machine,
            defines=tuple(sorted(workload.defines.items())),
        )

    # -- work submission ---------------------------------------------------

    async def _submit(
        self,
        request: Request,
        job: dict,
        key: str,
        cacheable: bool,
        trace: Trace | None = None,
        *,
        read_cache: bool = True,
        chaos_token: str | None = None,
    ) -> dict:
        if self._draining:
            raise ProtocolError("draining", "server is draining", request.id)
        if cacheable and read_cache and self.cache is not None:
            if chaos_token is not None:
                self._cache_chaos(chaos_token, key)
            if trace is None:
                payload = self.cache.get(key)
                if payload is not None:
                    self.metrics.inc("serve.cache_hits")
                    return self._cell_result(
                        job, dict(payload), from_cache=True, coalesced=False
                    )
            else:
                # on a hit the whole sub-millisecond request is this span
                # plus build_job; formatting inside it keeps the trace's
                # coverage honest instead of leaving a tail gap
                with trace.span("cache_lookup") as extra:
                    payload = self.cache.get(key)
                    extra["hit"] = payload is not None
                    if payload is not None:
                        self.metrics.inc("serve.cache_hits")
                        result = self._cell_result(
                            job, dict(payload),
                            from_cache=True, coalesced=False,
                        )
                if payload is not None:
                    return result
        # a client-supplied idempotency key names the *logical* request:
        # a retry coalesces onto the original computation even when the
        # original is still in flight.  Content-addressed keys keep the
        # cache untouched — only the single-flight identity changes.
        flight_key = (
            f"idem:{request.idempotency_key}"
            if request.idempotency_key is not None
            else key
        )
        future, leader = self.flight.claim(flight_key)
        if not leader:
            self.metrics.inc("serve.coalesced")
            if trace is None:
                ok, payload = await asyncio.shield(future)
            else:
                # a follower's whole wait is the leader's computation; the
                # leader's worker spans belong to the leader's trace only
                with trace.span("coalesce_wait"):
                    ok, payload = await asyncio.shield(future)
            if not ok:
                raise ProtocolError(
                    self._error_code(payload), payload["message"], request.id
                )
            return self._format_result(job, payload, coalesced=True)

        ok = False
        payload: dict = {"code": "internal", "message": "leader aborted"}
        try:
            deadline_s = min(
                request.deadline_s or self.config.default_deadline_s,
                self.config.default_deadline_s,
            )
            ticket = Ticket(
                job=job,
                future=asyncio.get_running_loop().create_future(),
                deadline=time.monotonic() + deadline_s,
                priority=request.priority,
                trace=trace,
                chaos_token=chaos_token,
            )
            if chaos_token is not None:
                stall = self.chaos.decide("server.admission_stall", chaos_token)
                if stall is not None:
                    self.metrics.inc("chaos.injected.server.admission_stall")
                    await asyncio.sleep(stall.delay_s)
            try:
                self.queue.put(ticket)
            except QueueFull as error:
                self.metrics.inc("serve.rejected_queue_full")
                payload = {"code": "queue_full", "message": str(error)}
                raise ProtocolError("queue_full", str(error), request.id)
            except Draining as error:
                payload = {"code": "draining", "message": str(error)}
                raise ProtocolError("draining", str(error), request.id)
            self.metrics.set_gauge("serve.queue_depth", self.queue.depth)
            ok, payload = await ticket.future
            if trace is not None and isinstance(payload, dict):
                # pop before flight.resolve shares the payload: followers
                # must not adopt this leader's worker-side spans
                worker_spans = payload.pop("trace_spans", None)
                if ok and worker_spans:
                    trace.adopt(worker_spans)
            if ok:
                self.metrics.inc("serve.executed")
                if cacheable and self.cache is not None:
                    if trace is None:
                        self.cache.put(key, dict(payload["cell"]))
                    else:
                        # the write-back is a real disk write — several
                        # ms for a cell payload — so it gets its own
                        # span rather than vanishing into the framing gap
                        with trace.span("cache_write"):
                            self.cache.put(key, dict(payload["cell"]))
        finally:
            self.flight.resolve(flight_key, ok, payload)
        if not ok:
            code = self._error_code(payload)
            if code in ("worker_crashed", "deadline_exceeded"):
                # the worker died without a word — preserve the evidence
                self._dump_flight(code, trace)
            raise ProtocolError(code, payload["message"], request.id)
        return self._format_result(job, payload, coalesced=False)

    @staticmethod
    def _error_code(payload: dict) -> str:
        code = payload.get("code", "internal")
        return code if code in ERROR_CODES else "internal"

    def _format_result(self, job: dict, payload: dict, coalesced: bool) -> dict:
        if job["kind"] == "cell":
            return self._cell_result(
                job, dict(payload["cell"]), from_cache=False, coalesced=coalesced
            )
        result = dict(payload)
        result["coalesced"] = coalesced
        return result

    @staticmethod
    def _cell_result(
        job: dict, cell: dict, from_cache: bool, coalesced: bool
    ) -> dict:
        spec = job["spec"]
        cell.pop("schema", None)
        cell.update(
            workload=spec.workload,
            variant=spec.variant,
            from_cache=from_cache,
            coalesced=coalesced,
        )
        return cell

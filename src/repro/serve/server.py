"""The ``repro serve`` asyncio TCP server.

Request path for the work ops (``compile`` / ``run`` / ``suite_cell`` /
``explain``)::

    parse -> result cache -> single-flight coalesce -> admission queue
          -> worker pool -> (cache write-back) -> response

* **cache** — cell-shaped ops (``run``, ``suite_cell``) are keyed with
  the scheduler's content-addressed fingerprint, so completed results
  are served straight from ``.repro-cache/`` and a warm serving cache is
  interchangeable with a warm ``repro suite`` cache;
* **coalesce** — identical in-flight requests collapse onto one
  computation (see :mod:`repro.serve.coalesce`);
* **admission** — bounded queue with priority lanes and per-request
  deadlines (see :mod:`repro.serve.queue`); overload is an explicit
  ``queue_full`` error, a deadline firing mid-cell kills the worker;
* **control ops** — ``health`` / ``metrics`` / ``drain`` are answered
  inline on the event loop and never queue, so they stay responsive
  under full load.

Connections may pipeline: each request is dispatched as its own task and
responses are written (serialized per connection) as they complete, so
one connection with N in-flight requests behaves like N logical clients
— that is what makes single-connection coalescing and the load
generator's concurrency model work.

Draining (``drain`` op or SIGTERM in the CLI) closes the listener and
stops admitting new work (``draining`` errors); everything already
admitted — in-flight *and* queued — still completes and is answered,
pending responses are flushed, then connections close.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import time
from dataclasses import dataclass

from ..diag.host import host_metadata
from ..diag.log import get_logger
from ..interp import MachineOptions
from ..pipeline import Analysis, PipelineOptions, paper_variants
from .coalesce import SingleFlight
from .metrics import ServeMetrics
from .pool import DEFAULT_RECYCLE_AFTER, WorkerPool
from .protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    encode_error,
    encode_result,
    parse_request,
)
from .queue import AdmissionQueue, Draining, QueueFull, Ticket

_log = get_logger(__name__)

__all__ = ["ReproServer", "ServerConfig"]


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 7411
    workers: int = 2
    queue_limit: int = 64
    #: cap applied when a request carries no ``deadline_s``
    default_deadline_s: float = 120.0
    recycle_after: int = DEFAULT_RECYCLE_AFTER
    #: result-cache directory; ``None`` disables the cache entirely
    cache_dir: str | None = ".repro-cache"
    default_max_steps: int = 50_000_000
    max_line_bytes: int = MAX_LINE_BYTES


class ReproServer:
    """One serving instance; create, ``await start()``, ``await drain()``."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.metrics = ServeMetrics()
        self.queue = AdmissionQueue(limit=self.config.queue_limit)
        self.pool = WorkerPool(
            self.queue,
            size=self.config.workers,
            recycle_after=self.config.recycle_after,
            metrics=self.metrics,
        )
        self.flight = SingleFlight()
        if self.config.cache_dir is not None:
            from ..runner.cache import ResultCache

            self.cache = ResultCache(self.config.cache_dir)
        else:
            self.cache = None
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._drained = asyncio.Event()
        self._writers: set[asyncio.StreamWriter] = set()
        self._request_tasks: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_line_bytes,
        )
        _log.info(
            "repro-serve listening on %s:%d (%d workers, queue limit %d)",
            self.config.host, self.port, self.config.workers,
            self.config.queue_limit,
        )

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight, flush, close, return."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self.metrics.set_gauge("serve.draining", 1)
        _log.info("drain: no longer accepting work")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pool.drain()
        # every ticket is settled; let the response writers run dry
        pending = [task for task in self._request_tasks if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._drained.set()
        _log.info("drain complete")

    async def stop(self) -> None:
        """Hard stop for tests/teardown; pending work fails ``draining``."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pool.stop()
        self.flight.abandon_all("draining", "server shut down")
        for task in list(self._request_tasks):
            task.cancel()
        if self._request_tasks:
            await asyncio.gather(*self._request_tasks, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._drained.set()

    # -- connection handling ----------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.metrics.observe_error("payload_too_large")
                    await self._send(
                        writer,
                        write_lock,
                        encode_error(
                            None,
                            "payload_too_large",
                            f"frame exceeds {self.config.max_line_bytes} "
                            "bytes; closing connection",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._serve_request(line, writer, write_lock)
                )
                tasks.add(task)
                self._request_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._request_tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_request(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        started = time.monotonic()
        op = "invalid"
        ok = False
        try:
            request = parse_request(line)
            op = request.op
            result = await self._dispatch(request)
            ok = True
            frame = encode_result(request.id, result)
        except ProtocolError as error:
            self.metrics.observe_error(error.code)
            frame = encode_error(error.request_id, error.code, error.message)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # pragma: no cover - defensive
            _log.exception("internal error serving request")
            self.metrics.observe_error("internal")
            frame = encode_error(None, "internal", f"{type(error).__name__}: {error}")
        self.metrics.observe_request(op, time.monotonic() - started, ok)
        await self._send(writer, write_lock, frame)

    async def _send(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, frame: bytes
    ) -> None:
        async with lock:
            if writer.is_closing():
                return
            writer.write(frame)
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.drain()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, request: Request) -> dict:
        if request.op == "health":
            return self._health()
        if request.op == "metrics":
            return self._metrics()
        if request.op == "drain":
            asyncio.get_running_loop().create_task(self.drain())
            return {"status": "draining"}
        job, key, cacheable = self._build_job(request)
        return await self._submit(request, job, key, cacheable)

    def _health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(self.metrics.uptime_s(), 3),
            "queue_depth": self.queue.depth,
            "inflight": self.flight.depth,
            "draining": self._draining,
            "workers": self.pool.describe(),
        }

    def _metrics(self) -> dict:
        self.metrics.set_gauge("serve.queue_depth", self.queue.depth)
        self.metrics.set_gauge("serve.workers_busy", self.pool.busy_count)
        snapshot = self.metrics.snapshot()
        snapshot["host"] = host_metadata()
        if self.cache is not None:
            snapshot["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            }
        return snapshot

    # -- request -> job translation ---------------------------------------

    def _build_job(self, request: Request) -> tuple[dict, str, bool]:
        from ..runner.scheduler import spec_cache_key

        params = request.params
        if request.op in ("run", "suite_cell"):
            if request.op == "run":
                spec = self._run_spec(request)
            else:
                spec = self._suite_cell_spec(request)
            return {"kind": "cell", "spec": spec}, spec_cache_key(spec), True
        if request.op == "compile":
            source = self._required_str(request, params, "source")
            options = self._pipeline_options(request, params)
            defines = self._defines(request, params)
            job = {
                "kind": "compile",
                "source": source,
                "name": params.get("name", "request"),
                "defines": defines,
                "options": options,
            }
            return job, self._aux_key("compile", source, defines, options), False
        if request.op == "explain":
            source = self._required_str(request, params, "source")
            options = self._pipeline_options(request, params)
            defines = self._defines(request, params)
            filters = params.get("filters") or {}
            allowed = {"pass_name", "function", "loop", "tag", "action"}
            if not isinstance(filters, dict) or set(filters) - allowed:
                raise ProtocolError(
                    "invalid_params",
                    f"filters must be an object with keys from {sorted(allowed)}",
                    request.id,
                )
            job = {
                "kind": "explain",
                "source": source,
                "name": params.get("name", "request"),
                "defines": defines,
                "options": options,
                "filters": filters,
            }
            key = self._aux_key("explain", source, defines, options, filters)
            return job, key, False
        raise ProtocolError(
            "unknown_op", f"unhandled op {request.op!r}", request.id
        )  # pragma: no cover - parse_request already rejects

    @staticmethod
    def _aux_key(op: str, source: str, defines, options, extra=None) -> str:
        from ..runner.cache import cell_key

        digest = hashlib.sha256(
            json.dumps(extra or {}, sort_keys=True).encode()
        ).hexdigest()
        return f"{op}:{cell_key(source, defines, options, None)}:{digest}"

    @staticmethod
    def _required_str(request: Request, params: dict, name: str) -> str:
        value = params.get(name)
        if not isinstance(value, str) or not value:
            raise ProtocolError(
                "invalid_params",
                f"params.{name} must be a non-empty string",
                request.id,
            )
        return value

    def _defines(self, request: Request, params: dict) -> dict[str, str]:
        defines = params.get("defines") or {}
        if not isinstance(defines, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in defines.items()
        ):
            raise ProtocolError(
                "invalid_params",
                "params.defines must map strings to strings",
                request.id,
            )
        return defines

    def _pipeline_options(self, request: Request, params: dict) -> PipelineOptions:
        analysis = params.get("analysis", "modref")
        try:
            analysis = Analysis(analysis)
        except ValueError:
            raise ProtocolError(
                "invalid_params",
                f"analysis must be one of {[a.value for a in Analysis]}, "
                f"got {analysis!r}",
                request.id,
            )
        return PipelineOptions(
            analysis=analysis,
            promotion=bool(params.get("promotion", True)),
            pointer_promotion=bool(params.get("pointer_promotion", False)),
        )

    def _machine_options(self, request: Request, params: dict) -> MachineOptions:
        engine = params.get("engine", "threaded")
        if engine not in ("threaded", "simple"):
            raise ProtocolError(
                "invalid_params",
                f"engine must be 'threaded' or 'simple', got {engine!r}",
                request.id,
            )
        max_steps = params.get("max_steps", self.config.default_max_steps)
        if not isinstance(max_steps, int) or max_steps <= 0:
            raise ProtocolError(
                "invalid_params",
                "max_steps must be a positive integer",
                request.id,
            )
        return MachineOptions(max_steps=max_steps, engine=engine)

    def _run_spec(self, request: Request):
        from ..runner.scheduler import CellSpec

        params = request.params
        source = self._required_str(request, params, "source")
        options = self._pipeline_options(request, params)
        machine = self._machine_options(request, params)
        defines = self._defines(request, params)
        return CellSpec(
            workload=params.get("name", "request"),
            variant=options.variant_name(),
            source=source,
            options=options,
            machine=machine,
            defines=tuple(sorted(defines.items())),
        )

    def _suite_cell_spec(self, request: Request):
        from ..runner.scheduler import CellSpec
        from ..workloads import get_workload, workload_names

        params = request.params
        workload_name = self._required_str(request, params, "workload")
        if workload_name not in workload_names():
            raise ProtocolError(
                "invalid_params",
                f"unknown workload {workload_name!r}; "
                f"available: {workload_names()}",
                request.id,
            )
        variants = paper_variants(
            pointer_promotion=bool(params.get("pointer_promotion", False))
        )
        variant = params.get("variant", "modref/promo")
        if variant not in variants:
            raise ProtocolError(
                "invalid_params",
                f"variant must be one of {sorted(variants)}, got {variant!r}",
                request.id,
            )
        machine = self._machine_options(request, params)
        workload = get_workload(workload_name)
        # identical to build_suite_specs so the cache fingerprint is
        # shared with `repro suite` runs
        return CellSpec(
            workload=workload.name,
            variant=variant,
            source=workload.source,
            options=variants[variant],
            machine=machine,
            defines=tuple(sorted(workload.defines.items())),
        )

    # -- work submission ---------------------------------------------------

    async def _submit(
        self, request: Request, job: dict, key: str, cacheable: bool
    ) -> dict:
        if self._draining:
            raise ProtocolError("draining", "server is draining", request.id)
        if cacheable and self.cache is not None:
            payload = self.cache.get(key)
            if payload is not None:
                self.metrics.inc("serve.cache_hits")
                return self._cell_result(
                    job, dict(payload), from_cache=True, coalesced=False
                )
        future, leader = self.flight.claim(key)
        if not leader:
            self.metrics.inc("serve.coalesced")
            ok, payload = await asyncio.shield(future)
            if not ok:
                raise ProtocolError(
                    self._error_code(payload), payload["message"], request.id
                )
            return self._format_result(job, payload, coalesced=True)

        ok = False
        payload: dict = {"code": "internal", "message": "leader aborted"}
        try:
            deadline_s = min(
                request.deadline_s or self.config.default_deadline_s,
                self.config.default_deadline_s,
            )
            ticket = Ticket(
                job=job,
                future=asyncio.get_running_loop().create_future(),
                deadline=time.monotonic() + deadline_s,
                priority=request.priority,
            )
            try:
                self.queue.put(ticket)
            except QueueFull as error:
                self.metrics.inc("serve.rejected_queue_full")
                payload = {"code": "queue_full", "message": str(error)}
                raise ProtocolError("queue_full", str(error), request.id)
            except Draining as error:
                payload = {"code": "draining", "message": str(error)}
                raise ProtocolError("draining", str(error), request.id)
            self.metrics.set_gauge("serve.queue_depth", self.queue.depth)
            ok, payload = await ticket.future
            if ok:
                self.metrics.inc("serve.executed")
                if cacheable and self.cache is not None:
                    self.cache.put(key, dict(payload["cell"]))
        finally:
            self.flight.resolve(key, ok, payload)
        if not ok:
            raise ProtocolError(
                self._error_code(payload), payload["message"], request.id
            )
        return self._format_result(job, payload, coalesced=False)

    @staticmethod
    def _error_code(payload: dict) -> str:
        code = payload.get("code", "internal")
        return code if code in ERROR_CODES else "internal"

    def _format_result(self, job: dict, payload: dict, coalesced: bool) -> dict:
        if job["kind"] == "cell":
            return self._cell_result(
                job, dict(payload["cell"]), from_cache=False, coalesced=coalesced
            )
        result = dict(payload)
        result["coalesced"] = coalesced
        return result

    @staticmethod
    def _cell_result(
        job: dict, cell: dict, from_cache: bool, coalesced: bool
    ) -> dict:
        spec = job["spec"]
        cell.pop("schema", None)
        cell.update(
            workload=spec.workload,
            variant=spec.variant,
            from_cache=from_cache,
            coalesced=coalesced,
        )
        return cell

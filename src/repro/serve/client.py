"""Client side of ``repro serve``: a pipelining client and the load
generator behind ``repro loadgen``.

:class:`ServeClient` speaks the NDJSON protocol over one connection,
matching out-of-order responses to requests by ``id`` so any number of
requests can be in flight at once.

:func:`run_loadgen` drives a campaign: an optional warm-up pass primes
the server's result cache with every distinct request in the mix, then
``concurrency`` workers (one connection each) hammer the mix for
``duration_s`` seconds (or exactly ``requests`` requests), recording
client-observed latency and every error code.  ``cold_fraction`` carves
out a deterministic slice of requests sent with ``no_cache: true`` —
they bypass the server's cache read and exercise the full
compile-and-execute path, so the latency breakdown attributes miss-path
time even when the rest of the campaign is warm cache hits.  The result — throughput,
p50/p95/p99, error breakdown, cache/coalesce hit counts, the server's
own metrics snapshot, and host metadata — is written to
``BENCH_serve.json`` so serving performance has an in-repo trajectory
just like ``BENCH_interp.json``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..bench import QUICK_PROGRAMS
from ..diag.host import host_metadata
from ..diag.log import get_logger
from .protocol import encode_frame
from .resilience import (
    CircuitBreaker,
    CircuitOpen,
    LatencyTracker,
    ResilienceStats,
    RetryPolicy,
)

_log = get_logger(__name__)

__all__ = [
    "LoadgenConfig",
    "ResilientClient",
    "ServeClient",
    "ServeError",
    "format_loadgen",
    "run_loadgen",
    "wait_for_server",
    "write_loadgen_json",
]

LOADGEN_SCHEMA = 2  # v2: totals/resilience record retry+hedge behaviour

#: error codes that indicate deliberate load shedding rather than a
#: broken request or server — loadgen reports them separately
SHED_CODES = frozenset({"queue_full", "deadline_exceeded", "draining"})

PAPER_VARIANTS = (
    "modref/nopromo", "modref/promo", "pointer/nopromo", "pointer/promo",
)


class ServeError(Exception):
    """An error response from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServeClient:
    """One connection; safe for any number of concurrent ``request``s."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        #: frames the server sent without a matchable id (e.g. the
        #: payload_too_large notice before closing the connection)
        self.unmatched: list[dict] = []
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 7411
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self,
        op: str,
        params: dict | None = None,
        *,
        deadline_s: float | None = None,
        priority: str | None = None,
        trace: bool = False,
        idempotency_key: str | None = None,
    ) -> dict:
        """Send one request, await its response frame (the full dict).

        ``trace=True`` asks the server for a sampled trace: the result
        carries ``trace.trace_id`` and ``trace.spans`` (see
        :mod:`repro.trace`).  ``idempotency_key`` names the logical
        request so a retry single-flights onto the original computation
        server-side instead of queueing duplicate work.
        """
        request_id = next(self._ids)
        frame: dict = {"id": request_id, "op": op}
        if params:
            frame["params"] = params
        if deadline_s is not None:
            frame["deadline_s"] = deadline_s
        if priority is not None:
            frame["priority"] = priority
        if trace:
            frame["trace"] = True
        if idempotency_key is not None:
            frame["idempotency_key"] = idempotency_key
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        async with self._write_lock:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
        return await future

    async def call(
        self,
        op: str,
        params: dict | None = None,
        *,
        deadline_s: float | None = None,
        priority: str | None = None,
        trace: bool = False,
        idempotency_key: str | None = None,
    ) -> dict:
        """Like :meth:`request` but unwraps: result dict or ServeError."""
        response = await self.request(
            op,
            params,
            deadline_s=deadline_s,
            priority=priority,
            trace=trace,
            idempotency_key=idempotency_key,
        )
        if not response.get("ok"):
            error = response.get("error", {})
            raise ServeError(
                error.get("code", "internal"), error.get("message", "")
            )
        return response["result"]

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    frame = json.loads(line)
                except ValueError:
                    continue
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
                else:
                    self.unmatched.append(frame)
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection")
                    )
            self._pending.clear()


def _consume_result(task: asyncio.Task) -> None:
    """Swallow results/exceptions of abandoned hedge tasks."""
    if not task.cancelled():
        task.exception()


class ResilientClient:
    """A self-healing wrapper around :class:`ServeClient`.

    What it adds on top of the raw client, in order of engagement:

    * **retries** — errors in the closed retryable vocabulary
      (:data:`~repro.serve.resilience.RETRYABLE_CODES`) and transport
      failures are retried with jittered exponential backoff, up to the
      policy's attempt budget; the connection is re-established after a
      transport failure;
    * **idempotency keys** — every logical request carries one (caller
      supplied, else auto-generated), so a retry single-flights onto the
      original computation server-side instead of duplicating work;
    * **circuit breaker** — consecutive failures trip it; while open,
      :meth:`request` sheds immediately with :class:`CircuitOpen`
      (a *client-side* explicit shed) instead of piling onto a sick
      server; a half-open probe re-closes it;
    * **hedging** (opt-in) — once the latency tracker has samples, a
      request that outlives the observed p95 fires one backup carrying
      the same idempotency key; first response wins, the loser is
      cancelled.  Coalescing makes the backup nearly free when the
      primary is merely slow rather than lost.

    ``clock``, ``sleep`` and ``connect`` are injectable so the whole
    state machine runs under a fake clock in tests — zero real sleeps.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7411,
        *,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        hedge: bool = False,
        hedge_min_delay_s: float = 0.01,
        latency: LatencyTracker | None = None,
        clock=time.perf_counter,
        sleep=None,
        connect=None,
        key_prefix: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.hedge = hedge
        self.hedge_min_delay_s = hedge_min_delay_s
        self.latency = latency or LatencyTracker()
        self.stats = ResilienceStats()
        self._clock = clock
        self._sleep = sleep or asyncio.sleep
        self._connect = connect or ServeClient.connect
        self._client = None
        if key_prefix is None:
            import os

            key_prefix = os.urandom(4).hex()
        self._key_prefix = key_prefix
        self._key_counter = itertools.count(1)
        self._connected_once = False

    async def _ensure_client(self):
        if self._client is None:
            self._client = await self._connect(self.host, self.port)
            if self._connected_once:
                self.stats.reconnects += 1
            self._connected_once = True
        return self._client

    async def _drop_client(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            try:
                await client.close()
            except Exception:
                pass

    async def close(self) -> None:
        await self._drop_client()

    async def request(
        self,
        op: str,
        params: dict | None = None,
        *,
        deadline_s: float | None = None,
        priority: str | None = None,
        trace: bool = False,
        idempotency_key: str | None = None,
    ) -> dict:
        """One *logical* request: retried, hedged, breaker-gated.

        Returns the winning response frame.  Raises :class:`CircuitOpen`
        when the breaker sheds the request client-side, or the final
        transport error when every attempt lost its connection.
        """
        key = (
            idempotency_key
            or f"{self._key_prefix}-{next(self._key_counter)}"
        )
        for attempt in range(1, self.retry.max_attempts + 1):
            if not self.breaker.allow():
                self.stats.breaker_open += 1
                raise CircuitOpen(
                    f"circuit breaker open for {self.host}:{self.port}"
                )
            self.stats.attempts += 1
            started = self._clock()
            try:
                response = await self._send_once(
                    op, params, deadline_s, priority, trace, key
                )
            except (ConnectionError, OSError):
                self.breaker.record_failure()
                await self._drop_client()
                if attempt >= self.retry.max_attempts:
                    raise
                self.stats.record_retry("connection_lost")
                await self._sleep(self.retry.delay_s(attempt))
                continue
            if response.get("ok"):
                self.breaker.record_success()
                self.latency.record(self._clock() - started)
                return response
            code = response.get("error", {}).get("code", "internal")
            if self.retry.retryable(code):
                self.breaker.record_failure()
                if attempt >= self.retry.max_attempts:
                    return response
                self.stats.record_retry(code)
                await self._sleep(self.retry.delay_s(attempt))
                continue
            # a definitive answer (bad request, cell failure, draining):
            # the host is healthy, retrying would only repeat it
            self.breaker.record_success()
            return response
        raise AssertionError("unreachable")  # pragma: no cover

    async def call(
        self,
        op: str,
        params: dict | None = None,
        *,
        deadline_s: float | None = None,
        priority: str | None = None,
        trace: bool = False,
        idempotency_key: str | None = None,
    ) -> dict:
        """Like :meth:`request` but unwraps: result dict or ServeError."""
        response = await self.request(
            op,
            params,
            deadline_s=deadline_s,
            priority=priority,
            trace=trace,
            idempotency_key=idempotency_key,
        )
        if not response.get("ok"):
            error = response.get("error", {})
            raise ServeError(
                error.get("code", "internal"), error.get("message", "")
            )
        return response["result"]

    async def _send_once(
        self, op, params, deadline_s, priority, trace, key
    ) -> dict:
        """One attempt, hedged when enabled and a p95 exists."""
        client = await self._ensure_client()

        def send() -> asyncio.Task:
            return asyncio.ensure_future(
                client.request(
                    op,
                    params,
                    deadline_s=deadline_s,
                    priority=priority,
                    trace=trace,
                    idempotency_key=key,
                )
            )

        if not self.hedge:
            return await send()
        p95 = self.latency.p95()
        if p95 is None:
            return await send()
        primary = send()
        # never wait_for: the delay must run through the injected sleep
        # so fake-clock tests control it
        timer = asyncio.ensure_future(
            self._sleep(max(p95, self.hedge_min_delay_s))
        )
        done, _ = await asyncio.wait(
            {primary, timer}, return_when=asyncio.FIRST_COMPLETED
        )
        if primary in done:
            timer.cancel()
            return primary.result()
        self.stats.hedged += 1
        # same idempotency key: the backup coalesces onto the primary's
        # computation server-side instead of doubling the work
        backup = send()
        done, pending = await asyncio.wait(
            {primary, backup}, return_when=asyncio.FIRST_COMPLETED
        )
        if backup in done and primary not in done:
            self.stats.hedge_wins += 1
        winner = backup if backup in done else primary
        for task in pending:
            task.cancel()
            task.add_done_callback(_consume_result)
        return winner.result()


async def wait_for_server(
    host: str, port: int, timeout_s: float = 30.0
) -> dict:
    """Poll until the server answers ``health``; returns the health dict."""
    deadline = time.monotonic() + timeout_s
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            client = await ServeClient.connect(host, port)
            try:
                return await client.call("health")
            finally:
                await client.close()
        except (ConnectionError, OSError, ServeError) as error:
            last_error = error
            await asyncio.sleep(0.1)
    raise TimeoutError(
        f"server at {host}:{port} not healthy after {timeout_s:.0f}s: "
        f"{last_error}"
    )


# --------------------------------------------------------------------------
# load generation


@dataclass
class LoadgenConfig:
    host: str = "127.0.0.1"
    port: int = 7411
    concurrency: int = 8
    duration_s: float = 10.0
    #: exact request count; overrides ``duration_s`` when set
    requests: int | None = None
    op: str = "suite_cell"
    programs: tuple[str, ...] = QUICK_PROGRAMS
    variants: tuple[str, ...] = PAPER_VARIANTS
    max_steps: int = 50_000_000
    deadline_s: float | None = 30.0
    #: prime the cache with one pass over the distinct mix first
    warmup: bool = True
    #: send ``drain`` once the campaign finishes (CI teardown)
    drain_on_finish: bool = False
    #: fraction of campaign requests sent with ``trace: true``; their
    #: returned spans feed the per-request latency breakdown
    trace_sample: float = 0.0
    #: fraction of campaign requests sent with ``no_cache: true`` — a
    #: cold slice that bypasses the server's result-cache read and does
    #: real compile+execute work even on a warm cache.  Cold requests
    #: are always traced (when ``trace_sample`` > 0) so the breakdown's
    #: compile/execute buckets reflect miss-path latency instead of
    #: reading all-zero on an all-hits campaign.
    cold_fraction: float = 0.0
    #: interpreter engine the mix cells run under (simple/threaded/tier2)
    engine: str = "threaded"
    #: drive the campaign through :class:`ResilientClient` — retries,
    #: idempotency keys, circuit breaker; the payload's ``resilience``
    #: section records what the client layer absorbed
    resilient: bool = False
    #: with ``resilient``, also hedge requests past the observed p95
    hedge: bool = False
    out: str | None = "BENCH_serve.json"


@dataclass
class _Tally:
    latencies: list[float] = field(default_factory=list)
    ok: int = 0
    errors: int = 0
    shed: int = 0
    from_cache: int = 0
    coalesced: int = 0
    cold: int = 0
    by_code: dict[str, int] = field(default_factory=dict)
    #: one attribution dict per sampled request (see repro.trace)
    breakdowns: list[dict] = field(default_factory=list)
    #: per-worker ResilienceStats dicts (resilient campaigns only)
    resilience: list[dict] = field(default_factory=list)


def _mix(config: LoadgenConfig) -> list[dict]:
    return [
        {
            "workload": program,
            "variant": variant,
            "max_steps": config.max_steps,
            "engine": config.engine,
        }
        for program in config.programs
        for variant in config.variants
    ]


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _request_breakdown(span_dicts: list[dict]) -> dict:
    """Attribution buckets for one sampled request's returned spans."""
    from ..trace import SpanEvent, attribution

    return attribution([SpanEvent.from_dict(d) for d in span_dicts])


_BREAKDOWN_BUCKETS = ("queue", "cache", "coalesce", "compile", "execute", "other")


def _breakdown_summary(breakdowns: list[dict]) -> dict:
    """Percentiles over per-request attribution: where sampled requests
    spent their time (milliseconds), plus trace-coverage health."""
    summary: dict = {"sampled": len(breakdowns)}
    if not breakdowns:
        return summary
    for bucket in _BREAKDOWN_BUCKETS:
        ordered = sorted(b.get(bucket, 0.0) * 1000 for b in breakdowns)
        summary[f"{bucket}_ms"] = {
            "p50": round(_percentile(ordered, 0.50), 3),
            "p95": round(_percentile(ordered, 0.95), 3),
            "p99": round(_percentile(ordered, 0.99), 3),
            "mean": round(sum(ordered) / len(ordered), 3),
        }
    coverages = [b.get("coverage", 0.0) for b in breakdowns]
    summary["coverage"] = {
        "min": round(min(coverages), 4),
        "mean": round(sum(coverages) / len(coverages), 4),
    }
    return summary


async def _campaign_worker(
    config: LoadgenConfig,
    mix: list[dict],
    counter: itertools.count,
    stop_at: float,
    tally: _Tally,
) -> None:
    if config.resilient:
        client = ResilientClient(
            config.host, config.port, hedge=config.hedge
        )
    else:
        client = await ServeClient.connect(config.host, config.port)
    try:
        while True:
            index = next(counter)
            if config.requests is not None:
                if index >= config.requests:
                    break
            elif time.perf_counter() >= stop_at:
                break
            params = mix[index % len(mix)]
            # deterministic slicing over the request index, so a campaign
            # spreads its trace sample and cold slice evenly regardless
            # of worker interleaving
            want_cold = (
                config.cold_fraction > 0
                and (index * config.cold_fraction) % 1.0
                < config.cold_fraction
            )
            if want_cold:
                params = dict(params, no_cache=True)
            want_trace = config.trace_sample > 0 and (
                want_cold
                or (index * config.trace_sample) % 1.0 < config.trace_sample
            )
            started = time.perf_counter()
            try:
                response = await client.request(
                    config.op,
                    params,
                    deadline_s=config.deadline_s,
                    trace=want_trace,
                    idempotency_key=(
                        f"lg-{index}" if config.resilient else None
                    ),
                )
            except CircuitOpen:
                # client-side shed: counted like the server's explicit
                # back-pressure answers, not as an unexplained error
                tally.shed += 1
                tally.by_code["circuit_open"] = (
                    tally.by_code.get("circuit_open", 0) + 1
                )
                continue
            except ConnectionError:
                tally.errors += 1
                tally.by_code["connection_lost"] = (
                    tally.by_code.get("connection_lost", 0) + 1
                )
                if config.resilient:
                    # retries are exhausted; move on rather than give up
                    continue
                break
            tally.latencies.append(time.perf_counter() - started)
            if want_cold:
                tally.cold += 1
            if response.get("ok"):
                tally.ok += 1
                result = response["result"]
                if result.get("from_cache"):
                    tally.from_cache += 1
                if result.get("coalesced"):
                    tally.coalesced += 1
                spans = result.get("trace", {}).get("spans")
                if spans:
                    tally.breakdowns.append(_request_breakdown(spans))
            else:
                code = response.get("error", {}).get("code", "internal")
                tally.by_code[code] = tally.by_code.get(code, 0) + 1
                if code in SHED_CODES:
                    tally.shed += 1
                else:
                    tally.errors += 1
    finally:
        if config.resilient:
            tally.resilience.append(client.stats.as_dict())
        await client.close()


async def run_loadgen(config: LoadgenConfig) -> dict:
    """Run one campaign; returns (and optionally writes) the payload."""
    mix = _mix(config)
    warmup_s = 0.0
    if config.warmup:
        started = time.perf_counter()
        client = await ServeClient.connect(config.host, config.port)
        try:
            responses = await asyncio.gather(
                *(
                    client.request(config.op, params, deadline_s=None)
                    for params in mix
                )
            )
        finally:
            await client.close()
        warmup_s = time.perf_counter() - started
        failed = [r for r in responses if not r.get("ok")]
        if failed:
            raise ServeError(
                failed[0]["error"].get("code", "internal"),
                f"warm-up failed for {len(failed)}/{len(mix)} mix cells: "
                + failed[0]["error"].get("message", ""),
            )

    tally = _Tally()
    counter = itertools.count()
    started = time.perf_counter()
    stop_at = started + config.duration_s
    await asyncio.gather(
        *(
            _campaign_worker(config, mix, counter, stop_at, tally)
            for _ in range(max(1, config.concurrency))
        )
    )
    measured_s = max(time.perf_counter() - started, 1e-9)

    server_metrics: dict = {}
    server_health: dict = {}
    try:
        client = await ServeClient.connect(config.host, config.port)
        try:
            server_metrics = await client.call("metrics")
            server_health = await client.call("health")
            if config.drain_on_finish:
                await client.call("drain")
        finally:
            await client.close()
    except (ConnectionError, OSError, ServeError) as error:
        _log.warning("post-campaign server snapshot failed: %s", error)

    ordered = sorted(tally.latencies)
    total = tally.ok + tally.errors + tally.shed
    resilience = _aggregate_resilience(tally.resilience)
    payload = {
        "schema": LOADGEN_SCHEMA,
        "host": host_metadata(),
        "config": {
            "op": config.op,
            "concurrency": config.concurrency,
            "duration_s": config.duration_s,
            "requests": config.requests,
            "programs": list(config.programs),
            "variants": list(config.variants),
            "max_steps": config.max_steps,
            "deadline_s": config.deadline_s,
            "warmup": config.warmup,
            "trace_sample": config.trace_sample,
            "cold_fraction": config.cold_fraction,
            "engine": config.engine,
            "resilient": config.resilient,
            "hedge": config.hedge,
        },
        "warmup": {"distinct_cells": len(mix), "seconds": round(warmup_s, 3)},
        "totals": {
            "requests": total,
            "ok": tally.ok,
            "errors": tally.errors,
            "shed": tally.shed,
            "from_cache": tally.from_cache,
            "coalesced": tally.coalesced,
            "cold": tally.cold,
            "retried": resilience["retried"],
            "hedged": resilience["hedged"],
            "breaker_open": resilience["breaker_open"],
            "duration_s": round(measured_s, 3),
            "rps": round(tally.ok / measured_s, 1),
        },
        "resilience": resilience,
        "errors_by_code": dict(sorted(tally.by_code.items())),
        "latency_ms": {
            "p50": round(_percentile(ordered, 0.50) * 1000, 3),
            "p95": round(_percentile(ordered, 0.95) * 1000, 3),
            "p99": round(_percentile(ordered, 0.99) * 1000, 3),
            "mean": round(sum(ordered) / len(ordered) * 1000, 3)
            if ordered
            else 0.0,
            "max": round(ordered[-1] * 1000, 3) if ordered else 0.0,
        },
        "per_request_breakdown": _breakdown_summary(tally.breakdowns),
        "server": {"metrics": server_metrics, "health": server_health},
    }
    if config.out:
        write_loadgen_json(config.out, payload)
    return payload


def _aggregate_resilience(per_worker: list[dict]) -> dict:
    """Sum the per-connection ResilienceStats into one campaign view."""
    totals = ResilienceStats()
    for stats in per_worker:
        totals.attempts += stats["attempts"]
        totals.retried += stats["retried"]
        totals.hedged += stats["hedged"]
        totals.hedge_wins += stats["hedge_wins"]
        totals.reconnects += stats["reconnects"]
        totals.breaker_open += stats["breaker_open"]
        for code, count in stats["retries_by_code"].items():
            totals.retries_by_code[code] = (
                totals.retries_by_code.get(code, 0) + count
            )
    return totals.as_dict()


def write_loadgen_json(path: str | Path, payload: dict) -> None:
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def format_loadgen(payload: dict) -> str:
    totals = payload["totals"]
    latency = payload["latency_ms"]
    lines = [
        f"{totals['requests']} requests in {totals['duration_s']:.1f}s "
        f"over {payload['config']['concurrency']} connection(s): "
        f"{totals['rps']:.0f} req/s",
        f"  ok {totals['ok']}  errors {totals['errors']}  "
        f"shed {totals['shed']}  "
        f"cache-hits {totals['from_cache']}  coalesced {totals['coalesced']}"
        + (
            f"  cold {totals['cold']}"
            if totals.get("cold")
            else ""
        ),
        f"  latency ms: p50 {latency['p50']:.2f}  p95 {latency['p95']:.2f}  "
        f"p99 {latency['p99']:.2f}  max {latency['max']:.2f}",
    ]
    if payload["errors_by_code"]:
        codes = "  ".join(
            f"{code}={count}"
            for code, count in payload["errors_by_code"].items()
        )
        lines.append(f"  error codes: {codes}")
    resilience = payload.get("resilience", {})
    if resilience.get("attempts"):
        lines.append(
            f"  resilience: retried {resilience['retried']}  "
            f"hedged {resilience['hedged']} "
            f"(won {resilience['hedge_wins']})  "
            f"breaker-open {resilience['breaker_open']}  "
            f"reconnects {resilience['reconnects']}"
        )
    warmup = payload["warmup"]
    if warmup["seconds"]:
        lines.append(
            f"  warm-up: {warmup['distinct_cells']} distinct cell(s) in "
            f"{warmup['seconds']:.2f}s"
        )
    breakdown = payload.get("per_request_breakdown", {})
    if breakdown.get("sampled"):
        parts = "  ".join(
            f"{bucket} {breakdown[f'{bucket}_ms']['p50']:.2f}"
            for bucket in _BREAKDOWN_BUCKETS
            if f"{bucket}_ms" in breakdown
        )
        lines.append(
            f"  traced {breakdown['sampled']} request(s), p50 ms by stage: "
            f"{parts}  (coverage mean "
            f"{breakdown['coverage']['mean']:.0%})"
        )
    return "\n".join(lines)

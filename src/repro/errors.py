"""Exception hierarchy for the repro compiler.

Every error raised by the library derives from :class:`ReproError`, so
embedders can catch one type.  Subclasses separate the three phases where
user-visible failures can originate: parsing/lowering C source, verifying or
transforming IR, and executing IR on the interpreter.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro compiler."""


class FrontendError(ReproError):
    """A C source program could not be parsed or lowered to IR.

    Carries an optional source coordinate so messages can point at the
    offending construct.
    """

    def __init__(self, message: str, coord: object | None = None) -> None:
        self.coord = coord
        if coord is not None:
            message = f"{coord}: {message}"
        super().__init__(message)


class UnsupportedFeatureError(FrontendError):
    """The program uses a C feature outside the supported subset."""


class IRError(ReproError):
    """The IR is malformed (verification failure or illegal construction)."""


class AnalysisError(ReproError):
    """An analysis was asked for facts it cannot produce."""


class InterpError(ReproError):
    """A runtime fault while interpreting IR (bad address, missing function,
    division by zero, ...)."""


class InterpTrap(InterpError):
    """The interpreted program performed an operation with undefined
    behaviour (out-of-bounds access, use of an uninitialized cell when strict
    mode is enabled)."""


class ResourceLimitError(InterpError):
    """The interpreted program exceeded a configured fuel/step or memory
    limit."""

"""A lightweight counter/gauge registry.

Passes and the interpreter publish named values (``promotion.tags_promoted``,
``interp.total_ops``) into the active registry; the runner serializes the
snapshot into ``suite.json`` per experiment cell, and :mod:`repro.diag.drift`
compares snapshots across suite runs.

Same zero-cost-when-off contract as the ledger and telemetry: the module
helpers :func:`inc_metric`/:func:`set_gauge` no-op unless a
:func:`metrics_session` is active, so instrumentation stays unconditional.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "MetricsRegistry",
    "current_registry",
    "inc_metric",
    "metrics_session",
    "set_gauge",
]


class MetricsRegistry:
    """Flat name -> number mapping with counter and gauge semantics."""

    def __init__(self) -> None:
        self.values: dict[str, int | float] = {}

    def inc(self, name: str, delta: int | float = 1) -> None:
        self.values[name] = self.values.get(name, 0) + delta

    def set_gauge(self, name: str, value: int | float) -> None:
        self.values[name] = value

    def get(self, name: str, default: int | float = 0) -> int | float:
        return self.values.get(name, default)

    def as_dict(self) -> dict[str, int | float]:
        return {name: self.values[name] for name in sorted(self.values)}

    def __len__(self) -> int:
        return len(self.values)


_CURRENT: MetricsRegistry | None = None


def current_registry() -> MetricsRegistry | None:
    return _CURRENT


@contextmanager
def metrics_session() -> Iterator[MetricsRegistry]:
    """Install a fresh registry as the current one for the duration."""
    global _CURRENT
    previous = _CURRENT
    registry = MetricsRegistry()
    _CURRENT = registry
    try:
        yield registry
    finally:
        _CURRENT = previous


def inc_metric(name: str, delta: int | float = 1) -> None:
    """Add to a counter on the active registry; no-op when none is."""
    registry = _CURRENT
    if registry is not None:
        registry.inc(name, delta)


def set_gauge(name: str, value: int | float) -> None:
    """Set a gauge on the active registry; no-op when none is."""
    registry = _CURRENT
    if registry is not None:
        registry.set_gauge(name, value)

"""Stdlib :mod:`logging` setup for the ``repro`` package.

Every module logger hangs off the ``"repro"`` root (``get_logger(__name__)``
inside the package already does), so one :func:`setup_logging` call controls
the whole compiler.  The CLI maps its global flags onto verbosity levels:
``-q`` -> errors only, default -> warnings, ``-v`` -> info, ``-vv`` -> debug.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "setup_logging"]

#: marks handlers installed by :func:`setup_logging` so reruns replace
#: rather than stack them
_HANDLER_FLAG = "_repro_diag_handler"

_LEVELS = {
    -1: logging.ERROR,
    0: logging.WARNING,
    1: logging.INFO,
    2: logging.DEBUG,
}


def get_logger(name: str) -> logging.Logger:
    """The module logger for ``name`` (rooted under ``repro``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def setup_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` root logger and return it.

    ``verbosity``: -1 (quiet) .. 2 (debug); values outside are clamped.
    Idempotent — a second call reconfigures instead of duplicating
    handlers, so tests and long-lived sessions can call it freely.
    """
    level = _LEVELS[max(-1, min(2, verbosity))]
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root

"""Stdlib :mod:`logging` setup for the ``repro`` package.

Every module logger hangs off the ``"repro"`` root (``get_logger(__name__)``
inside the package already does), so one :func:`setup_logging` call controls
the whole compiler.  The CLI maps its global flags onto verbosity levels:
``-q`` -> errors only, default -> warnings, ``-v`` -> info, ``-vv`` -> debug.

Forked pool workers call :func:`setup_worker_logging` with the verbosity
the parent captured at spawn (via :func:`current_verbosity`), so ``-v`` /
``-vv`` / ``-q`` reach worker-side records too; their format prefixes
each record with the worker id and, while a traced job is running, the
active trace id (set per-job with :func:`set_log_context`).
"""

from __future__ import annotations

import logging
import sys

__all__ = [
    "current_verbosity",
    "get_logger",
    "set_log_context",
    "setup_logging",
    "setup_worker_logging",
]

#: marks handlers installed by :func:`setup_logging` so reruns replace
#: rather than stack them
_HANDLER_FLAG = "_repro_diag_handler"

_LEVELS = {
    -1: logging.ERROR,
    0: logging.WARNING,
    1: logging.INFO,
    2: logging.DEBUG,
}

#: the verbosity of the last :func:`setup_logging` call — what a worker
#: spawn captures so the global ``-v/-vv/-q`` level survives the fork
_VERBOSITY = 0

#: record attributes injected by :class:`_ContextFilter`
_CONTEXT = {"worker": "-", "trace_id": "-"}


def get_logger(name: str) -> logging.Logger:
    """The module logger for ``name`` (rooted under ``repro``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def current_verbosity() -> int:
    """The verbosity most recently passed to :func:`setup_logging`."""
    return _VERBOSITY


def set_log_context(worker: str | None = None, trace_id: str | None = None) -> None:
    """Attach worker/trace identity to subsequent log records (``"-"`` to
    clear); only visible through the worker formatter."""
    if worker is not None:
        _CONTEXT["worker"] = worker
    if trace_id is not None:
        _CONTEXT["trace_id"] = trace_id


class _ContextFilter(logging.Filter):
    """Injects ``record.worker`` / ``record.trace_id`` from the module
    context so formatters can reference them unconditionally."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.worker = _CONTEXT["worker"]
        record.trace_id = _CONTEXT["trace_id"]
        return True


def _install_handler(root: logging.Logger, level: int, stream, fmt: str) -> None:
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    handler.addFilter(_ContextFilter())
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False


def setup_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` root logger and return it.

    ``verbosity``: -1 (quiet) .. 2 (debug); values outside are clamped.
    Idempotent — a second call reconfigures instead of duplicating
    handlers, so tests and long-lived sessions can call it freely.
    """
    global _VERBOSITY
    _VERBOSITY = max(-1, min(2, verbosity))
    root = logging.getLogger("repro")
    _install_handler(
        root,
        _LEVELS[_VERBOSITY],
        stream,
        "%(levelname)s %(name)s: %(message)s",
    )
    return root


def setup_worker_logging(
    worker_index: int, verbosity: int | None = None, stream=None
) -> logging.Logger:
    """Configure logging inside a forked pool worker.

    Re-installs the stream handler (the fork inherited the parent's, but
    with the parent's format) at the propagated ``verbosity`` and a
    format that prefixes every record with the worker id and the current
    trace id — ``WARNING repro.interp [w1 t=3f9c...]: ...`` — so worker
    records interleaved in the server log stay attributable.
    """
    global _VERBOSITY
    if verbosity is not None:
        _VERBOSITY = max(-1, min(2, verbosity))
    set_log_context(worker=f"w{worker_index}", trace_id="-")
    root = logging.getLogger("repro")
    _install_handler(
        root,
        _LEVELS[_VERBOSITY],
        stream,
        "%(levelname)s %(name)s [%(worker)s t=%(trace_id)s]: %(message)s",
    )
    return root

"""The metrics drift gate (``repro drift``).

Compares a fresh suite run against a checked-in baseline
(``benchmarks/baseline.json``) and fails on regressions — the repo's
cross-PR, machine-checkable guarantee that the numbers behind Figures 5-7
only move on purpose.

Gated metrics per ``workload/variant`` cell:

* ``total_ops`` / ``loads`` / ``stores`` — dynamic counters where an
  *increase* beyond tolerance is a regression;
* ``promotion.tags_promoted`` / ``pointer_promotion.promoted_bases`` —
  optimization yield where a *decrease* beyond tolerance is a regression.

Every other published metric is compared informationally: changes are
reported but do not fail the gate (so e.g. LICM hoisting more after a
refactor does not break CI).  A baseline cell missing from the current
run fails the gate (lost coverage); a new cell is reported and ignored
until ``--update`` re-baselines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .log import get_logger

__all__ = [
    "BASELINE_SCHEMA",
    "Drift",
    "compare_cells",
    "format_drift_report",
    "load_baseline",
    "suite_cell_metrics",
    "write_baseline",
]

log = get_logger(__name__)

BASELINE_SCHEMA = 1

#: regression when the metric goes up
GATE_HIGHER_IS_WORSE = ("total_ops", "loads", "stores")
#: regression when the metric goes down
GATE_LOWER_IS_WORSE = (
    "promotion.tags_promoted",
    "pointer_promotion.promoted_bases",
)


@dataclass
class Drift:
    """One metric that moved (or a cell that appeared/vanished)."""

    cell: str
    metric: str
    baseline: float | None
    current: float | None
    kind: str  # "regression" | "improvement" | "info" | "missing-cell" | "new-cell"

    @property
    def percent(self) -> float:
        if self.baseline in (None, 0) or self.current is None:
            return 0.0
        return 100.0 * (self.current - self.baseline) / self.baseline

    def __str__(self) -> str:
        if self.kind == "missing-cell":
            return f"{self.cell}: present in baseline, missing from this run"
        if self.kind == "new-cell":
            return f"{self.cell}: not in baseline (use --update to adopt)"
        arrow = f"{self.baseline:g} -> {self.current:g}"
        return f"{self.cell} {self.metric}: {arrow} ({self.percent:+.2f}%)"


def suite_cell_metrics(report) -> dict[str, dict[str, float]]:
    """Flatten a :class:`~repro.runner.report.SuiteReport` into
    ``{"workload/variant": {metric: value}}`` — counters plus everything
    the passes published into the cell's metrics registry."""
    cells: dict[str, dict[str, float]] = {}
    for (workload, variant), outcome in sorted(report.outcomes.items()):
        if not outcome.ok:
            continue
        metrics: dict[str, float] = {
            "total_ops": outcome.counters.total_ops,
            "loads": outcome.counters.loads,
            "stores": outcome.counters.stores,
        }
        metrics.update(getattr(outcome, "metrics", {}) or {})
        cells[f"{workload}/{variant}"] = metrics
    return cells


def _exceeds(baseline: float, current: float, tolerance_pct: float) -> bool:
    if baseline == 0:
        return current != 0
    return abs(current - baseline) > abs(baseline) * tolerance_pct / 100.0


def compare_cells(
    baseline_cells: dict[str, dict[str, float]],
    current_cells: dict[str, dict[str, float]],
    tolerance_pct: float = 0.0,
) -> list[Drift]:
    """Diff two metric snapshots; regressions carry ``kind="regression"``."""
    drifts: list[Drift] = []
    for cell in sorted(baseline_cells):
        base = baseline_cells[cell]
        cur = current_cells.get(cell)
        if cur is None:
            drifts.append(Drift(cell, "-", None, None, "missing-cell"))
            continue
        for metric in sorted(set(base) | set(cur)):
            b = base.get(metric)
            c = cur.get(metric)
            if b is None or c is None or b == c:
                continue
            if metric in GATE_HIGHER_IS_WORSE:
                bad = c > b and _exceeds(b, c, tolerance_pct)
                kind = "regression" if bad else "improvement" if c < b else "info"
            elif metric in GATE_LOWER_IS_WORSE:
                bad = c < b and _exceeds(b, c, tolerance_pct)
                kind = "regression" if bad else "improvement" if c > b else "info"
            else:
                kind = "info"
            drifts.append(Drift(cell, metric, b, c, kind))
    for cell in sorted(set(current_cells) - set(baseline_cells)):
        drifts.append(Drift(cell, "-", None, None, "new-cell"))
    return drifts


def regressions(drifts: list[Drift]) -> list[Drift]:
    return [d for d in drifts if d.kind in ("regression", "missing-cell")]


def format_drift_report(drifts: list[Drift], tolerance_pct: float) -> str:
    failed = regressions(drifts)
    improved = [d for d in drifts if d.kind == "improvement"]
    info = [d for d in drifts if d.kind in ("info", "new-cell")]
    lines: list[str] = []
    if failed:
        lines.append(f"REGRESSIONS (tolerance {tolerance_pct:g}%):")
        lines.extend(f"  {d}" for d in failed)
    if improved:
        lines.append("improvements:")
        lines.extend(f"  {d}" for d in improved)
    if info:
        lines.append("informational drift (not gated):")
        lines.extend(f"  {d}" for d in info)
    if not drifts:
        lines.append("no drift: every gated metric matches the baseline")
    lines.append(
        f"drift: {len(failed)} regression(s), {len(improved)} improvement(s), "
        f"{len(info)} informational"
    )
    return "\n".join(lines)


def load_baseline(path: str | Path) -> dict[str, dict[str, float]]:
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} has schema {payload.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA}"
        )
    return payload["cells"]


def write_baseline(path: str | Path, cells: dict[str, dict[str, float]]) -> None:
    payload = {"schema": BASELINE_SCHEMA, "cells": cells}
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    log.info("baseline written: %s (%d cells)", path, len(cells))

"""Observability for the compiler: decision ledger, per-loop dynamic
profiling, metrics registry, and the cross-PR drift gate.

The paper's evaluation (section 5) is an observability story — dynamic
operation/load/store counts explain *where* promotion pays off and *why*
points-to beats MOD/REF.  This package makes the same questions answerable
about our own pipeline:

* :mod:`repro.diag.ledger` — every optimization pass emits structured
  :class:`Decision` records ("tag ``x`` was blocked in loop ``L2`` by the
  MOD set of callee ``f``"), queryable via ``repro explain``;
* :mod:`repro.diag.profile` — fold the interpreter's per-block execution
  counts up through the loop forest into a hot-loop table
  (``repro run --profile`` / ``repro compare --profile``);
* :mod:`repro.diag.metrics` — a lightweight counter/gauge registry that
  passes and the interpreter publish into, serialized per cell into
  ``suite.json``;
* :mod:`repro.diag.drift` — diff a fresh suite run against a checked-in
  ``benchmarks/baseline.json`` and fail on metric regressions
  (``repro drift``);
* :mod:`repro.diag.log` — stdlib :mod:`logging` setup shared by the CLI's
  ``-v/-vv/-q`` flags and the module loggers.
"""

from .host import host_metadata
from .ledger import (
    Decision,
    DecisionLedger,
    current_ledger,
    decision_ledger,
    format_decision_table,
    record,
)
from .log import get_logger, setup_logging
from .metrics import (
    MetricsRegistry,
    current_registry,
    inc_metric,
    metrics_session,
    set_gauge,
)
from .profile import LoopProfileRow, format_profile, profile_loops

__all__ = [
    "Decision",
    "DecisionLedger",
    "LoopProfileRow",
    "MetricsRegistry",
    "current_ledger",
    "current_registry",
    "decision_ledger",
    "format_decision_table",
    "format_profile",
    "get_logger",
    "host_metadata",
    "inc_metric",
    "metrics_session",
    "profile_loops",
    "record",
    "set_gauge",
    "setup_logging",
]

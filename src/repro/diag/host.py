"""Host metadata stamped into benchmark artifacts.

``BENCH_interp.json``, ``BENCH_serve.json``, and ``suite.json`` track
performance trajectories *in-repo*, which only means something if a
reader can tell whether two snapshots came from comparable machines.
:func:`host_metadata` captures the facts that move the numbers: the
Python version/implementation, the platform, and the core count.
"""

from __future__ import annotations

import os
import platform

__all__ = ["host_metadata"]


def host_metadata() -> dict:
    """Stable, JSON-ready description of the executing host."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }

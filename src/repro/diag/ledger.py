"""The compiler-decision ledger.

Every optimization pass records *why* it did (or refused to do) something
as a structured :class:`Decision`.  The canonical example is register
promotion: one decision per (loop, tag) pair, either ``promoted`` or
``blocked`` with the blocking reason — ``ambiguous-via-call`` naming the
offending callee and its MOD/REF summary, ``ambiguous-via-pointer`` with
the memory operation's tag set, ``not-scalar``, ``not-referenced``, or
``pressure-throttled``.  This is exactly the provenance needed to answer
the paper's section 5 question "why does points-to promote tags MOD/REF
cannot?" about a concrete program.

The ledger follows the same zero-cost-when-off pattern as
:mod:`repro.runner.telemetry`: passes call :func:`record`, which is a
no-op unless a :func:`decision_ledger` context is active.  ``repro
explain FILE`` installs a ledger around one compilation and renders the
result as a table or JSONL.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Decision",
    "DecisionLedger",
    "current_ledger",
    "decision_ledger",
    "format_decision_table",
    "record",
]

#: cap on how many tag names a decision detail spells out verbatim
MAX_DETAIL_TAGS = 12


@dataclass
class Decision:
    """One recorded compiler decision.

    ``action`` is the verb ("promoted", "blocked", "hoisted",
    "strengthened", "applied", "summarized", "refined"); ``reason`` is a
    short kebab-case code explaining a negative outcome; ``detail`` holds
    pass-specific provenance (JSON-serializable only).
    """

    pass_name: str
    function: str
    action: str
    loop: str | None = None
    tag: str | None = None
    reason: str | None = None
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "function": self.function,
            "action": self.action,
            "loop": self.loop,
            "tag": self.tag,
            "reason": self.reason,
            "detail": dict(self.detail),
        }

    def why(self) -> str:
        """One human-readable clause of provenance for the table view."""
        parts: list[str] = []
        for call in self.detail.get("calls", ()):
            sets = [s for s in ("mod", "ref") if call.get(f"in_{s}")]
            parts.append(f"call {call['callee']} ({'+'.join(sets) or '?'})")
        for op in self.detail.get("pointer_ops", ()):
            tags = "*" if op.get("universal") else "{%s}" % ",".join(op["tags"])
            parts.append(f"{op['op']} via {tags}")
        if self.detail.get("lifted_here") is True:
            parts.append("lifted here")
        elif self.detail.get("lifted_here") is False:
            parts.append("inherited from outer loop")
        if "opcode" in self.detail:
            parts.append(str(self.detail["opcode"]))
        if not parts and self.detail:
            parts.append(
                " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
            )
        return "; ".join(parts)


class DecisionLedger:
    """An append-only collection of decisions with simple querying."""

    def __init__(self) -> None:
        self.decisions: list[Decision] = []

    def record(self, decision: Decision) -> None:
        self.decisions.append(decision)

    def query(
        self,
        pass_name: str | None = None,
        function: str | None = None,
        loop: str | None = None,
        tag: str | None = None,
        action: str | None = None,
    ) -> list[Decision]:
        out = self.decisions
        if pass_name is not None:
            out = [d for d in out if d.pass_name == pass_name]
        if function is not None:
            out = [d for d in out if d.function == function]
        if loop is not None:
            out = [d for d in out if d.loop == loop]
        if tag is not None:
            out = [d for d in out if d.tag == tag]
        if action is not None:
            out = [d for d in out if d.action == action]
        return list(out)

    def jsonl(self, decisions: list[Decision] | None = None) -> str:
        rows = self.decisions if decisions is None else decisions
        return "\n".join(json.dumps(d.as_dict(), sort_keys=True) for d in rows)

    def __len__(self) -> int:
        return len(self.decisions)


_CURRENT: DecisionLedger | None = None


def current_ledger() -> DecisionLedger | None:
    return _CURRENT


@contextmanager
def decision_ledger() -> Iterator[DecisionLedger]:
    """Install a fresh ledger as the current one for the duration."""
    global _CURRENT
    previous = _CURRENT
    ledger = DecisionLedger()
    _CURRENT = ledger
    try:
        yield ledger
    finally:
        _CURRENT = previous


def record(
    pass_name: str,
    function: str,
    action: str,
    loop: str | None = None,
    tag: str | None = None,
    reason: str | None = None,
    detail: dict | None = None,
) -> None:
    """Record a decision on the active ledger; free no-op when none is."""
    ledger = _CURRENT
    if ledger is None:
        return
    ledger.record(
        Decision(
            pass_name=pass_name,
            function=function,
            action=action,
            loop=loop,
            tag=tag,
            reason=reason,
            detail=detail or {},
        )
    )


def trim_tag_names(tags, limit: int = MAX_DETAIL_TAGS) -> list[str]:
    """Sorted tag names, truncated so a huge universe can't bloat details."""
    names = sorted(str(t) for t in tags)
    if len(names) > limit:
        names = names[:limit] + [f"... +{len(names) - limit} more"]
    return names


def format_decision_table(decisions: list[Decision]) -> str:
    """The ``repro explain`` human view."""
    if not decisions:
        return "(no decisions recorded)"
    header = (
        f"{'pass':<18} {'function':<14} {'loop':<8} {'tag':<14} "
        f"{'action':<12} {'reason':<22} why"
    )
    lines = [header, "-" * len(header)]
    for d in decisions:
        lines.append(
            f"{d.pass_name:<18} {d.function:<14} {d.loop or '-':<8} "
            f"{d.tag or '-':<14} {d.action:<12} {d.reason or '-':<22} "
            f"{d.why()}"
        )
    return "\n".join(lines)

"""Per-loop dynamic profiling.

The interpreter (with ``MachineOptions(profile=True)``) counts how many
times each basic block executes.  Because a block in our IL always runs
all of its instructions when entered (the terminator is last, and ``nop``
is the only non-counted instruction), the exact dynamic cost of a block is
``visits x static instruction mix`` — so profiling costs one dictionary
increment per *block* executed, never per instruction, and the profile-off
path allocates nothing.  Both execution engines count visits at block
entry with identical semantics, so a profile taken under the
block-threaded engine matches one taken under the reference loop exactly.

This module folds those block counts up through the loop forest of the
optimized module: each loop row aggregates every block in the loop body
(nested loops included), giving the paper-style answer to "which loops
carry the memory traffic, and how much did promotion remove?".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.loops import find_loops
from ..ir.instructions import (
    CLoad,
    MemLoad,
    MemStore,
    Nop,
    ScalarLoad,
    ScalarStore,
)
from ..ir.module import Module

__all__ = [
    "BlockMix",
    "LoopProfileRow",
    "block_mix",
    "format_profile",
    "format_profile_comparison",
    "profile_loops",
]


@dataclass(frozen=True)
class BlockMix:
    """Static per-execution cost of one basic block."""

    ops: int = 0
    loads: int = 0
    stores: int = 0


def block_mix(block) -> BlockMix:
    """Count what one pass over the block's instructions executes."""
    ops = loads = stores = 0
    for instr in block.instrs:
        if isinstance(instr, Nop):
            continue  # structural; the interpreter un-counts it
        ops += 1
        if isinstance(instr, (ScalarLoad, CLoad, MemLoad)):
            loads += 1
        elif isinstance(instr, (ScalarStore, MemStore)):
            stores += 1
    return BlockMix(ops=ops, loads=loads, stores=stores)


@dataclass
class LoopProfileRow:
    """Dynamic totals for one loop (nested loops included)."""

    function: str
    header: str
    depth: int
    visits: int  #: executions of the loop header block
    ops: int
    loads: int
    stores: int

    @property
    def key(self) -> tuple[str, str]:
        return (self.function, self.header)

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "header": self.header,
            "depth": self.depth,
            "visits": self.visits,
            "ops": self.ops,
            "loads": self.loads,
            "stores": self.stores,
        }


def profile_loops(
    module: Module, visits: dict[tuple[str, str], int]
) -> list[LoopProfileRow]:
    """Fold per-block execution counts into per-loop dynamic totals.

    ``visits`` maps ``(function, block label)`` to execution count — the
    :attr:`repro.interp.RunResult.block_visits` of a profiled run.  Loops
    are discovered on the module as executed (post-optimization), so the
    rows line up with the counters the run reported.
    """
    rows: list[LoopProfileRow] = []
    for func in module.functions.values():
        forest = find_loops(func)
        if not forest.loops:
            continue
        mixes = {label: block_mix(block) for label, block in func.blocks.items()}
        for loop in forest.loops:
            ops = loads = stores = 0
            for label in loop.blocks:
                count = visits.get((func.name, label), 0)
                if not count:
                    continue
                mix = mixes[label]
                ops += count * mix.ops
                loads += count * mix.loads
                stores += count * mix.stores
            rows.append(
                LoopProfileRow(
                    function=func.name,
                    header=loop.header,
                    depth=loop.depth,
                    visits=visits.get((func.name, loop.header), 0),
                    ops=ops,
                    loads=loads,
                    stores=stores,
                )
            )
    rows.sort(key=lambda r: (-r.ops, r.function, r.header))
    return rows


def format_profile(rows: list[LoopProfileRow], limit: int | None = 10) -> str:
    """The ``repro run --profile`` hot-loop table."""
    if not rows:
        return "(no loops executed)"
    shown = rows if limit is None else rows[:limit]
    header = (
        f"{'loop':<24} {'depth':>5} {'visits':>10} {'ops':>12} "
        f"{'loads':>10} {'stores':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in shown:
        name = f"{row.function}@{row.header}"
        lines.append(
            f"{name:<24} {row.depth:>5} {row.visits:>10} {row.ops:>12} "
            f"{row.loads:>10} {row.stores:>10}"
        )
    if limit is not None and len(rows) > limit:
        lines.append(f"... {len(rows) - limit} cooler loop(s) not shown")
    return "\n".join(lines)


def format_profile_comparison(
    before: list[LoopProfileRow],
    after: list[LoopProfileRow],
    before_name: str = "without",
    after_name: str = "with",
    limit: int | None = 10,
) -> str:
    """Per-loop before/after table (``repro compare --profile``).

    Loops are matched by ``function@header``; a loop present in only one
    variant (cleaning can erase an empty loop wholesale) shows ``-`` on
    the other side.
    """
    by_key_after = {row.key: row for row in after}
    keys = [row.key for row in before]
    keys += [row.key for row in after if row.key not in set(keys)]
    if not keys:
        return "(no loops executed)"
    header = (
        f"{'loop':<24} {'loads ' + before_name:>14} {'loads ' + after_name:>12} "
        f"{'stores ' + before_name:>15} {'stores ' + after_name:>13} "
        f"{'mem removed':>12}"
    )
    lines = [header, "-" * len(header)]
    by_key_before = {row.key: row for row in before}
    shown = keys if limit is None else keys[:limit]
    for key in shown:
        b = by_key_before.get(key)
        a = by_key_after.get(key)
        name = f"{key[0]}@{key[1]}"
        removed = (
            (b.loads + b.stores) - (a.loads + a.stores)
            if b is not None and a is not None
            else None
        )
        lines.append(
            f"{name:<24} "
            f"{b.loads if b else '-':>14} {a.loads if a else '-':>12} "
            f"{b.stores if b else '-':>15} {a.stores if a else '-':>13} "
            f"{removed if removed is not None else '-':>12}"
        )
    if limit is not None and len(keys) > limit:
        lines.append(f"... {len(keys) - limit} cooler loop(s) not shown")
    return "\n".join(lines)

"""Tagged intermediate language (IL) for the register-promotion compiler.

The IL mirrors the essential features of the paper's ILOC-style
representation: virtual registers, the Table 1 memory-opcode hierarchy,
per-operation tag lists, and per-call MOD/REF summaries.
"""

from .builder import IRBuilder
from .function import BasicBlock, Function
from .instructions import (
    BinOp,
    Branch,
    Call,
    CLoad,
    Instr,
    Jump,
    LoadAddr,
    LoadI,
    MemLoad,
    MemStore,
    Mov,
    Nop,
    Phi,
    Ret,
    ScalarLoad,
    ScalarStore,
    UnOp,
    VReg,
    branch_targets,
    is_memory_load,
    is_memory_op,
    is_memory_store,
    retarget,
)
from .module import GlobalVar, Module, StringLiteral
from .opcodes import (
    BINARY_OPS,
    COMMUTATIVE_OPS,
    COMPARISON_OPS,
    MEMORY_LOAD_OPS,
    MEMORY_OPS,
    MEMORY_STORE_OPS,
    TERMINATOR_OPS,
    UNARY_OPS,
    Opcode,
)
from .parser import parse_module
from .printer import dump, format_function, format_module
from .tags import Tag, TagKind, TagSet
from .verify import verify_function, verify_module

__all__ = [
    "BasicBlock",
    "BinOp",
    "Branch",
    "BINARY_OPS",
    "Call",
    "CLoad",
    "COMMUTATIVE_OPS",
    "COMPARISON_OPS",
    "Function",
    "GlobalVar",
    "Instr",
    "IRBuilder",
    "Jump",
    "LoadAddr",
    "LoadI",
    "MemLoad",
    "MemStore",
    "MEMORY_LOAD_OPS",
    "MEMORY_OPS",
    "MEMORY_STORE_OPS",
    "Module",
    "Mov",
    "Nop",
    "Opcode",
    "Phi",
    "Ret",
    "ScalarLoad",
    "ScalarStore",
    "StringLiteral",
    "Tag",
    "TagKind",
    "TagSet",
    "TERMINATOR_OPS",
    "UnOp",
    "UNARY_OPS",
    "VReg",
    "branch_targets",
    "dump",
    "format_function",
    "format_module",
    "parse_module",
    "is_memory_load",
    "is_memory_op",
    "is_memory_store",
    "retarget",
    "verify_function",
    "verify_module",
]

"""Memory tags: textual names for abstract storage locations.

Every memory operation in the IL carries tags identifying the locations it
may use (the paper, section 2).  Tags are the currency of the whole
reproduction: MOD/REF and points-to analysis shrink tag sets, and register
promotion decides promotability purely from tags.

Tag kinds
---------
``GLOBAL``
    A file-scope variable.  One tag per global.
``LOCAL``
    An address-taken local variable or formal parameter, qualified by its
    owning function (``f.x``).  Locals whose address is never taken live in
    virtual registers and have no tag at all.
``HEAP``
    One tag per allocation call site (the paper's heap model).
``INTERNAL``
    Locations private to the runtime (e.g. the PRNG seed) that user pointers
    can never reach.

A :class:`TagSet` is either a finite set of tags or the *universal* set,
which stands for "any memory location" and is what the front end emits
before interprocedural analysis improves it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class TagKind(enum.Enum):
    GLOBAL = "global"
    LOCAL = "local"
    HEAP = "heap"
    INTERNAL = "internal"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Tag:
    """A named abstract memory location.

    Parameters
    ----------
    name:
        Unique printable name, e.g. ``"count"``, ``"main.buf"``,
        ``"heap@12"``.
    kind:
        The :class:`TagKind`.
    is_scalar:
        True when the tag names a single machine word (an ``int``, a
        ``double``, a pointer).  Only scalar tags can be register promoted;
        arrays, structs, and heap blocks are not scalars.
    owner:
        For ``LOCAL`` tags, the name of the function whose frame holds the
        location.  Empty for other kinds.
    """

    name: str
    kind: TagKind
    is_scalar: bool = True
    owner: str = ""

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tag({self.name!r}, {self.kind.value}, scalar={self.is_scalar})"


@dataclass(frozen=True)
class TagSet:
    """An immutable set of tags, possibly universal.

    The universal set represents "may touch any memory location"; it is the
    top of the lattice and absorbs unions.  Membership, iteration, and size
    are only meaningful for finite sets.
    """

    tags: frozenset[Tag] = field(default_factory=frozenset)
    universal: bool = False

    # -- constructors -----------------------------------------------------
    @staticmethod
    def of(*tags: Tag) -> "TagSet":
        """A finite tag set containing exactly ``tags``."""
        return TagSet(tags=frozenset(tags))

    @staticmethod
    def from_iterable(tags: Iterable[Tag]) -> "TagSet":
        return TagSet(tags=frozenset(tags))

    @staticmethod
    def empty() -> "TagSet":
        return _EMPTY

    @staticmethod
    def universe() -> "TagSet":
        return _UNIVERSE

    # -- queries ----------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.universal and not self.tags

    def is_singleton(self) -> bool:
        return not self.universal and len(self.tags) == 1

    def the_tag(self) -> Tag:
        """The only member of a singleton set.

        Raises
        ------
        ValueError
            If the set is not a singleton.
        """
        if not self.is_singleton():
            raise ValueError(f"not a singleton tag set: {self}")
        return next(iter(self.tags))

    def __contains__(self, tag: Tag) -> bool:
        return self.universal or tag in self.tags

    def __iter__(self) -> Iterator[Tag]:
        if self.universal:
            raise ValueError("cannot iterate the universal tag set")
        return iter(self.tags)

    def __len__(self) -> int:
        if self.universal:
            raise ValueError("the universal tag set has no finite size")
        return len(self.tags)

    def __bool__(self) -> bool:
        return self.universal or bool(self.tags)

    # -- algebra ----------------------------------------------------------
    def union(self, other: "TagSet") -> "TagSet":
        if self.universal or other.universal:
            return _UNIVERSE
        if not other.tags:
            return self
        if not self.tags:
            return other
        return TagSet(tags=self.tags | other.tags)

    def intersect(self, other: "TagSet") -> "TagSet":
        if self.universal:
            return other
        if other.universal:
            return self
        return TagSet(tags=self.tags & other.tags)

    def without(self, tags: Iterable[Tag]) -> "TagSet":
        """Finite-set difference; removing from the universe is a no-op
        because the universe has no enumerable members to remove."""
        if self.universal:
            return self
        return TagSet(tags=self.tags - frozenset(tags))

    def overlaps(self, other: "TagSet") -> bool:
        """May the two sets name a common location?"""
        if self.universal:
            return bool(other)
        if other.universal:
            return bool(self.tags)
        return not self.tags.isdisjoint(other.tags)

    def materialize(self, universe: Iterable[Tag]) -> "TagSet":
        """Replace the universal set by an explicit enumeration."""
        if not self.universal:
            return self
        return TagSet(tags=frozenset(universe))

    # -- display ----------------------------------------------------------
    def __str__(self) -> str:
        if self.universal:
            return "[*]"
        names = sorted(t.name for t in self.tags)
        return "[" + " ".join(names) + "]"


_EMPTY = TagSet()
_UNIVERSE = TagSet(universal=True)


def scalar_tags(tags: Iterable[Tag]) -> frozenset[Tag]:
    """The subset of ``tags`` that name promotable scalar locations."""
    return frozenset(t for t in tags if t.is_scalar)

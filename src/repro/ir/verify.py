"""IR verifier.

Checks structural invariants that every pass must preserve.  Run after the
front end and (in tests) after each optimization to catch miscompiles at
the point they are introduced rather than at interpretation time.

Invariants checked per function:

* the entry block exists and every block ends in exactly one terminator,
  which is the last instruction;
* every branch target names an existing block;
* no instruction other than the last is a terminator;
* phi nodes appear only at the head of a block and have exactly one
  incoming value per predecessor;
* (optional, ``ssa=True``) every register has at most one definition.
"""

from __future__ import annotations

from ..errors import IRError
from .cfg import predecessors
from .function import Function
from .instructions import Phi, VReg
from .module import Module


def verify_function(func: Function, ssa: bool = False) -> None:
    if not func.entry or func.entry not in func.blocks:
        raise IRError(f"{func.name}: missing entry block")
    for label, block in func.blocks.items():
        if not block.instrs:
            raise IRError(f"{func.name}/{label}: empty block")
        if not block.instrs[-1].is_terminator():
            raise IRError(f"{func.name}/{label}: block does not end in a terminator")
        for instr in block.instrs[:-1]:
            if instr.is_terminator():
                raise IRError(
                    f"{func.name}/{label}: terminator {instr} is not last"
                )
        for target in block.successors():
            if target not in func.blocks:
                raise IRError(
                    f"{func.name}/{label}: branch to unknown block {target}"
                )
        seen_non_phi = False
        for instr in block.instrs:
            if isinstance(instr, Phi):
                if seen_non_phi:
                    raise IRError(
                        f"{func.name}/{label}: phi {instr} after non-phi"
                    )
            else:
                seen_non_phi = True

    preds = predecessors(func)
    for label, block in func.blocks.items():
        for phi in block.phis():
            incoming = set(phi.incoming)
            expected = set(preds[label])
            if incoming != expected:
                raise IRError(
                    f"{func.name}/{label}: phi {phi} incoming {sorted(incoming)} "
                    f"does not match predecessors {sorted(expected)}"
                )

    if ssa:
        _verify_single_assignment(func)


def _verify_single_assignment(func: Function) -> None:
    defined: dict[VReg, str] = {}
    for param in func.params:
        defined[param] = "<param>"
    for label, block in func.blocks.items():
        for instr in block.instrs:
            dest = instr.dest
            if dest is None:
                continue
            if dest in defined:
                raise IRError(
                    f"{func.name}: {dest} defined in both {defined[dest]} "
                    f"and {label}"
                )
            defined[dest] = label


def verify_module(module: Module, ssa: bool = False) -> None:
    for func in module.functions.values():
        verify_function(func, ssa=ssa)

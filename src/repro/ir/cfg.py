"""Control-flow graph utilities.

Successor edges live in each block's terminator; this module derives
everything else: predecessor maps, traversal orders, reachability, and the
loop-shape normalizations the paper's compiler performs during CFG
construction — every loop gets a *landing pad* (preheader) before its
header and a dedicated *exit block* on each edge leaving the loop.
Promotion inserts its load/store pairs into exactly those blocks.
"""

from __future__ import annotations

from typing import Iterable

from .function import BasicBlock, Function


def successors(func: Function, label: str) -> tuple[str, ...]:
    return func.block(label).successors()


def predecessors(func: Function) -> dict[str, list[str]]:
    """``label -> [predecessor labels]`` for every block, in a stable order."""
    preds: dict[str, list[str]] = {label: [] for label in func.blocks}
    for label, block in func.blocks.items():
        for succ in block.successors():
            preds[succ].append(label)
    return preds


def postorder(func: Function) -> list[str]:
    """Labels in depth-first postorder from the entry block.

    Unreachable blocks are omitted.
    """
    seen: set[str] = set()
    order: list[str] = []
    # Iterative DFS keeps very deep CFGs from exhausting Python's stack.
    stack: list[tuple[str, int]] = [(func.entry, 0)]
    seen.add(func.entry)
    while stack:
        label, child_idx = stack[-1]
        succs = func.block(label).successors()
        advanced = False
        for idx in range(child_idx, len(succs)):
            succ = succs[idx]
            stack[-1] = (label, idx + 1)
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, 0))
                advanced = True
                break
        if not advanced and stack and stack[-1][0] == label:
            if stack[-1][1] >= len(succs):
                order.append(label)
                stack.pop()
    return order


def reverse_postorder(func: Function) -> list[str]:
    """Labels in reverse postorder — a topological-ish forward order."""
    order = postorder(func)
    order.reverse()
    return order


def reachable_labels(func: Function) -> set[str]:
    return set(postorder(func))


def remove_unreachable_blocks(func: Function) -> list[str]:
    """Delete blocks no path from the entry reaches.

    Returns the removed labels.  Phi nodes in surviving blocks are pruned of
    incoming edges from removed blocks.
    """
    live = reachable_labels(func)
    dead = [label for label in func.blocks if label not in live]
    for label in dead:
        del func.blocks[label]
    if dead:
        dead_set = set(dead)
        for block in func.blocks.values():
            for phi in block.phis():
                for gone in dead_set & set(phi.incoming):
                    del phi.incoming[gone]
    return dead


def split_critical_edges(func: Function) -> int:
    """Split every edge whose source has multiple successors and whose
    target has multiple predecessors.  Returns the number of edges split.
    """
    preds = predecessors(func)
    count = 0
    for src_label in list(func.blocks):
        src = func.blocks[src_label]
        succs = src.successors()
        if len(succs) < 2:
            continue
        for dst_label in succs:
            if len(preds[dst_label]) < 2:
                continue
            func.split_edge(src_label, dst_label, hint="CE")
            count += 1
            preds = predecessors(func)
    return count


def ensure_single_exit_return(func: Function) -> None:
    """Nothing in the pipeline requires a unique return block, but the
    verifier and several analyses are simpler when at least one exists;
    this is a no-op placeholder kept for API symmetry."""


def block_order_index(func: Function) -> dict[str, int]:
    """Stable integer index of each block in layout order."""
    return {label: i for i, label in enumerate(func.blocks)}


def edge_list(func: Function) -> list[tuple[str, str]]:
    edges: list[tuple[str, str]] = []
    for label, block in func.blocks.items():
        for succ in block.successors():
            edges.append((label, succ))
    return edges


def blocks_in_labels(func: Function, labels: Iterable[str]) -> list[BasicBlock]:
    return [func.block(label) for label in labels]

"""Parser for the textual IL form emitted by :mod:`repro.ir.printer`.

Round-tripping (`parse_module(format_module(m))`) is supported for every
construct the printer emits, which makes the textual form usable for
golden tests and for writing IL test inputs by hand::

    func main() {
    B0: ; entry
        %r0 = loadi 1
        %g1 = sload [g]
        %r2 = add %r0, %g1
        sstore %r2 -> [g]
        ret %r2
    }

Tags referenced in instructions are resolved against the module's
declared globals/strings/locals; unknown names become GLOBAL scalar tags
(convenient for hand-written snippets).
"""

from __future__ import annotations

import re

from ..errors import IRError
from .function import Function
from .instructions import (
    BinOp,
    Branch,
    Call,
    CLoad,
    Jump,
    LoadAddr,
    LoadI,
    MemLoad,
    MemStore,
    Mov,
    Nop,
    Phi,
    Ret,
    ScalarLoad,
    ScalarStore,
    UnOp,
    VReg,
)
from .module import GlobalVar, Module
from .opcodes import BINARY_OPS, Opcode, UNARY_OPS
from .tags import Tag, TagKind, TagSet

_REG_RE = re.compile(r"%([A-Za-z_][A-Za-z_0-9]*?)?(\d+)$")
_LABEL_LINE_RE = re.compile(r"^([A-Za-z_][\w.]*):(?:\s*;.*)?$")
_GLOBAL_RE = re.compile(
    r"^global (const )?([\w.]+) size=(\d+)(?: init=(\{.*\}))?$"
)
_STRING_RE = re.compile(r"^string (@\w+) = (.+)$")
_FUNC_RE = re.compile(r"^func ([\w.]+)\((.*)\) \{$")
_CALL_RE = re.compile(
    r"^(?:(%\S+) = )?call ([\w.*%]+)\((.*?)\) mod=(\[.*?\]) ref=(\[.*?\])$"
)

_BINARY_BY_NAME = {op.value: op for op in BINARY_OPS}
_UNARY_BY_NAME = {op.value: op for op in UNARY_OPS}


class _TagEnv:
    """Resolves tag names against module-declared tags."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.known: dict[str, Tag] = {}
        self._index_module()

    def _index_module(self) -> None:
        for tag in self.module.memory_tags():
            self.known[tag.name] = tag
        for lit in self.module.strings.values():
            self.known[lit.tag.name] = lit.tag

    def add(self, tag: Tag) -> None:
        self.known[tag.name] = tag

    def resolve(self, name: str) -> Tag:
        tag = self.known.get(name)
        if tag is None:
            tag = Tag(name, TagKind.GLOBAL)
            self.known[name] = tag
        return tag

    def tag_set(self, text: str) -> TagSet:
        text = text.strip()
        if not (text.startswith("[") and text.endswith("]")):
            raise IRError(f"bad tag set syntax: {text!r}")
        inner = text[1:-1].strip()
        if inner == "*":
            return TagSet.universe()
        if not inner:
            return TagSet.empty()
        return TagSet.from_iterable(
            self.resolve(name) for name in inner.split()
        )


def _parse_reg(text: str) -> VReg:
    match = _REG_RE.match(text.strip().rstrip(","))
    if not match:
        raise IRError(f"bad register syntax: {text!r}")
    hint, num = match.groups()
    hint = hint or ""
    if hint == "r":
        hint = ""
    return VReg(int(num), hint)


def _parse_value(text: str):
    import ast

    value = ast.literal_eval(text)
    if not isinstance(value, (int, float)):
        raise IRError(f"bad immediate {text!r}")
    return value


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse the printer's textual form back into a module."""
    module = Module(name)
    env = _TagEnv(module)
    lines = [line.rstrip() for line in text.splitlines()]
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if line.startswith("; module "):
            module.name = line[len("; module "):].strip()
            continue
        if not line or line.startswith(";"):
            continue
        m = _GLOBAL_RE.match(line)
        if m:
            const, gname, size, init_text = m.groups()
            tag = Tag(gname, TagKind.GLOBAL, is_scalar=int(size) <= 8)
            var = GlobalVar(
                tag=tag,
                size=int(size),
                elem_size=min(int(size), 8),
                is_const=bool(const),
            )
            if init_text:
                import ast

                var.init = dict(ast.literal_eval(init_text))
            module.add_global(var)
            env.add(tag)
            continue
        m = _STRING_RE.match(line)
        if m:
            import ast

            lit = module.add_string(ast.literal_eval(m.group(2)))
            env.add(lit.tag)
            continue
        m = _FUNC_RE.match(line)
        if m:
            i = _parse_function(module, env, m, lines, i)
            continue
        raise IRError(f"unparsable module line: {line!r}")
    return module


def _parse_function(module, env, header_match, lines, i) -> int:
    fname, params_text = header_match.groups()
    params = [
        _parse_reg(p) for p in params_text.split(",") if p.strip()
    ]
    func = Function(fname, params=params)
    module.add_function(func)

    current = None
    while i < len(lines):
        raw = lines[i]
        line = raw.strip()
        i += 1
        if line == "}":
            func.reserve_vreg_ids(func.max_vreg_id())
            return i
        if not line:
            continue
        if line.startswith("; local tags:"):
            for tag_name in line.split(":", 1)[1].split():
                tag = Tag(
                    tag_name, TagKind.LOCAL,
                    owner=fname if tag_name.startswith(f"{fname}.") else "",
                )
                func.local_tags.append(tag)
                func.local_tag_sizes.setdefault(tag.name, 8)
                env.add(tag)
            continue
        m = _LABEL_LINE_RE.match(line)
        if m and not raw.startswith("    "):
            label = m.group(1)
            current = func.new_block(label=label)
            if "; entry" in line:
                func.entry = label
            continue
        if current is None:
            raise IRError(f"instruction before any label: {line!r}")
        current.append(_parse_instr(line, env))
    raise IRError(f"unterminated function {fname}")


def _parse_instr(line: str, env: _TagEnv):
    # comments after instructions
    m = _CALL_RE.match(line)
    if m:
        dst_text, callee, args_text, mod_text, ref_text = m.groups()
        dst = _parse_reg(dst_text) if dst_text else None
        callee_reg = None
        callee_name: str | None = callee
        if callee.startswith("*"):
            callee_name = None
            callee_reg = _parse_reg(callee[1:])
        args = [
            _parse_reg(a) for a in args_text.split(",") if a.strip()
        ]
        return Call(
            dst,
            callee_name,
            args,
            mod=env.tag_set(mod_text),
            ref=env.tag_set(ref_text),
            callee_reg=callee_reg,
        )

    if line == "nop":
        return Nop()
    if line == "ret":
        return Ret()
    if line.startswith("ret "):
        return Ret(_parse_reg(line[4:]))
    if line.startswith("jmp "):
        return Jump(line[4:].strip())
    if line.startswith("cbr "):
        m = re.match(r"^cbr (\S+) \? (\S+) : (\S+)$", line)
        if not m:
            raise IRError(f"bad cbr: {line!r}")
        return Branch(_parse_reg(m.group(1)), m.group(2), m.group(3))
    if line.startswith("sstore "):
        m = re.match(r"^sstore (\S+) -> \[([\w.@]+)\]$", line)
        if not m:
            raise IRError(f"bad sstore: {line!r}")
        return ScalarStore(_parse_reg(m.group(1)), env.resolve(m.group(2)))
    if line.startswith("store "):
        m = re.match(r"^store (\S+) -> \[(\S+)\] (\[.*\])$", line)
        if not m:
            raise IRError(f"bad store: {line!r}")
        return MemStore(
            _parse_reg(m.group(1)),
            _parse_reg(m.group(2)),
            env.tag_set(m.group(3)),
        )

    m = re.match(r"^(\S+) = (.+)$", line)
    if not m:
        raise IRError(f"unparsable instruction: {line!r}")
    dst = _parse_reg(m.group(1))
    rhs = m.group(2).strip()

    if rhs.startswith("loadi "):
        return LoadI(dst, _parse_value(rhs[6:]))
    if rhs.startswith("mov "):
        return Mov(dst, _parse_reg(rhs[4:]))
    if rhs.startswith("la "):
        m2 = re.match(r"^la ([\w.@]+)(?: \+ (-?\d+))?$", rhs)
        if not m2:
            raise IRError(f"bad la: {rhs!r}")
        offset = int(m2.group(2)) if m2.group(2) else 0
        return LoadAddr(dst, env.resolve(m2.group(1)), offset)
    if rhs.startswith("sload "):
        m2 = re.match(r"^sload \[([\w.@]+)\]$", rhs)
        if not m2:
            raise IRError(f"bad sload: {rhs!r}")
        return ScalarLoad(dst, env.resolve(m2.group(1)))
    if rhs.startswith("cload "):
        m2 = re.match(r"^cload \[([\w.@]+)\]$", rhs)
        if not m2:
            raise IRError(f"bad cload: {rhs!r}")
        return CLoad(dst, env.resolve(m2.group(1)))
    if rhs.startswith("load "):
        m2 = re.match(r"^load \[(\S+)\] (\[.*\])$", rhs)
        if not m2:
            raise IRError(f"bad load: {rhs!r}")
        return MemLoad(dst, _parse_reg(m2.group(1)), env.tag_set(m2.group(2)))
    if rhs.startswith("phi "):
        m2 = re.match(r"^phi \[(.*)\]$", rhs)
        if not m2:
            raise IRError(f"bad phi: {rhs!r}")
        incoming = {}
        body = m2.group(1).strip()
        if body:
            for piece in body.split(","):
                label, reg = piece.split(":")
                incoming[label.strip()] = _parse_reg(reg)
        return Phi(dst, incoming)

    parts = rhs.split(None, 1)
    opname = parts[0]
    if opname in _BINARY_BY_NAME:
        operands = [p.strip() for p in parts[1].split(",")]
        if len(operands) != 2:
            raise IRError(f"bad binary operands: {rhs!r}")
        return BinOp(
            _BINARY_BY_NAME[opname],
            dst,
            _parse_reg(operands[0]),
            _parse_reg(operands[1]),
        )
    if opname in _UNARY_BY_NAME:
        return UnOp(_UNARY_BY_NAME[opname], dst, _parse_reg(parts[1]))
    raise IRError(f"unknown instruction: {line!r}")

"""Human-readable printing of IL modules and functions.

The textual form is for debugging, documentation, and golden tests; it is
not parsed back.
"""

from __future__ import annotations

from .function import Function
from .module import Module


def format_function(func: Function) -> str:
    lines: list[str] = []
    params = ", ".join(str(p) for p in func.params)
    lines.append(f"func {func.name}({params}) {{")
    if func.local_tags:
        names = " ".join(t.name for t in func.local_tags)
        lines.append(f"  ; local tags: {names}")
    for label, block in func.blocks.items():
        marker = " ; entry" if label == func.entry else ""
        lines.append(f"{label}:{marker}")
        for instr in block.instrs:
            lines.append(f"    {instr}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    lines: list[str] = []
    lines.append(f"; module {module.name}")
    for var in module.globals.values():
        const = "const " if var.is_const else ""
        init = f" init={var.init}" if var.init else ""
        lines.append(f"global {const}{var.name} size={var.size}{init}")
    for lit in module.strings.values():
        lines.append(f"string {lit.tag.name} = {lit.text!r}")
    for func in module.functions.values():
        lines.append("")
        lines.append(format_function(func))
    return "\n".join(lines) + "\n"


def dump(obj: Module | Function) -> None:  # pragma: no cover - debug aid
    """Print a module or function to stdout."""
    if isinstance(obj, Module):
        print(format_module(obj))
    else:
        print(format_function(obj))

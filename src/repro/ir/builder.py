"""A convenience builder for constructing IL by hand.

The front end and the tests both need to emit instruction streams; the
builder tracks the current insertion block, allocates registers, and offers
one short method per opcode.  Example::

    b = IRBuilder(func)
    b.set_block(func.new_block("entry"))
    one = b.loadi(1)
    count = b.sload(count_tag)
    total = b.add(count, one)
    b.sstore(total, count_tag)
    b.ret()
"""

from __future__ import annotations

from typing import Sequence

from ..errors import IRError
from .function import BasicBlock, Function
from .instructions import (
    BinOp,
    Branch,
    Call,
    CLoad,
    Instr,
    Jump,
    LoadAddr,
    LoadI,
    MemLoad,
    MemStore,
    Mov,
    Ret,
    ScalarLoad,
    ScalarStore,
    UnOp,
    VReg,
)
from .opcodes import Opcode
from .tags import Tag, TagSet


class IRBuilder:
    """Stateful instruction emitter for one function."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self._block: BasicBlock | None = None

    # -- block management ------------------------------------------------
    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise IRError("no insertion block selected")
        return self._block

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self._block = block
        return block

    def new_block(self, hint: str = "B") -> BasicBlock:
        return self.func.new_block(hint)

    def start_block(self, hint: str = "B") -> BasicBlock:
        """Create a new block and make it the insertion point."""
        return self.set_block(self.new_block(hint))

    def is_terminated(self) -> bool:
        return self._block is not None and self._block.is_terminated()

    # -- emission ------------------------------------------------------------
    def emit(self, instr: Instr) -> Instr:
        self.block.append(instr)
        return instr

    def reg(self, hint: str = "") -> VReg:
        return self.func.new_vreg(hint)

    # -- data movement --------------------------------------------------------
    def loadi(self, value: int | float, hint: str = "") -> VReg:
        dst = self.reg(hint)
        self.emit(LoadI(dst, value))
        return dst

    def mov(self, src: VReg, dst: VReg | None = None, hint: str = "") -> VReg:
        if dst is None:
            dst = self.reg(hint)
        self.emit(Mov(dst, src))
        return dst

    def la(self, tag: Tag, offset: int = 0, hint: str = "") -> VReg:
        dst = self.reg(hint or "addr")
        self.emit(LoadAddr(dst, tag, offset))
        return dst

    # -- arithmetic ------------------------------------------------------------
    def binop(self, op: Opcode, lhs: VReg, rhs: VReg, hint: str = "") -> VReg:
        dst = self.reg(hint)
        self.emit(BinOp(op, dst, lhs, rhs))
        return dst

    def add(self, a: VReg, b: VReg, hint: str = "") -> VReg:
        return self.binop(Opcode.ADD, a, b, hint)

    def sub(self, a: VReg, b: VReg, hint: str = "") -> VReg:
        return self.binop(Opcode.SUB, a, b, hint)

    def mul(self, a: VReg, b: VReg, hint: str = "") -> VReg:
        return self.binop(Opcode.MUL, a, b, hint)

    def div(self, a: VReg, b: VReg, hint: str = "") -> VReg:
        return self.binop(Opcode.DIV, a, b, hint)

    def unop(self, op: Opcode, src: VReg, hint: str = "") -> VReg:
        dst = self.reg(hint)
        self.emit(UnOp(op, dst, src))
        return dst

    # -- memory -------------------------------------------------------------
    def cload(self, tag: Tag, hint: str = "") -> VReg:
        dst = self.reg(hint)
        self.emit(CLoad(dst, tag))
        return dst

    def sload(self, tag: Tag, hint: str = "") -> VReg:
        dst = self.reg(hint or tag.name.replace(".", "_"))
        self.emit(ScalarLoad(dst, tag))
        return dst

    def sstore(self, src: VReg, tag: Tag) -> None:
        self.emit(ScalarStore(src, tag))

    def load(self, addr: VReg, tags: TagSet, hint: str = "") -> VReg:
        dst = self.reg(hint)
        self.emit(MemLoad(dst, addr, tags))
        return dst

    def store(self, src: VReg, addr: VReg, tags: TagSet) -> None:
        self.emit(MemStore(src, addr, tags))

    # -- control flow ------------------------------------------------------
    def jmp(self, target: str | BasicBlock) -> None:
        label = target.label if isinstance(target, BasicBlock) else target
        self.emit(Jump(label))

    def cbr(
        self,
        cond: VReg,
        if_true: str | BasicBlock,
        if_false: str | BasicBlock,
    ) -> None:
        t = if_true.label if isinstance(if_true, BasicBlock) else if_true
        f = if_false.label if isinstance(if_false, BasicBlock) else if_false
        self.emit(Branch(cond, t, f))

    def ret(self, value: VReg | None = None) -> None:
        self.emit(Ret(value))

    def call(
        self,
        callee: str,
        args: Sequence[VReg] = (),
        returns: bool = False,
        mod: TagSet | None = None,
        ref: TagSet | None = None,
        site_id: int = -1,
    ) -> VReg | None:
        dst = self.reg("ret") if returns else None
        self.emit(Call(dst, callee, args, mod, ref, site_id=site_id))
        return dst

"""Instruction classes for the tagged IL.

Each instruction is a small mutable object.  Passes rewrite instructions in
place (e.g. :meth:`Instr.replace_uses`) or splice new instruction lists into
basic blocks.  The API every pass relies on:

* :attr:`Instr.opcode` — the :class:`~repro.ir.opcodes.Opcode`.
* :meth:`Instr.uses` — registers read by the instruction.
* :attr:`Instr.dest` — the register written, or ``None``.
* :meth:`Instr.tag_set` — the memory locations possibly referenced
  (empty for non-memory instructions; calls expose MOD/REF separately).

Virtual registers (:class:`VReg`) are identified by integer id within a
function and carry an optional name hint used only for printing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .opcodes import BINARY_OPS, COMPARISON_OPS, UNARY_OPS, Opcode
from .tags import Tag, TagSet


@dataclass(frozen=True)
class VReg:
    """A virtual register.

    Identity is the integer ``id`` alone — two ``VReg`` objects with the
    same id are the same register regardless of ``hint``, which is only a
    printable suggestion (e.g. the source variable the register came
    from).  Passes that rewrite registers (coalescing, SSA renaming) rely
    on this.
    """

    id: int
    hint: str = field(default="", compare=False)

    def __str__(self) -> str:
        return f"%{self.hint}{self.id}" if self.hint else f"%r{self.id}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return str(self)


class Instr:
    """Base class for all IL instructions."""

    __slots__ = ()

    opcode: Opcode

    # -- generic pass API --------------------------------------------------
    def uses(self) -> tuple[VReg, ...]:
        """Registers read by this instruction."""
        return ()

    @property
    def dest(self) -> VReg | None:
        """The register written, or ``None``."""
        return None

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        """Rewrite every used register ``r`` to ``mapping.get(r, r)``."""

    def tag_set(self) -> TagSet:
        """Memory locations this instruction may reference directly.

        Calls return the union of their MOD and REF summaries.
        """
        return TagSet.empty()

    def is_terminator(self) -> bool:
        return False

    def copy(self) -> "Instr":
        """A shallow structural copy (tag sets are immutable and shared)."""
        raise NotImplementedError

    # -- printing -----------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self}>"


def _subst(mapping: Mapping[VReg, VReg], reg: VReg) -> VReg:
    return mapping.get(reg, reg)


class BinOp(Instr):
    """``dst = op lhs, rhs`` for every binary arithmetic/comparison op."""

    __slots__ = ("opcode", "dst", "lhs", "rhs")

    def __init__(self, opcode: Opcode, dst: VReg, lhs: VReg, rhs: VReg) -> None:
        if opcode not in BINARY_OPS:
            raise ValueError(f"{opcode} is not a binary opcode")
        self.opcode = opcode
        self.dst = dst
        self.lhs = lhs
        self.rhs = rhs

    def uses(self) -> tuple[VReg, ...]:
        return (self.lhs, self.rhs)

    @property
    def dest(self) -> VReg:
        return self.dst

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        self.lhs = _subst(mapping, self.lhs)
        self.rhs = _subst(mapping, self.rhs)

    def is_comparison(self) -> bool:
        return self.opcode in COMPARISON_OPS

    def copy(self) -> "BinOp":
        return BinOp(self.opcode, self.dst, self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"{self.dst} = {self.opcode} {self.lhs}, {self.rhs}"


class UnOp(Instr):
    """``dst = op src`` for neg/not/lnot/i2f/f2i."""

    __slots__ = ("opcode", "dst", "src")

    def __init__(self, opcode: Opcode, dst: VReg, src: VReg) -> None:
        if opcode not in UNARY_OPS:
            raise ValueError(f"{opcode} is not a unary opcode")
        self.opcode = opcode
        self.dst = dst
        self.src = src

    def uses(self) -> tuple[VReg, ...]:
        return (self.src,)

    @property
    def dest(self) -> VReg:
        return self.dst

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        self.src = _subst(mapping, self.src)

    def copy(self) -> "UnOp":
        return UnOp(self.opcode, self.dst, self.src)

    def __str__(self) -> str:
        return f"{self.dst} = {self.opcode} {self.src}"


class LoadI(Instr):
    """``dst = loadi value`` — an immediate (the paper's iLoad)."""

    __slots__ = ("dst", "value")
    opcode = Opcode.LOADI

    def __init__(self, dst: VReg, value: int | float) -> None:
        self.dst = dst
        self.value = value

    @property
    def dest(self) -> VReg:
        return self.dst

    def copy(self) -> "LoadI":
        return LoadI(self.dst, self.value)

    def __str__(self) -> str:
        return f"{self.dst} = loadi {self.value!r}"


class Mov(Instr):
    """``dst = mov src`` — a register copy (the paper's CP).

    Promotion rewrites memory operations into copies; the register
    allocator's coalescing phase removes most of them.
    """

    __slots__ = ("dst", "src")
    opcode = Opcode.MOV

    def __init__(self, dst: VReg, src: VReg) -> None:
        self.dst = dst
        self.src = src

    def uses(self) -> tuple[VReg, ...]:
        return (self.src,)

    @property
    def dest(self) -> VReg:
        return self.dst

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        self.src = _subst(mapping, self.src)

    def copy(self) -> "Mov":
        return Mov(self.dst, self.src)

    def __str__(self) -> str:
        return f"{self.dst} = mov {self.src}"


class LoadAddr(Instr):
    """``dst = la tag + offset`` — the run-time address of a tagged location.

    Taking an address does not by itself reference memory, so
    :meth:`tag_set` is empty; the tag is exposed via :attr:`tag` for the
    points-to analyzer, which uses it as an address-of constraint.
    """

    __slots__ = ("dst", "tag", "offset")
    opcode = Opcode.LA

    def __init__(self, dst: VReg, tag: Tag, offset: int = 0) -> None:
        self.dst = dst
        self.tag = tag
        self.offset = offset

    @property
    def dest(self) -> VReg:
        return self.dst

    def copy(self) -> "LoadAddr":
        return LoadAddr(self.dst, self.tag, self.offset)

    def __str__(self) -> str:
        if self.offset:
            return f"{self.dst} = la {self.tag} + {self.offset}"
        return f"{self.dst} = la {self.tag}"


class CLoad(Instr):
    """``dst = cload [tag]`` — load of an invariant-but-unknown value."""

    __slots__ = ("dst", "tag")
    opcode = Opcode.CLOAD

    def __init__(self, dst: VReg, tag: Tag) -> None:
        self.dst = dst
        self.tag = tag

    @property
    def dest(self) -> VReg:
        return self.dst

    def tag_set(self) -> TagSet:
        return TagSet.of(self.tag)

    def copy(self) -> "CLoad":
        return CLoad(self.dst, self.tag)

    def __str__(self) -> str:
        return f"{self.dst} = cload [{self.tag}]"


class ScalarLoad(Instr):
    """``dst = sload [tag]`` — explicit load of a named scalar."""

    __slots__ = ("dst", "tag")
    opcode = Opcode.SLOAD

    def __init__(self, dst: VReg, tag: Tag) -> None:
        self.dst = dst
        self.tag = tag

    @property
    def dest(self) -> VReg:
        return self.dst

    def tag_set(self) -> TagSet:
        return TagSet.of(self.tag)

    def copy(self) -> "ScalarLoad":
        return ScalarLoad(self.dst, self.tag)

    def __str__(self) -> str:
        return f"{self.dst} = sload [{self.tag}]"


class ScalarStore(Instr):
    """``sstore src -> [tag]`` — explicit store to a named scalar."""

    __slots__ = ("src", "tag")
    opcode = Opcode.SSTORE

    def __init__(self, src: VReg, tag: Tag) -> None:
        self.src = src
        self.tag = tag

    def uses(self) -> tuple[VReg, ...]:
        return (self.src,)

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        self.src = _subst(mapping, self.src)

    def tag_set(self) -> TagSet:
        return TagSet.of(self.tag)

    def copy(self) -> "ScalarStore":
        return ScalarStore(self.src, self.tag)

    def __str__(self) -> str:
        return f"sstore {self.src} -> [{self.tag}]"


class MemLoad(Instr):
    """``dst = load [addr] tags`` — pointer-based load.

    ``tags`` is the set of locations the address register may point at;
    the front end emits the universal set and analysis shrinks it.
    """

    __slots__ = ("dst", "addr", "tags")
    opcode = Opcode.LOAD

    def __init__(self, dst: VReg, addr: VReg, tags: TagSet) -> None:
        self.dst = dst
        self.addr = addr
        self.tags = tags

    def uses(self) -> tuple[VReg, ...]:
        return (self.addr,)

    @property
    def dest(self) -> VReg:
        return self.dst

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        self.addr = _subst(mapping, self.addr)

    def tag_set(self) -> TagSet:
        return self.tags

    def copy(self) -> "MemLoad":
        return MemLoad(self.dst, self.addr, self.tags)

    def __str__(self) -> str:
        return f"{self.dst} = load [{self.addr}] {self.tags}"


class MemStore(Instr):
    """``store src -> [addr] tags`` — pointer-based store."""

    __slots__ = ("src", "addr", "tags")
    opcode = Opcode.STORE

    def __init__(self, src: VReg, addr: VReg, tags: TagSet) -> None:
        self.src = src
        self.addr = addr
        self.tags = tags

    def uses(self) -> tuple[VReg, ...]:
        return (self.src, self.addr)

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        self.src = _subst(mapping, self.src)
        self.addr = _subst(mapping, self.addr)

    def tag_set(self) -> TagSet:
        return self.tags

    def copy(self) -> "MemStore":
        return MemStore(self.src, self.addr, self.tags)

    def __str__(self) -> str:
        return f"store {self.src} -> [{self.addr}] {self.tags}"


class Jump(Instr):
    """``jmp label`` — unconditional branch."""

    __slots__ = ("target",)
    opcode = Opcode.JMP

    def __init__(self, target: str) -> None:
        self.target = target

    def is_terminator(self) -> bool:
        return True

    def copy(self) -> "Jump":
        return Jump(self.target)

    def __str__(self) -> str:
        return f"jmp {self.target}"


class Branch(Instr):
    """``cbr cond ? if_true : if_false`` — two-way conditional branch."""

    __slots__ = ("cond", "if_true", "if_false")
    opcode = Opcode.CBR

    def __init__(self, cond: VReg, if_true: str, if_false: str) -> None:
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    def uses(self) -> tuple[VReg, ...]:
        return (self.cond,)

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        self.cond = _subst(mapping, self.cond)

    def is_terminator(self) -> bool:
        return True

    def copy(self) -> "Branch":
        return Branch(self.cond, self.if_true, self.if_false)

    def __str__(self) -> str:
        return f"cbr {self.cond} ? {self.if_true} : {self.if_false}"


class Ret(Instr):
    """``ret [value]`` — return from the enclosing function."""

    __slots__ = ("value",)
    opcode = Opcode.RET

    def __init__(self, value: VReg | None = None) -> None:
        self.value = value

    def uses(self) -> tuple[VReg, ...]:
        return (self.value,) if self.value is not None else ()

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        if self.value is not None:
            self.value = _subst(mapping, self.value)

    def is_terminator(self) -> bool:
        return True

    def copy(self) -> "Ret":
        return Ret(self.value)

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


class Call(Instr):
    """``dst = call f(args) mod=... ref=...`` — the paper's JSR.

    ``callee`` is the static target name; indirect calls leave it ``None``
    and pass the function address in ``callee_reg``.  ``mod`` and ``ref``
    are the call's interprocedural side-effect summaries: the tags the call
    may modify and may reference.  The front end initializes both to the
    universal set; MOD/REF analysis replaces them with precise sets.

    ``site_id`` uniquely names the call site within the module; the
    points-to analyzer uses it to name heap memory allocated here.
    """

    __slots__ = ("dst", "callee", "callee_reg", "args", "mod", "ref", "site_id")
    opcode = Opcode.CALL

    def __init__(
        self,
        dst: VReg | None,
        callee: str | None,
        args: Sequence[VReg],
        mod: TagSet | None = None,
        ref: TagSet | None = None,
        callee_reg: VReg | None = None,
        site_id: int = -1,
    ) -> None:
        if callee is None and callee_reg is None:
            raise ValueError("call needs a static callee or a callee register")
        self.dst = dst
        self.callee = callee
        self.callee_reg = callee_reg
        self.args = tuple(args)
        self.mod = mod if mod is not None else TagSet.universe()
        self.ref = ref if ref is not None else TagSet.universe()
        self.site_id = site_id

    def uses(self) -> tuple[VReg, ...]:
        if self.callee_reg is not None:
            return (self.callee_reg, *self.args)
        return self.args

    @property
    def dest(self) -> VReg | None:
        return self.dst

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        self.args = tuple(_subst(mapping, a) for a in self.args)
        if self.callee_reg is not None:
            self.callee_reg = _subst(mapping, self.callee_reg)

    def tag_set(self) -> TagSet:
        return self.mod.union(self.ref)

    def is_indirect(self) -> bool:
        return self.callee is None

    def copy(self) -> "Call":
        return Call(self.dst, self.callee, self.args, self.mod, self.ref,
                    self.callee_reg, self.site_id)

    def __str__(self) -> str:
        target = self.callee if self.callee is not None else f"*{self.callee_reg}"
        arglist = ", ".join(str(a) for a in self.args)
        head = f"{self.dst} = " if self.dst is not None else ""
        return f"{head}call {target}({arglist}) mod={self.mod} ref={self.ref}"


class Phi(Instr):
    """SSA phi node: ``dst = phi [pred1: r1, pred2: r2, ...]``.

    Only present while a function is in SSA form (points-to analysis and
    SCCP); SSA destruction lowers phis back to copies.
    """

    __slots__ = ("dst", "incoming")
    opcode = Opcode.PHI

    def __init__(self, dst: VReg, incoming: dict[str, VReg]) -> None:
        self.dst = dst
        self.incoming = dict(incoming)

    def uses(self) -> tuple[VReg, ...]:
        return tuple(self.incoming.values())

    @property
    def dest(self) -> VReg:
        return self.dst

    def replace_uses(self, mapping: Mapping[VReg, VReg]) -> None:
        self.incoming = {
            label: _subst(mapping, reg) for label, reg in self.incoming.items()
        }

    def copy(self) -> "Phi":
        return Phi(self.dst, dict(self.incoming))

    def __str__(self) -> str:
        parts = ", ".join(f"{lbl}: {reg}" for lbl, reg in sorted(self.incoming.items()))
        return f"{self.dst} = phi [{parts}]"


class Nop(Instr):
    """A placeholder that executes nothing and is removed by cleaning."""

    __slots__ = ()
    opcode = Opcode.NOP

    def copy(self) -> "Nop":
        return Nop()

    def __str__(self) -> str:
        return "nop"


def is_memory_load(instr: Instr) -> bool:
    """True for cload/sload/load — the operations the paper counts as loads."""
    return isinstance(instr, (CLoad, ScalarLoad, MemLoad))


def is_memory_store(instr: Instr) -> bool:
    """True for sstore/store — the operations the paper counts as stores."""
    return isinstance(instr, (ScalarStore, MemStore))


def is_memory_op(instr: Instr) -> bool:
    return is_memory_load(instr) or is_memory_store(instr)


def branch_targets(instr: Instr) -> tuple[str, ...]:
    """The labels a terminator may transfer control to."""
    if isinstance(instr, Jump):
        return (instr.target,)
    if isinstance(instr, Branch):
        if instr.if_true == instr.if_false:
            return (instr.if_true,)
        return (instr.if_true, instr.if_false)
    return ()


def retarget(instr: Instr, old: str, new: str) -> None:
    """Rewrite a terminator's edges from ``old`` to ``new`` in place."""
    if isinstance(instr, Jump):
        if instr.target == old:
            instr.target = new
    elif isinstance(instr, Branch):
        if instr.if_true == old:
            instr.if_true = new
        if instr.if_false == old:
            instr.if_false = new


def copy_instructions(instrs: Iterable[Instr]) -> list[Instr]:
    """Structural copies of a sequence of instructions."""
    return [i.copy() for i in instrs]

"""Basic blocks and functions.

A :class:`Function` owns an ordered mapping from label to
:class:`BasicBlock`.  Successor edges are implied by each block's
terminator; predecessor maps are computed on demand by
:func:`repro.ir.cfg.predecessors` so passes never have to keep them in sync
while rewriting.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import IRError
from .instructions import (
    Branch,
    Instr,
    Jump,
    Phi,
    Ret,
    VReg,
    branch_targets,
)
from .tags import Tag


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator.

    Blocks under construction may temporarily lack a terminator; the
    verifier rejects such functions, and the builder seals blocks as it
    goes.
    """

    __slots__ = ("label", "instrs")

    def __init__(self, label: str, instrs: Iterable[Instr] | None = None) -> None:
        self.label = label
        self.instrs: list[Instr] = list(instrs) if instrs is not None else []

    # -- terminators and edges ---------------------------------------------
    @property
    def terminator(self) -> Instr | None:
        if self.instrs and self.instrs[-1].is_terminator():
            return self.instrs[-1]
        return None

    def successors(self) -> tuple[str, ...]:
        term = self.terminator
        if term is None:
            return ()
        return branch_targets(term)

    def is_terminated(self) -> bool:
        return self.terminator is not None

    # -- convenience -------------------------------------------------------
    def append(self, instr: Instr) -> None:
        if self.is_terminated():
            raise IRError(f"appending to terminated block {self.label}")
        self.instrs.append(instr)

    def phis(self) -> list[Phi]:
        """The phi nodes at the head of the block (SSA form only)."""
        result: list[Phi] = []
        for instr in self.instrs:
            if isinstance(instr, Phi):
                result.append(instr)
            else:
                break
        return result

    def first_non_phi_index(self) -> int:
        for idx, instr in enumerate(self.instrs):
            if not isinstance(instr, Phi):
                return idx
        return len(self.instrs)

    def body(self) -> list[Instr]:
        """Instructions excluding the terminator."""
        if self.is_terminated():
            return self.instrs[:-1]
        return list(self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BasicBlock {self.label}: {len(self.instrs)} instrs>"


class Function:
    """A single procedure in tagged IL form.

    Attributes
    ----------
    name:
        The linkage name.
    params:
        Virtual registers that receive argument values on entry, in
        declaration order.
    entry:
        Label of the entry block.
    blocks:
        Ordered ``label -> BasicBlock`` mapping.  Iteration order is the
        order blocks were created; passes that need a specific order
        (reverse postorder, dominance order) compute it themselves.
    local_tags:
        Tags for this function's address-taken locals and aggregates.
    """

    def __init__(self, name: str, params: Iterable[VReg] = ()) -> None:
        self.name = name
        self.params: tuple[VReg, ...] = tuple(params)
        self.entry: str = ""
        self.blocks: dict[str, BasicBlock] = {}
        self.local_tags: list[Tag] = []
        #: byte size of each local tag's storage (defaults to one word)
        self.local_tag_sizes: dict[str, int] = {}
        self._next_vreg = max((p.id for p in self.params), default=-1) + 1
        self._next_label = 0

    # -- registers and labels ------------------------------------------------
    def new_vreg(self, hint: str = "") -> VReg:
        reg = VReg(self._next_vreg, hint)
        self._next_vreg += 1
        return reg

    def reserve_vreg_ids(self, upto: int) -> None:
        """Make sure freshly created registers have ids above ``upto``."""
        self._next_vreg = max(self._next_vreg, upto + 1)

    def new_label(self, hint: str = "B") -> str:
        while True:
            label = f"{hint}{self._next_label}"
            self._next_label += 1
            if label not in self.blocks:
                return label

    # -- blocks ----------------------------------------------------------------
    def new_block(self, hint: str = "B", label: str | None = None) -> BasicBlock:
        if label is None:
            label = self.new_label(hint)
        if label in self.blocks:
            raise IRError(f"duplicate block label {label} in {self.name}")
        block = BasicBlock(label)
        self.blocks[label] = block
        if not self.entry:
            self.entry = label
        return block

    def block(self, label: str) -> BasicBlock:
        try:
            return self.blocks[label]
        except KeyError:
            raise IRError(f"no block {label} in function {self.name}") from None

    def entry_block(self) -> BasicBlock:
        return self.block(self.entry)

    def remove_block(self, label: str) -> None:
        if label == self.entry:
            raise IRError(f"cannot remove entry block {label}")
        del self.blocks[label]

    # -- traversal ----------------------------------------------------------
    def instructions(self) -> Iterator[Instr]:
        """Every instruction in the function, block by block."""
        for block in self.blocks.values():
            yield from block.instrs

    def max_vreg_id(self) -> int:
        highest = max((p.id for p in self.params), default=-1)
        for instr in self.instructions():
            if instr.dest is not None:
                highest = max(highest, instr.dest.id)
            for reg in instr.uses():
                highest = max(highest, reg.id)
        return highest

    def returns_value(self) -> bool:
        return any(
            isinstance(i, Ret) and i.value is not None for i in self.instructions()
        )

    # -- edge surgery ----------------------------------------------------------
    def split_edge(self, src_label: str, dst_label: str, hint: str = "E") -> BasicBlock:
        """Insert a fresh block on the CFG edge ``src -> dst``.

        The new block ends with ``jmp dst``; the source's terminator is
        retargeted.  Phi nodes in ``dst`` are updated to route the value
        that arrived from ``src`` through the new block.
        """
        src = self.block(src_label)
        dst = self.block(dst_label)
        term = src.terminator
        if term is None or dst_label not in branch_targets(term):
            raise IRError(f"no edge {src_label} -> {dst_label} in {self.name}")
        mid = self.new_block(hint)
        mid.append(Jump(dst_label))
        if isinstance(term, Jump):
            term.target = mid.label
        elif isinstance(term, Branch):
            if term.if_true == dst_label:
                term.if_true = mid.label
            if term.if_false == dst_label:
                term.if_false = mid.label
        for phi in dst.phis():
            if src_label in phi.incoming:
                phi.incoming[mid.label] = phi.incoming.pop(src_label)
        return mid

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Function {self.name}: {len(self.blocks)} blocks>"

"""Opcode definitions for the tagged intermediate language.

The IL mirrors the ILOC-style representation described in the paper,
including the hierarchy of memory operations from Table 1:

======== ========= =====================================================
Loads    Stores    Purpose
======== ========= =====================================================
`loadi`  —         immediate: load a known constant value
`cload`  —         constant load: an invariant, but unknown value
`sload`  `sstore`  scalar load/store: a value known to be a named scalar
`load`   `store`   general load/store: address computed into a register
======== ========= =====================================================

Scalar memory operations name their location directly through a single
:class:`~repro.ir.tags.Tag`; general memory operations carry a
:class:`~repro.ir.tags.TagSet` describing every location they may touch.
"""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """Every operation the IL can express.

    The enum value is the printable mnemonic.
    """

    # -- arithmetic ------------------------------------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"          # C semantics: truncating for ints, exact for floats
    MOD = "mod"          # integers only, C remainder semantics
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"

    # -- comparisons (result is 0 or 1) ---------------------------------
    CMP_LT = "cmp_lt"
    CMP_LE = "cmp_le"
    CMP_GT = "cmp_gt"
    CMP_GE = "cmp_ge"
    CMP_EQ = "cmp_eq"
    CMP_NE = "cmp_ne"

    # -- unary -----------------------------------------------------------
    NEG = "neg"
    NOT = "not"          # bitwise complement
    LNOT = "lnot"        # logical not: 1 if operand == 0 else 0
    I2F = "i2f"          # int -> float conversion
    F2I = "f2i"          # float -> int (truncate toward zero)

    # -- data movement ----------------------------------------------------
    LOADI = "loadi"      # immediate constant -> register
    MOV = "mov"          # register copy (the paper's CP)
    LA = "la"            # load the address of a tagged location

    # -- memory hierarchy (Table 1) ---------------------------------------
    CLOAD = "cload"      # invariant-but-unknown value, named by one tag
    SLOAD = "sload"      # scalar load, named by one tag
    SSTORE = "sstore"    # scalar store, named by one tag
    LOAD = "load"        # general load through an address register
    STORE = "store"      # general store through an address register

    # -- control flow ------------------------------------------------------
    JMP = "jmp"
    CBR = "cbr"          # conditional branch: nonzero -> true target
    RET = "ret"
    CALL = "call"        # the paper's JSR, with MOD/REF tag summaries

    # -- SSA / structural ---------------------------------------------------
    PHI = "phi"
    NOP = "nop"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Binary arithmetic/logical opcodes (two register sources, one destination).
BINARY_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.CMP_LT, Opcode.CMP_LE, Opcode.CMP_GT, Opcode.CMP_GE,
    Opcode.CMP_EQ, Opcode.CMP_NE,
})

#: Comparison opcodes (a subset of BINARY_OPS producing 0/1).
COMPARISON_OPS = frozenset({
    Opcode.CMP_LT, Opcode.CMP_LE, Opcode.CMP_GT, Opcode.CMP_GE,
    Opcode.CMP_EQ, Opcode.CMP_NE,
})

#: Unary opcodes (one register source, one destination).
UNARY_OPS = frozenset({
    Opcode.NEG, Opcode.NOT, Opcode.LNOT, Opcode.I2F, Opcode.F2I,
})

#: Opcodes that read memory.  ``loadi`` is excluded: an immediate is not a
#: memory reference and the paper does not count it as a load.
MEMORY_LOAD_OPS = frozenset({Opcode.CLOAD, Opcode.SLOAD, Opcode.LOAD})

#: Opcodes that write memory.
MEMORY_STORE_OPS = frozenset({Opcode.SSTORE, Opcode.STORE})

#: All memory-referencing opcodes.
MEMORY_OPS = MEMORY_LOAD_OPS | MEMORY_STORE_OPS

#: Opcodes that terminate a basic block.
TERMINATOR_OPS = frozenset({Opcode.JMP, Opcode.CBR, Opcode.RET})

#: Commutative binary opcodes, used by value numbering to canonicalize.
COMMUTATIVE_OPS = frozenset({
    Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.CMP_EQ, Opcode.CMP_NE,
})

#: For each comparison, the comparison with swapped operand order.
SWAPPED_COMPARISON = {
    Opcode.CMP_LT: Opcode.CMP_GT,
    Opcode.CMP_GT: Opcode.CMP_LT,
    Opcode.CMP_LE: Opcode.CMP_GE,
    Opcode.CMP_GE: Opcode.CMP_LE,
    Opcode.CMP_EQ: Opcode.CMP_EQ,
    Opcode.CMP_NE: Opcode.CMP_NE,
}

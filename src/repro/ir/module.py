"""Modules: whole translation units of tagged IL.

A :class:`Module` holds every function plus the static data the program
references: global variables (each with a tag and optional initializer),
string literals, and the registry of heap allocation sites.  The module is
the unit handed to interprocedural analysis, the optimizer, and the
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import IRError
from .function import Function
from .tags import Tag, TagKind


@dataclass
class GlobalVar:
    """A file-scope variable.

    ``size`` is in bytes; ``init`` maps byte offsets to initial word values
    (ints or floats).  Scalars have ``size`` equal to their element size and
    a single initializer at offset 0.
    """

    tag: Tag
    size: int
    elem_size: int
    init: dict[int, int | float] = field(default_factory=dict)
    is_const: bool = False

    @property
    def name(self) -> str:
        return self.tag.name


@dataclass
class StringLiteral:
    """A read-only string constant with its own internal tag."""

    tag: Tag
    text: str


class Module:
    """A complete program in IL form."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVar] = {}
        self.strings: dict[str, StringLiteral] = {}
        #: call-site id -> heap tag, for sites that may allocate
        self.heap_tags: dict[int, Tag] = {}
        #: tags whose address is ever taken (explicitly via ``&`` or
        #: implicitly via array/struct decay); populated by the front end.
        self.address_taken: set[Tag] = set()
        #: functions whose address is taken (indirect call targets).
        self.addressed_functions: set[str] = set()
        self._next_site = 0

    def __getstate__(self) -> dict:
        # the block-threaded and tier-2 interpreters cache compiled
        # closures on the module (see repro.interp.engine/tier2); they are
        # unpicklable and cheap to rebuild, so drop them from pickles and
        # deep copies
        state = self.__dict__.copy()
        state.pop("_decoded", None)
        state.pop("_tier2", None)
        return state

    # -- functions -------------------------------------------------------
    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise IRError(f"duplicate function {func.name}")
        self.functions[func.name] = func
        return func

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named {name}") from None

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    # -- data ---------------------------------------------------------------
    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise IRError(f"duplicate global {var.name}")
        self.globals[var.name] = var
        return var

    def add_string(self, text: str) -> StringLiteral:
        key = text
        if key in self.strings:
            return self.strings[key]
        tag = Tag(f"@str{len(self.strings)}", TagKind.INTERNAL, is_scalar=False)
        lit = StringLiteral(tag, text)
        self.strings[key] = lit
        return lit

    # -- call sites and heap naming --------------------------------------------
    def new_call_site(self) -> int:
        site = self._next_site
        self._next_site += 1
        return site

    def heap_tag_for_site(self, site_id: int) -> Tag:
        """The heap tag naming all memory allocated at this call site."""
        if site_id not in self.heap_tags:
            self.heap_tags[site_id] = Tag(
                f"heap@{site_id}", TagKind.HEAP, is_scalar=False
            )
        return self.heap_tags[site_id]

    # -- tag universe -----------------------------------------------------------
    def memory_tags(self) -> list[Tag]:
        """Every tag that user code could possibly reference through memory:
        globals, address-taken locals/aggregates, and heap sites.  Internal
        tags (string literals, runtime state) are excluded — user pointers
        cannot lawfully reach them."""
        tags: list[Tag] = [g.tag for g in self.globals.values()]
        for func in self.functions.values():
            tags.extend(func.local_tags)
        tags.extend(self.heap_tags.values())
        return tags

    def addressable_tags(self) -> list[Tag]:
        """Tags whose address can circulate in pointers.

        Globals count as addressable only if their address is taken or they
        are aggregates (arrays decay to pointers); this mirrors the paper's
        MOD/REF analyzer, which only places address-taken tags in the tag
        sets of pointer-based operations.  Front ends mark address-taken
        tags by listing them in :attr:`address_taken`.
        """
        return [t for t in self.memory_tags() if t in self.address_taken]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )

"""Figure formatting: render experiment results in the paper's layout.

The paper's Figures 5-7 are tables with one pair of rows per program::

    Program     analysis   without      with         difference   % removed
    mlink       modref     132386726    126902038    5484688      4.14
                pointer    130108670    124562634    5546036      4.26
"""

from __future__ import annotations

from .experiments import FigureRow, ProgramResult, figure_rows

_TITLES = {
    "total_ops": "Figure 5: Total Operations",
    "stores": "Figure 6: Stores",
    "loads": "Figure 7: Loads",
}


def format_figure(results: dict[str, ProgramResult], metric: str) -> str:
    rows = figure_rows(results, metric)
    return format_rows(rows, title=_TITLES.get(metric, metric))


def format_rows(rows: list[FigureRow], title: str = "") -> str:
    lines: list[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'Program':<12} {'analysis':<8} {'without':>12} {'with':>12} "
        f"{'difference':>12} {'% removed':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    last_program = None
    for row in rows:
        program = row.program if row.program != last_program else ""
        last_program = row.program
        lines.append(
            f"{program:<12} {row.analysis:<8} {row.without:>12} "
            f"{row.with_promotion:>12} {row.difference:>12} "
            f"{row.percent_removed:>10.2f}"
        )
    return "\n".join(lines)


def summary_line(rows: list[FigureRow]) -> str:
    """Aggregate view: how many programs improved / flat / regressed."""
    improved = sum(1 for r in rows if r.percent_removed > 0.5)
    flat = sum(1 for r in rows if -0.5 <= r.percent_removed <= 0.5)
    regressed = sum(1 for r in rows if r.percent_removed < -0.5)
    return f"improved={improved} flat={flat} regressed={regressed}"

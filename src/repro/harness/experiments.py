"""The Figures 5-7 experiment harness.

Runs the paper's four-variant matrix — {MOD/REF, points-to} x {without,
with promotion} — over the 14-program suite, checks that every variant
produces identical program output (the end-to-end correctness oracle),
and tabulates total operations, stores, and loads exactly like the
paper's figures: ``without | with | difference | % removed`` per program
per analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interp import MachineOptions
from ..pipeline import (
    ExperimentCell,
    PipelineOptions,
    check_outputs_agree,
    compile_and_run,
    paper_variants,
)
from ..regalloc import RegAllocOptions
from ..workloads import Workload, get_workload

#: the metrics the paper reports, figure by figure
METRICS = ("total_ops", "stores", "loads")


@dataclass
class ProgramResult:
    """All four variants for one program."""

    name: str
    cells: dict[str, ExperimentCell] = field(default_factory=dict)

    def metric(self, variant: str, metric: str) -> int:
        counters = self.cells[variant].counters
        return getattr(counters, metric)

    def row(self, analysis: str, metric: str) -> "FigureRow":
        without = self.metric(f"{analysis}/nopromo", metric)
        with_ = self.metric(f"{analysis}/promo", metric)
        return FigureRow(
            program=self.name,
            analysis=analysis,
            without=without,
            with_promotion=with_,
        )


@dataclass(frozen=True)
class FigureRow:
    """One row of Figure 5, 6, or 7."""

    program: str
    analysis: str
    without: int
    with_promotion: int

    @property
    def difference(self) -> int:
        return self.without - self.with_promotion

    @property
    def percent_removed(self) -> float:
        if self.without == 0:
            return 0.0
        return 100.0 * self.difference / self.without


def run_program_matrix(
    workload: Workload,
    pointer_promotion: bool = False,
    regalloc: RegAllocOptions | None = None,
    max_steps: int = 50_000_000,
    check_agreement: bool = True,
) -> ProgramResult:
    """Compile and run all four variants of one workload."""
    result = ProgramResult(name=workload.name)
    machine = MachineOptions(max_steps=max_steps)
    for variant, options in paper_variants(
        pointer_promotion=pointer_promotion, regalloc=regalloc
    ).items():
        result.cells[variant] = compile_and_run(
            workload.source,
            options,
            name=workload.name,
            defines=workload.defines,
            machine_options=machine,
        )
    if check_agreement:
        check_outputs_agree(result.cells)
    return result


def run_suite(
    names: list[str] | None = None,
    pointer_promotion: bool = False,
    regalloc: RegAllocOptions | None = None,
    *,
    jobs: int = 1,
    max_steps: int = 50_000_000,
    cache=None,
    timeout: float | None = None,
    retries: int = 1,
) -> dict[str, ProgramResult]:
    """The full suite (or a named subset), one matrix per program.

    Delegates to the :mod:`repro.runner` scheduler: ``jobs`` fans the
    (program, variant) cells out over worker processes and ``cache``
    (a :class:`repro.runner.ResultCache`) reuses prior results.  Any cell
    failure or output disagreement raises :class:`~repro.errors.ReproError`
    — callers that want per-cell failures instead should use
    :func:`repro.runner.run_suite_report` directly.
    """
    from ..errors import ReproError
    from ..runner.report import run_suite_report

    report = run_suite_report(
        names,
        pointer_promotion=pointer_promotion,
        regalloc=regalloc,
        max_steps=max_steps,
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        retries=retries,
    )
    if report.disagreements:
        raise ReproError("; ".join(report.disagreements))
    if report.failures:
        failed = ", ".join(
            f"{f.workload}[{f.variant}]: {f.kind}: {f.message}"
            for f in report.failures
        )
        raise ReproError(f"suite cells failed: {failed}")
    return report.results


def figure_rows(
    results: dict[str, ProgramResult], metric: str
) -> list[FigureRow]:
    """All rows of one figure: per program, the modref and pointer rows."""
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; pick one of {METRICS}")
    rows: list[FigureRow] = []
    for result in results.values():
        rows.append(result.row("modref", metric))
        rows.append(result.row("pointer", metric))
    return rows


def run_single(
    name: str,
    options: PipelineOptions,
    max_steps: int = 50_000_000,
) -> ExperimentCell:
    """One (program, pipeline-variant) cell — used by the ablations."""
    workload = get_workload(name)
    return compile_and_run(
        workload.source,
        options,
        name=workload.name,
        defines=workload.defines,
        machine_options=MachineOptions(max_steps=max_steps),
    )

"""Experiment harness: the paper's Figures 5-7 matrix and formatting."""

from .experiments import (
    FigureRow,
    METRICS,
    ProgramResult,
    figure_rows,
    run_program_matrix,
    run_single,
    run_suite,
)
from .tables import format_figure, format_rows, summary_line

__all__ = [
    "FigureRow",
    "METRICS",
    "ProgramResult",
    "figure_rows",
    "format_figure",
    "format_rows",
    "run_program_matrix",
    "run_single",
    "run_suite",
    "summary_line",
]

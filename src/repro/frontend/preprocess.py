"""A deliberately small C preprocessor.

pycparser consumes already-preprocessed source.  The workloads in this
repository only use three preprocessor features, so we implement exactly
those rather than shipping a full cpp:

* ``#include`` lines are dropped (the runtime intrinsics are built in);
* object-like ``#define NAME token(s)`` macros are expanded textually at
  identifier boundaries, with recursive expansion of macros that mention
  other macros;
* ``#ifdef/#ifndef/#else/#endif`` blocks over the defined macro set.

Function-like macros raise :class:`UnsupportedFeatureError` so mistakes
fail loudly.
"""

from __future__ import annotations

import re

from ..errors import UnsupportedFeatureError

_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)(\(?)\s*(.*?)\s*$")
_INCLUDE_RE = re.compile(r"^\s*#\s*include\b")
_IFDEF_RE = re.compile(r"^\s*#\s*ifdef\s+(\w+)\s*$")
_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)\s*$")
_ELSE_RE = re.compile(r"^\s*#\s*else\s*$")
_ENDIF_RE = re.compile(r"^\s*#\s*endif\s*$")
_UNDEF_RE = re.compile(r"^\s*#\s*undef\s+(\w+)\s*$")
_WORD_RE = re.compile(r"\b\w+\b")

_MAX_EXPANSION_DEPTH = 32


def preprocess(source: str, defines: dict[str, str] | None = None) -> str:
    """Expand the supported directives; return pycparser-ready C."""
    source = strip_comments(source)
    macros: dict[str, str] = dict(defines or {})
    out_lines: list[str] = []
    # stack of booleans: are we currently emitting?
    active_stack: list[bool] = []

    def active() -> bool:
        return all(active_stack)

    for lineno, line in enumerate(source.splitlines(), start=1):
        if _INCLUDE_RE.match(line):
            out_lines.append("")
            continue
        m = _IFDEF_RE.match(line)
        if m:
            active_stack.append(m.group(1) in macros)
            out_lines.append("")
            continue
        m = _IFNDEF_RE.match(line)
        if m:
            active_stack.append(m.group(1) not in macros)
            out_lines.append("")
            continue
        if _ELSE_RE.match(line):
            if not active_stack:
                raise UnsupportedFeatureError(f"line {lineno}: #else without #if")
            active_stack[-1] = not active_stack[-1]
            out_lines.append("")
            continue
        if _ENDIF_RE.match(line):
            if not active_stack:
                raise UnsupportedFeatureError(f"line {lineno}: #endif without #if")
            active_stack.pop()
            out_lines.append("")
            continue
        if not active():
            out_lines.append("")
            continue
        m = _UNDEF_RE.match(line)
        if m:
            macros.pop(m.group(1), None)
            out_lines.append("")
            continue
        m = _DEFINE_RE.match(line)
        if m:
            name, paren, body = m.groups()
            if paren == "(":
                raise UnsupportedFeatureError(
                    f"line {lineno}: function-like macro {name} is not supported"
                )
            macros[name] = body
            out_lines.append("")
            continue
        if line.lstrip().startswith("#"):
            raise UnsupportedFeatureError(
                f"line {lineno}: unsupported preprocessor directive: {line.strip()}"
            )
        out_lines.append(_expand(line, macros))

    if active_stack:
        raise UnsupportedFeatureError("unterminated #ifdef/#ifndef block")
    return "\n".join(out_lines) + "\n"


def strip_comments(source: str) -> str:
    """Remove ``/* ... */`` and ``// ...`` comments, preserving string and
    character literals and keeping line numbers stable (block comments are
    replaced by the newlines they spanned)."""
    out: list[str] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in "\"'":
            quote = ch
            j = i + 1
            while j < n:
                if source[j] == "\\":
                    j += 2
                    continue
                if source[j] == quote:
                    j += 1
                    break
                j += 1
            out.append(source[i:j])
            i = j
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end == -1:
                raise UnsupportedFeatureError("unterminated block comment")
            out.append(" ")
            out.append("\n" * source.count("\n", i, end + 2))
            i = end + 2
        elif ch == "/" and i + 1 < n and source[i + 1] == "/":
            end = source.find("\n", i)
            i = n if end == -1 else end
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _expand(line: str, macros: dict[str, str]) -> str:
    """Expand object-like macros in a line, skipping string literals."""
    if not macros:
        return line
    pieces = _split_strings(line)
    expanded: list[str] = []
    for piece, is_string in pieces:
        if is_string:
            expanded.append(piece)
            continue
        for _ in range(_MAX_EXPANSION_DEPTH):
            new_piece = _WORD_RE.sub(
                lambda m: macros.get(m.group(0), m.group(0)), piece
            )
            if new_piece == piece:
                break
            piece = new_piece
        else:
            raise UnsupportedFeatureError(
                f"macro expansion did not terminate in: {line.strip()}"
            )
        expanded.append(piece)
    return "".join(expanded)


def _split_strings(line: str) -> list[tuple[str, bool]]:
    """Split a line into (text, inside_string_or_char_literal) runs."""
    pieces: list[tuple[str, bool]] = []
    i = 0
    n = len(line)
    start = 0
    while i < n:
        ch = line[i]
        if ch in "\"'":
            if start < i:
                pieces.append((line[start:i], False))
            quote = ch
            j = i + 1
            while j < n:
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == quote:
                    j += 1
                    break
                j += 1
            pieces.append((line[i:j], True))
            i = j
            start = j
        else:
            i += 1
    if start < n:
        pieces.append((line[start:], False))
    return pieces

"""Symbol tables for the C front end.

The storage decision the paper describes in section 2 happens here: every
declared variable is assigned either a virtual register (scalars whose
address is never taken and that are local to one function) or a memory
location named by a :class:`~repro.ir.tags.Tag` (globals, address-taken
locals, arrays, structs).  Register promotion exists precisely to undo the
memory decision, loop by loop, once analysis proves it safe.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FrontendError
from ..ir.instructions import VReg
from ..ir.tags import Tag
from .ctypes import CType, FunctionType


@dataclass
class VarSymbol:
    """A declared variable and where it lives."""

    name: str
    ctype: CType
    reg: VReg | None = None   # register-resident scalar
    tag: Tag | None = None    # memory-resident value
    is_global: bool = False

    @property
    def in_register(self) -> bool:
        return self.reg is not None

    @property
    def in_memory(self) -> bool:
        return self.tag is not None


@dataclass
class FuncSymbol:
    """A function signature visible at file scope."""

    name: str
    ftype: FunctionType
    defined: bool = False


@dataclass(frozen=True)
class EnumConst:
    """An enumerator; usable wherever an integer constant is."""

    name: str
    value: int


class ScopeStack:
    """Lexical scopes mapping names to symbols.

    Globals live in the outermost scope; each compound statement pushes a
    scope.  Lookup walks inside-out.
    """

    def __init__(self) -> None:
        self._scopes: list[dict[str, VarSymbol | EnumConst]] = [{}]

    def push(self) -> None:
        self._scopes.append({})

    def pop(self) -> None:
        if len(self._scopes) == 1:
            raise FrontendError("cannot pop the global scope")
        self._scopes.pop()

    def declare(self, symbol: VarSymbol | EnumConst) -> None:
        scope = self._scopes[-1]
        if symbol.name in scope:
            raise FrontendError(f"redeclaration of {symbol.name!r}")
        scope[symbol.name] = symbol

    def lookup(self, name: str) -> VarSymbol | EnumConst | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def lookup_var(self, name: str) -> VarSymbol:
        sym = self.lookup(name)
        if not isinstance(sym, VarSymbol):
            raise FrontendError(f"use of undeclared variable {name!r}")
        return sym

    def depth(self) -> int:
        return len(self._scopes)

    def at_global_scope(self) -> bool:
        return len(self._scopes) == 1

"""C front end: preprocess, parse (pycparser), and lower to tagged IL."""

from __future__ import annotations

from pycparser import CParser
from pycparser.c_parser import ParseError

from ..errors import FrontendError
from ..ir.module import Module
from .lower import ModuleLowerer
from .preprocess import preprocess

__all__ = ["compile_c", "preprocess", "ModuleLowerer"]


def compile_c(
    source: str,
    name: str = "module",
    defines: dict[str, str] | None = None,
) -> Module:
    """Compile C source text to an (unoptimized) IL module.

    Runs the mini-preprocessor, parses with pycparser, and lowers every
    function.  The produced module is verifiable but unanalyzed: pointer
    operations carry universal tag sets and calls carry universal MOD/REF
    summaries.
    """
    text = preprocess(source, defines)
    parser = CParser()
    try:
        ast = parser.parse(text, filename=name)
    except ParseError as exc:
        raise FrontendError(f"parse error: {exc}") from exc
    lowerer = ModuleLowerer(name)
    module = lowerer.lower(ast)
    from ..ir.verify import verify_module

    verify_module(module)
    return module

"""Lowering from the pycparser AST to tagged IL.

This is the front end the paper assumes: it decides, per variable, whether
the value lives in a virtual register or in memory, emits the Table 1
memory-opcode hierarchy with the *best information it has* in each tag
field, and seeds every call with conservative MOD/REF summaries that the
interprocedural analyses later shrink.

Storage policy (section 2 of the paper):

* scalars that are local to one function and whose address is never taken
  live in virtual registers — no memory traffic at all;
* globals, address-taken locals, arrays, and structs live in memory and
  are accessed through tagged loads and stores;
* direct references to a named scalar use ``sload``/``sstore`` (explicit
  references); pointer dereferences use general ``load``/``store`` with the
  universal tag set.

Register promotion exists to fix the second bullet, loop by loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from pycparser import c_ast

from ..errors import FrontendError, UnsupportedFeatureError
from ..intrinsics import ALLOCATORS, INTRINSICS, is_intrinsic
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Call, LoadAddr, Ret, VReg
from ..ir.module import GlobalVar, Module
from ..ir.opcodes import Opcode
from ..ir.tags import Tag, TagKind, TagSet
from .ctypes import (
    ArrayType,
    CHAR,
    CType,
    DOUBLE,
    FunctionType,
    INT,
    IntType,
    LONG,
    PointerType,
    SHORT,
    StructType,
    UINT,
    ULONG,
    VOID,
    build_struct,
    decay,
    usual_arithmetic,
)
from .symbols import EnumConst, FuncSymbol, ScopeStack, VarSymbol


@dataclass
class Value:
    """An rvalue: a register plus its static C type."""

    reg: VReg
    ctype: CType


class LValue:
    """Base class for assignable locations."""

    ctype: CType


@dataclass
class RegLValue(LValue):
    """A variable resident in a virtual register."""

    sym: VarSymbol

    @property
    def ctype(self) -> CType:  # type: ignore[override]
        return self.sym.ctype


@dataclass
class ScalarLValue(LValue):
    """A named scalar in memory — accessed with sload/sstore."""

    tag: Tag
    ctype: CType


@dataclass
class MemLValue(LValue):
    """A computed address — accessed with general load/store."""

    addr: VReg
    tags: TagSet
    ctype: CType


_BINOPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "<": Opcode.CMP_LT,
    "<=": Opcode.CMP_LE,
    ">": Opcode.CMP_GT,
    ">=": Opcode.CMP_GE,
    "==": Opcode.CMP_EQ,
    "!=": Opcode.CMP_NE,
}

_COMPARISONS = {"<", "<=", ">", ">=", "==", "!="}

_ASSIGN_OPS = {
    "=": None,
    "+=": Opcode.ADD,
    "-=": Opcode.SUB,
    "*=": Opcode.MUL,
    "/=": Opcode.DIV,
    "%=": Opcode.MOD,
    "&=": Opcode.AND,
    "|=": Opcode.OR,
    "^=": Opcode.XOR,
    "<<=": Opcode.SHL,
    ">>=": Opcode.SHR,
}


class ModuleLowerer:
    """Lowers a full translation unit."""

    def __init__(self, module_name: str = "module") -> None:
        self.module = Module(module_name)
        self.scopes = ScopeStack()
        self.typedefs: dict[str, CType] = {}
        self.structs: dict[str, StructType] = {}
        self.functions: dict[str, FuncSymbol] = {}

    # -- entry point -----------------------------------------------------
    def lower(self, ast: c_ast.FileAST) -> Module:
        funcdefs: list[c_ast.FuncDef] = []
        # pass 1: types, globals, and every function signature
        for ext in ast.ext:
            if isinstance(ext, c_ast.Typedef):
                self.typedefs[ext.name] = self.resolve_type(ext.type)
            elif isinstance(ext, c_ast.Decl):
                self._lower_global_decl(ext)
            elif isinstance(ext, c_ast.FuncDef):
                self._register_signature(ext)
                funcdefs.append(ext)
            else:
                raise UnsupportedFeatureError(
                    f"unsupported top-level construct {type(ext).__name__}",
                    getattr(ext, "coord", None),
                )
        # pass 2: function bodies
        for funcdef in funcdefs:
            FunctionLowerer(self, funcdef).lower()
        return self.module

    # -- signatures --------------------------------------------------------
    def _register_signature(self, funcdef: c_ast.FuncDef) -> None:
        name = funcdef.decl.name
        ftype = self.resolve_type(funcdef.decl.type)
        if not isinstance(ftype, FunctionType):
            raise FrontendError(f"{name} is not a function", funcdef.coord)
        existing = self.functions.get(name)
        if existing is not None and existing.defined:
            raise FrontendError(f"redefinition of {name}", funcdef.coord)
        self.functions[name] = FuncSymbol(name, ftype, defined=True)

    def _lower_global_decl(self, decl: c_ast.Decl) -> None:
        ctype = self.resolve_type(decl.type)
        if isinstance(ctype, FunctionType):
            if decl.name not in self.functions:
                self.functions[decl.name] = FuncSymbol(decl.name, ctype)
            return
        if decl.name is None:
            # bare "struct S {...};" or "enum {...};" — types were
            # registered during resolution
            return
        is_const = "const" in (decl.quals or [])
        scalar = ctype.is_scalar()
        tag = Tag(decl.name, TagKind.GLOBAL, is_scalar=scalar)
        var = GlobalVar(
            tag=tag,
            size=max(ctype.size, 1),
            elem_size=_element_size(ctype),
            is_const=is_const,
        )
        if decl.init is not None:
            self._eval_initializer(decl.init, ctype, var.init, offset=0)
        self.module.add_global(var)
        if not scalar:
            # aggregates decay to pointers whenever referenced, so their
            # address is considered taken
            self.module.address_taken.add(tag)
        self.scopes.declare(VarSymbol(decl.name, ctype, tag=tag, is_global=True))

    def _eval_initializer(
        self,
        init: c_ast.Node,
        ctype: CType,
        out: dict[int, int | float],
        offset: int,
    ) -> None:
        if isinstance(init, c_ast.InitList):
            if isinstance(ctype, ArrayType):
                for idx, item in enumerate(init.exprs):
                    self._eval_initializer(
                        item, ctype.elem, out, offset + idx * ctype.elem.size
                    )
                return
            if isinstance(ctype, StructType):
                for field_, item in zip(ctype.fields, init.exprs):
                    self._eval_initializer(
                        item, field_.ctype, out, offset + field_.offset
                    )
                return
            raise UnsupportedFeatureError(
                "initializer list for scalar", init.coord
            )
        value = self.const_eval(init)
        if ctype.is_float():
            value = float(value)
        else:
            value = int(value)
        out[offset] = value

    # -- constant expressions ------------------------------------------------
    def const_eval(self, node: c_ast.Node) -> int | float:
        if isinstance(node, c_ast.Constant):
            return _parse_constant(node)
        if isinstance(node, c_ast.ID):
            sym = self.scopes.lookup(node.name)
            if isinstance(sym, EnumConst):
                return sym.value
            raise FrontendError(
                f"{node.name!r} is not a compile-time constant", node.coord
            )
        if isinstance(node, c_ast.UnaryOp):
            if node.op == "sizeof":
                return self._sizeof_operand(node.expr)
            inner = self.const_eval(node.expr)
            if node.op == "-":
                return -inner
            if node.op == "+":
                return inner
            if node.op == "~":
                return ~int(inner)
            if node.op == "!":
                return int(inner == 0)
            raise UnsupportedFeatureError(
                f"constant unary {node.op!r}", node.coord
            )
        if isinstance(node, c_ast.BinaryOp):
            lhs = self.const_eval(node.left)
            rhs = self.const_eval(node.right)
            return _fold_binary(node.op, lhs, rhs, node.coord)
        if isinstance(node, c_ast.Cast):
            target = self.resolve_type(node.to_type.type)
            value = self.const_eval(node.expr)
            return float(value) if target.is_float() else int(value)
        raise UnsupportedFeatureError(
            f"unsupported constant expression {type(node).__name__}", node.coord
        )

    def _sizeof_operand(self, operand: c_ast.Node) -> int:
        if isinstance(operand, c_ast.Typename):
            return self.resolve_type(operand.type).size
        if isinstance(operand, c_ast.ID):
            sym = self.scopes.lookup(operand.name)
            if isinstance(sym, VarSymbol):
                return sym.ctype.size
        raise UnsupportedFeatureError("unsupported sizeof operand")

    # -- type resolution ---------------------------------------------------
    def resolve_type(self, node: c_ast.Node) -> CType:
        if isinstance(node, c_ast.TypeDecl):
            return self._resolve_base(node.type)
        if isinstance(node, c_ast.PtrDecl):
            return PointerType(self.resolve_type(node.type))
        if isinstance(node, c_ast.ArrayDecl):
            elem = self.resolve_type(node.type)
            length = int(self.const_eval(node.dim)) if node.dim is not None else 0
            return ArrayType(elem=elem, length=length)
        if isinstance(node, c_ast.FuncDecl):
            ret = self.resolve_type(node.type)
            params: list[CType] = []
            varargs = False
            if node.args is not None:
                for param in node.args.params:
                    if isinstance(param, c_ast.EllipsisParam):
                        varargs = True
                        continue
                    ptype = self.resolve_type(param.type)
                    if ptype.is_void():
                        continue  # f(void)
                    params.append(decay(ptype))
            return FunctionType(ret=ret, params=tuple(params), varargs=varargs)
        if isinstance(node, (c_ast.Struct, c_ast.Union, c_ast.Enum,
                             c_ast.IdentifierType)):
            return self._resolve_base(node)
        raise UnsupportedFeatureError(
            f"unsupported declarator {type(node).__name__}",
            getattr(node, "coord", None),
        )

    def _resolve_base(self, node: c_ast.Node) -> CType:
        if isinstance(node, c_ast.IdentifierType):
            return self._named_type(node.names, node.coord)
        if isinstance(node, c_ast.Struct):
            return self._resolve_struct(node)
        if isinstance(node, c_ast.Union):
            raise UnsupportedFeatureError("unions are not supported", node.coord)
        if isinstance(node, c_ast.Enum):
            self._register_enum(node)
            return INT
        raise UnsupportedFeatureError(
            f"unsupported type {type(node).__name__}", getattr(node, "coord", None)
        )

    def _named_type(self, names: list[str], coord: object) -> CType:
        joined = " ".join(names)
        if len(names) == 1 and names[0] in self.typedefs:
            return self.typedefs[names[0]]
        unsigned = "unsigned" in names
        if "double" in names or "float" in names:
            return DOUBLE
        if "void" in names:
            return VOID
        if "char" in names:
            return CHAR
        if "short" in names:
            return SHORT
        if "long" in names:
            return ULONG if unsigned else LONG
        if "int" in names or unsigned or "signed" in names:
            return UINT if unsigned else INT
        raise UnsupportedFeatureError(f"unknown type {joined!r}", coord)

    def _resolve_struct(self, node: c_ast.Struct) -> StructType:
        name = node.name or f"@anon{len(self.structs)}"
        if node.decls is None:
            if name in self.structs:
                return self.structs[name]
            raise FrontendError(f"undefined struct {name}", node.coord)
        members: list[tuple[str, CType]] = []
        for decl in node.decls:
            members.append((decl.name, self.resolve_type(decl.type)))
        struct = build_struct(name, members)
        self.structs[name] = struct
        return struct

    def _register_enum(self, node: c_ast.Enum) -> None:
        if node.values is None:
            return
        next_value = 0
        for enumerator in node.values.enumerators:
            if enumerator.value is not None:
                next_value = int(self.const_eval(enumerator.value))
            if self.scopes.lookup(enumerator.name) is None:
                self.scopes.declare(EnumConst(enumerator.name, next_value))
            next_value += 1


class _AddressTakenScanner(c_ast.NodeVisitor):
    """Collects names ``x`` that occur as ``&x`` (possibly ``&x.f`` or
    ``&x[i]``) anywhere inside one function body."""

    def __init__(self) -> None:
        self.names: set[str] = set()

    def visit_UnaryOp(self, node: c_ast.UnaryOp) -> None:
        if node.op == "&":
            base = node.expr
            while isinstance(base, (c_ast.ArrayRef, c_ast.StructRef)):
                base = base.name
            if isinstance(base, c_ast.ID):
                self.names.add(base.name)
        self.generic_visit(node)


class FunctionLowerer:
    """Lowers one function body."""

    def __init__(self, parent: ModuleLowerer, funcdef: c_ast.FuncDef) -> None:
        self.parent = parent
        self.module = parent.module
        self.scopes = parent.scopes
        self.funcdef = funcdef
        self.name = funcdef.decl.name
        self.ftype = parent.functions[self.name].ftype

        scanner = _AddressTakenScanner()
        scanner.visit(funcdef)
        self.addr_taken_names = scanner.names

        self.func = Function(self.name)
        self.b = IRBuilder(self.func)
        self.break_stack: list[str] = []
        self.continue_stack: list[str] = []
        self._local_tag_count: dict[str, int] = {}

    # -- top level --------------------------------------------------------
    def lower(self) -> Function:
        self.scopes.push()
        entry = self.b.start_block("B")
        self._declare_params()
        self.module.add_function(self.func)
        self.stmt(self.funcdef.body)
        if not self.b.is_terminated():
            self._emit_default_return()
        self.scopes.pop()
        _ = entry
        from ..ir.cfg import remove_unreachable_blocks

        remove_unreachable_blocks(self.func)
        return self.func

    def _declare_params(self) -> None:
        decl = self.funcdef.decl.type  # FuncDecl
        param_decls = []
        if decl.args is not None:
            param_decls = [
                p for p in decl.args.params
                if not isinstance(p, c_ast.EllipsisParam)
            ]
        param_regs: list[VReg] = []
        pending: list[tuple[c_ast.Decl, CType, VReg]] = []
        for pdecl in param_decls:
            ptype = decay(self.parent.resolve_type(pdecl.type))
            if ptype.is_void():
                continue
            reg = self.func.new_vreg(pdecl.name or "arg")
            param_regs.append(reg)
            if pdecl.name is not None:
                pending.append((pdecl, ptype, reg))
        self.func.params = tuple(param_regs)
        self.func.reserve_vreg_ids(max((r.id for r in param_regs), default=-1))
        for pdecl, ptype, reg in pending:
            if pdecl.name in self.addr_taken_names:
                tag = self._new_local_tag(pdecl.name, ptype)
                self.b.sstore(reg, tag)
                self.scopes.declare(VarSymbol(pdecl.name, ptype, tag=tag))
            else:
                self.scopes.declare(VarSymbol(pdecl.name, ptype, reg=reg))

    def _emit_default_return(self) -> None:
        if self.ftype.ret.is_void():
            self.b.ret()
        else:
            zero = self.b.loadi(0.0 if self.ftype.ret.is_float() else 0)
            self.b.ret(zero)

    def _new_local_tag(self, name: str, ctype: CType) -> Tag:
        count = self._local_tag_count.get(name, 0)
        self._local_tag_count[name] = count + 1
        suffix = f".{count}" if count else ""
        tag = Tag(
            f"{self.name}.{name}{suffix}",
            TagKind.LOCAL,
            is_scalar=ctype.is_scalar(),
            owner=self.name,
        )
        self.func.local_tags.append(tag)
        self.func.local_tag_sizes[tag.name] = max(ctype.size, 1)
        # every memory-resident local is reachable through pointers:
        # scalars only become memory-resident when their address is taken,
        # and aggregates decay whenever they are referenced
        self.module.address_taken.add(tag)
        return tag

    # ==================================================================
    # statements
    # ==================================================================
    def stmt(self, node: c_ast.Node | None) -> None:
        if node is None:
            return
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            # expression statements arrive as raw expression nodes
            self.expr(node, want_value=False)
            return
        method(node)

    def _fresh_if_terminated(self) -> None:
        """After a return/break, further statements are unreachable; park
        them in a fresh block that dead-block removal deletes."""
        if self.b.is_terminated():
            self.b.start_block("D")

    def _stmt_Compound(self, node: c_ast.Compound) -> None:
        self.scopes.push()
        for item in node.block_items or []:
            self._fresh_if_terminated()
            self.stmt(item)
        self.scopes.pop()

    def _stmt_Decl(self, node: c_ast.Decl) -> None:
        ctype = self.parent.resolve_type(node.type)
        if isinstance(ctype, FunctionType):
            if node.name not in self.parent.functions:
                self.parent.functions[node.name] = FuncSymbol(node.name, ctype)
            return
        if node.name is None:
            return
        needs_memory = (not ctype.is_scalar()) or node.name in self.addr_taken_names
        if needs_memory:
            tag = self._new_local_tag(node.name, ctype)
            sym = VarSymbol(node.name, ctype, tag=tag)
            self.scopes.declare(sym)
            if node.init is not None:
                self._lower_local_init(sym, ctype, node.init)
        else:
            reg = self.func.new_vreg(node.name)
            sym = VarSymbol(node.name, ctype, reg=reg)
            self.scopes.declare(sym)
            if node.init is not None:
                value = self.rvalue(node.init)
                converted = self.convert(value, ctype)
                self.b.mov(converted.reg, dst=reg)
            else:
                # give the register a defined value so the interpreter's
                # strict mode has nothing to complain about
                self.b.emit(_loadi_for(self.func, reg, ctype))

    def _lower_local_init(
        self, sym: VarSymbol, ctype: CType, init: c_ast.Node
    ) -> None:
        assert sym.tag is not None
        if isinstance(init, c_ast.InitList):
            self._store_init_list(sym.tag, ctype, init, offset=0)
            return
        value = self.convert(self.rvalue(init), ctype)
        if ctype.is_scalar():
            self.b.sstore(value.reg, sym.tag)
        else:
            raise UnsupportedFeatureError(
                "scalar initializer for aggregate", init.coord
            )

    def _store_init_list(
        self, tag: Tag, ctype: CType, init: c_ast.InitList, offset: int
    ) -> None:
        if isinstance(ctype, ArrayType):
            for idx, item in enumerate(init.exprs):
                sub = offset + idx * ctype.elem.size
                if isinstance(item, c_ast.InitList):
                    self._store_init_list(tag, ctype.elem, item, sub)
                else:
                    value = self.convert(self.rvalue(item), ctype.elem)
                    addr = self.b.la(tag, sub)
                    self.b.store(value.reg, addr, TagSet.of(tag))
            return
        if isinstance(ctype, StructType):
            for field_, item in zip(ctype.fields, init.exprs):
                sub = offset + field_.offset
                if isinstance(item, c_ast.InitList):
                    self._store_init_list(tag, field_.ctype, item, sub)
                else:
                    value = self.convert(self.rvalue(item), field_.ctype)
                    addr = self.b.la(tag, sub)
                    self.b.store(value.reg, addr, TagSet.of(tag))
            return
        raise UnsupportedFeatureError("unexpected initializer list")

    def _stmt_DeclList(self, node: c_ast.DeclList) -> None:
        for decl in node.decls:
            self.stmt(decl)

    def _stmt_If(self, node: c_ast.If) -> None:
        cond = self.rvalue(node.cond)
        then_block = self.b.new_block("T")
        else_block = self.b.new_block("F") if node.iffalse is not None else None
        join = self.b.new_block("J")
        # NB: an empty BasicBlock is falsy (len == 0), so `else_block or
        # join` would silently skip the else branch — compare to None
        false_target = else_block if else_block is not None else join
        self.b.cbr(cond.reg, then_block, false_target)

        self.b.set_block(then_block)
        self.stmt(node.iftrue)
        if not self.b.is_terminated():
            self.b.jmp(join)

        if else_block is not None:
            self.b.set_block(else_block)
            self.stmt(node.iffalse)
            if not self.b.is_terminated():
                self.b.jmp(join)

        self.b.set_block(join)

    def _stmt_While(self, node: c_ast.While) -> None:
        header = self.b.new_block("W")
        body = self.b.new_block("Wb")
        exit_ = self.b.new_block("We")
        self.b.jmp(header)

        self.b.set_block(header)
        cond = self.rvalue(node.cond)
        self.b.cbr(cond.reg, body, exit_)

        self.break_stack.append(exit_.label)
        self.continue_stack.append(header.label)
        self.b.set_block(body)
        self.stmt(node.stmt)
        if not self.b.is_terminated():
            self.b.jmp(header)
        self.break_stack.pop()
        self.continue_stack.pop()

        self.b.set_block(exit_)

    def _stmt_DoWhile(self, node: c_ast.DoWhile) -> None:
        body = self.b.new_block("D")
        latch = self.b.new_block("Dc")
        exit_ = self.b.new_block("De")
        self.b.jmp(body)

        self.break_stack.append(exit_.label)
        self.continue_stack.append(latch.label)
        self.b.set_block(body)
        self.stmt(node.stmt)
        if not self.b.is_terminated():
            self.b.jmp(latch)
        self.break_stack.pop()
        self.continue_stack.pop()

        self.b.set_block(latch)
        cond = self.rvalue(node.cond)
        self.b.cbr(cond.reg, body, exit_)
        self.b.set_block(exit_)

    def _stmt_For(self, node: c_ast.For) -> None:
        self.scopes.push()
        if node.init is not None:
            self.stmt(node.init)
        header = self.b.new_block("L")
        body = self.b.new_block("Lb")
        step = self.b.new_block("Ls")
        exit_ = self.b.new_block("Le")
        self.b.jmp(header)

        self.b.set_block(header)
        if node.cond is not None:
            cond = self.rvalue(node.cond)
            self.b.cbr(cond.reg, body, exit_)
        else:
            self.b.jmp(body)

        self.break_stack.append(exit_.label)
        self.continue_stack.append(step.label)
        self.b.set_block(body)
        self.stmt(node.stmt)
        if not self.b.is_terminated():
            self.b.jmp(step)
        self.break_stack.pop()
        self.continue_stack.pop()

        self.b.set_block(step)
        if node.next is not None:
            self.expr(node.next, want_value=False)
        self.b.jmp(header)

        self.b.set_block(exit_)
        self.scopes.pop()

    def _stmt_Return(self, node: c_ast.Return) -> None:
        if node.expr is None:
            self.b.ret()
            return
        value = self.rvalue(node.expr)
        if not self.ftype.ret.is_void():
            value = self.convert(value, self.ftype.ret)
        self.b.ret(value.reg)

    def _stmt_Break(self, node: c_ast.Break) -> None:
        if not self.break_stack:
            raise FrontendError("break outside loop/switch", node.coord)
        self.b.jmp(self.break_stack[-1])

    def _stmt_Continue(self, node: c_ast.Continue) -> None:
        if not self.continue_stack:
            raise FrontendError("continue outside loop", node.coord)
        self.b.jmp(self.continue_stack[-1])

    def _stmt_Switch(self, node: c_ast.Switch) -> None:
        selector = self.rvalue(node.cond)
        exit_ = self.b.new_block("Se")

        items = node.stmt.block_items if isinstance(node.stmt, c_ast.Compound) else [node.stmt]
        items = items or []
        cases: list[tuple[c_ast.Node | None, object]] = []  # (case expr, block)
        for item in items:
            if isinstance(item, c_ast.Case):
                cases.append((item.expr, self.b.new_block("C")))
            elif isinstance(item, c_ast.Default):
                cases.append((None, self.b.new_block("Cd")))
            else:
                raise UnsupportedFeatureError(
                    "switch bodies must be a flat list of case/default labels",
                    getattr(item, "coord", None),
                )

        # dispatch chain
        default_block = next((blk for expr, blk in cases if expr is None), None)
        for expr, block in cases:
            if expr is None:
                continue
            case_value = int(self.parent.const_eval(expr))
            const = self.b.loadi(case_value)
            test = self.b.binop(Opcode.CMP_EQ, selector.reg, const)
            next_test = self.b.new_block("Sn")
            self.b.cbr(test, block, next_test)
            self.b.set_block(next_test)
        self.b.jmp(default_block if default_block is not None else exit_)

        # bodies with fallthrough
        self.break_stack.append(exit_.label)
        for idx, ((_, block), item) in enumerate(zip(cases, items)):
            self.b.set_block(block)
            stmts = item.stmts or []
            for sub in stmts:
                self._fresh_if_terminated()
                self.stmt(sub)
            if not self.b.is_terminated():
                if idx + 1 < len(cases):
                    self.b.jmp(cases[idx + 1][1])
                else:
                    self.b.jmp(exit_)
        self.break_stack.pop()
        self.b.set_block(exit_)

    def _stmt_EmptyStatement(self, node: c_ast.EmptyStatement) -> None:
        return

    # ==================================================================
    # expressions
    # ==================================================================
    def expr(self, node: c_ast.Node, want_value: bool = True) -> Value | None:
        """Lower an expression; when ``want_value`` is false the result may
        be discarded (expression statements)."""
        method = getattr(self, f"_expr_{type(node).__name__}", None)
        if method is None:
            raise UnsupportedFeatureError(
                f"unsupported expression {type(node).__name__}",
                getattr(node, "coord", None),
            )
        return method(node, want_value)

    def rvalue(self, node: c_ast.Node) -> Value:
        value = self.expr(node, want_value=True)
        if value is None:
            raise FrontendError(
                "void value used where a value is required",
                getattr(node, "coord", None),
            )
        return value

    # -- conversions ---------------------------------------------------------
    def convert(self, value: Value, target: CType) -> Value:
        src = value.ctype
        if target.is_float() and src.is_integer():
            reg = self.b.unop(Opcode.I2F, value.reg)
            return Value(reg, DOUBLE)
        if target.is_integer() and src.is_float():
            reg = self.b.unop(Opcode.F2I, value.reg)
            return Value(reg, target)
        return Value(value.reg, target if target.is_scalar() else src)

    # -- lvalues ----------------------------------------------------------
    def lvalue(self, node: c_ast.Node) -> LValue:
        if isinstance(node, c_ast.ID):
            sym = self.scopes.lookup_var(node.name)
            if sym.in_register:
                return RegLValue(sym)
            assert sym.tag is not None
            if sym.ctype.is_scalar():
                return ScalarLValue(sym.tag, sym.ctype)
            addr = self.b.la(sym.tag)
            return MemLValue(addr, TagSet.of(sym.tag), sym.ctype)
        if isinstance(node, c_ast.UnaryOp) and node.op == "*":
            pointer = self.rvalue(node.expr)
            if not pointer.ctype.is_pointer():
                raise FrontendError("dereference of non-pointer", node.coord)
            pointee = pointer.ctype.pointee
            return MemLValue(pointer.reg, TagSet.universe(), pointee)
        if isinstance(node, c_ast.ArrayRef):
            return self._array_lvalue(node)
        if isinstance(node, c_ast.StructRef):
            return self._struct_lvalue(node)
        raise UnsupportedFeatureError(
            f"unsupported lvalue {type(node).__name__}",
            getattr(node, "coord", None),
        )

    def _array_lvalue(self, node: c_ast.ArrayRef) -> MemLValue:
        base = self.expr_address(node.name)
        index = self.rvalue(node.subscript)
        if not base.ctype.is_pointer():
            raise FrontendError("subscript of non-pointer", node.coord)
        elem = base.ctype.pointee
        addr = self._index_address(base.reg, index, elem.size)
        tags = self._address_tags(node.name)
        return MemLValue(addr, tags, elem)

    def _struct_lvalue(self, node: c_ast.StructRef) -> MemLValue:
        if node.type == ".":
            base_lv = self.lvalue(node.name)
            if not isinstance(base_lv, MemLValue):
                raise FrontendError("member access on register value", node.coord)
            struct = base_lv.ctype
            base_addr = base_lv.addr
            tags = base_lv.tags
        else:  # "->"
            pointer = self.rvalue(node.name)
            if not pointer.ctype.is_pointer():
                raise FrontendError("-> on non-pointer", node.coord)
            struct = pointer.ctype.pointee
            base_addr = pointer.reg
            tags = TagSet.universe()
        if not isinstance(struct, StructType):
            raise FrontendError("member access on non-struct", node.coord)
        field_ = struct.field_named(node.field.name)
        if field_.offset:
            off = self.b.loadi(field_.offset)
            base_addr = self.b.add(base_addr, off)
        return MemLValue(base_addr, tags, field_.ctype)

    def _index_address(self, base: VReg, index: Value, elem_size: int) -> VReg:
        idx = index.reg
        if index.ctype.is_float():
            idx = self.b.unop(Opcode.F2I, idx)
        if elem_size != 1:
            size = self.b.loadi(elem_size)
            idx = self.b.mul(idx, size)
        return self.b.add(base, idx)

    def _address_tags(self, base_node: c_ast.Node) -> TagSet:
        """Best static knowledge of what an address expression refers to.

        Direct references to a named array/struct produce a singleton tag
        set (the front end *knows* the object); anything reached through a
        pointer value is universal until analysis shrinks it.
        """
        node = base_node
        while isinstance(node, (c_ast.ArrayRef, c_ast.StructRef)):
            if isinstance(node, c_ast.StructRef) and node.type == "->":
                return TagSet.universe()
            node = node.name
        if isinstance(node, c_ast.ID):
            sym = self.scopes.lookup(node.name)
            if isinstance(sym, VarSymbol) and sym.tag is not None \
                    and not sym.ctype.is_pointer():
                return TagSet.of(sym.tag)
        return TagSet.universe()

    # -- lvalue read/write --------------------------------------------------
    def read_lvalue(self, lv: LValue) -> Value:
        if isinstance(lv, RegLValue):
            assert lv.sym.reg is not None
            return Value(lv.sym.reg, lv.sym.ctype)
        if isinstance(lv, ScalarLValue):
            reg = self.b.sload(lv.tag)
            return Value(reg, lv.ctype)
        assert isinstance(lv, MemLValue)
        if lv.ctype.is_array() or lv.ctype.is_struct():
            # aggregates decay: the "value" is the address itself
            return Value(lv.addr, PointerType(
                lv.ctype.elem if lv.ctype.is_array() else lv.ctype
            ))
        reg = self.b.load(lv.addr, lv.tags)
        return Value(reg, lv.ctype)

    def write_lvalue(self, lv: LValue, value: Value) -> Value:
        converted = self.convert(value, lv.ctype)
        if isinstance(lv, RegLValue):
            assert lv.sym.reg is not None
            self.b.mov(converted.reg, dst=lv.sym.reg)
            return Value(lv.sym.reg, lv.ctype)
        if isinstance(lv, ScalarLValue):
            self.b.sstore(converted.reg, lv.tag)
            return Value(converted.reg, lv.ctype)
        assert isinstance(lv, MemLValue)
        self.b.store(converted.reg, lv.addr, lv.tags)
        return Value(converted.reg, lv.ctype)

    # -- expression node handlers -------------------------------------------
    def _expr_Constant(self, node: c_ast.Constant, want_value: bool) -> Value:
        if node.type == "string":
            lit = self.module.add_string(_decode_string(node.value))
            reg = self.b.la(lit.tag)
            return Value(reg, PointerType(CHAR))
        value = _parse_constant(node)
        ctype = DOUBLE if isinstance(value, float) else INT
        reg = self.b.loadi(value)
        return Value(reg, ctype)

    def _expr_ID(self, node: c_ast.ID, want_value: bool) -> Value:
        sym = self.scopes.lookup(node.name)
        if isinstance(sym, EnumConst):
            reg = self.b.loadi(sym.value)
            return Value(reg, INT)
        if sym is None:
            if node.name in self.parent.functions or is_intrinsic(node.name):
                raise UnsupportedFeatureError(
                    "function pointers require explicit & (unsupported here)",
                    node.coord,
                )
            raise FrontendError(f"undeclared identifier {node.name!r}", node.coord)
        return self.read_lvalue(self.lvalue(node))

    def _expr_ArrayRef(self, node: c_ast.ArrayRef, want_value: bool) -> Value:
        return self.read_lvalue(self.lvalue(node))

    def _expr_StructRef(self, node: c_ast.StructRef, want_value: bool) -> Value:
        return self.read_lvalue(self.lvalue(node))

    def _expr_Assignment(self, node: c_ast.Assignment, want_value: bool) -> Value:
        if node.op not in _ASSIGN_OPS:
            raise UnsupportedFeatureError(
                f"assignment operator {node.op!r}", node.coord
            )
        op = _ASSIGN_OPS[node.op]
        lv = self.lvalue(node.lvalue)
        if op is None:
            value = self.rvalue(node.rvalue)
            return self.write_lvalue(lv, value)
        current = self.read_lvalue(lv)
        rhs = self.rvalue(node.rvalue)
        combined = self._arith(op, node.op.rstrip("="), current, rhs)
        return self.write_lvalue(lv, combined)

    def _expr_UnaryOp(self, node: c_ast.UnaryOp, want_value: bool) -> Value:
        op = node.op
        if op == "&":
            return self._address_of(node.expr)
        if op == "*":
            return self.read_lvalue(self.lvalue(node))
        if op == "sizeof":
            size = self.parent._sizeof_operand(node.expr) \
                if isinstance(node.expr, c_ast.Typename) or isinstance(node.expr, c_ast.ID) \
                else self._sizeof_expr(node.expr)
            reg = self.b.loadi(size)
            return Value(reg, LONG)
        if op in {"++", "--", "p++", "p--"}:
            return self._inc_dec(node, op)
        operand = self.rvalue(node.expr)
        if op == "-":
            reg = self.b.unop(Opcode.NEG, operand.reg)
            return Value(reg, operand.ctype)
        if op == "+":
            return operand
        if op == "~":
            reg = self.b.unop(Opcode.NOT, operand.reg)
            return Value(reg, operand.ctype)
        if op == "!":
            reg = self.b.unop(Opcode.LNOT, operand.reg)
            return Value(reg, INT)
        raise UnsupportedFeatureError(f"unary {op!r}", node.coord)

    def _sizeof_expr(self, node: c_ast.Node) -> int:
        # static sizeof of an arbitrary expression: resolve its type only
        if isinstance(node, c_ast.ID):
            sym = self.scopes.lookup(node.name)
            if isinstance(sym, VarSymbol):
                return sym.ctype.size
        raise UnsupportedFeatureError("unsupported sizeof operand",
                                      getattr(node, "coord", None))

    def _inc_dec(self, node: c_ast.UnaryOp, op: str) -> Value:
        lv = self.lvalue(node.expr)
        current = self.read_lvalue(lv)
        one_value: int | float = 1
        step = 1
        if current.ctype.is_pointer():
            step = max(current.ctype.pointee.size, 1)
        elif current.ctype.is_float():
            one_value = 1.0
        one = self.b.loadi(one_value if step == 1 else step)
        arith = Opcode.ADD if "+" in op else Opcode.SUB
        if op.startswith("p"):
            old = self.b.mov(current.reg)  # preserve the pre-update value
            updated = self.b.binop(arith, current.reg, one)
            self.write_lvalue(lv, Value(updated, current.ctype))
            return Value(old, current.ctype)
        updated = self.b.binop(arith, current.reg, one)
        written = self.write_lvalue(lv, Value(updated, current.ctype))
        return written

    def _address_of(self, node: c_ast.Node) -> Value:
        if isinstance(node, c_ast.ID):
            sym = self.scopes.lookup_var(node.name)
            if sym.in_register:
                raise FrontendError(
                    f"internal error: address taken of register variable "
                    f"{node.name} (pre-pass missed it)", node.coord
                )
            assert sym.tag is not None
            if sym.is_global:
                self.module.address_taken.add(sym.tag)
            reg = self.b.la(sym.tag)
            return Value(reg, PointerType(sym.ctype))
        lv = self.lvalue(node)
        if isinstance(lv, ScalarLValue):
            self.module.address_taken.add(lv.tag)
            reg = self.b.la(lv.tag)
            return Value(reg, PointerType(lv.ctype))
        if isinstance(lv, MemLValue):
            return Value(lv.addr, PointerType(lv.ctype))
        raise FrontendError("cannot take this address", getattr(node, "coord", None))

    def _expr_BinaryOp(self, node: c_ast.BinaryOp, want_value: bool) -> Value:
        if node.op == "&&":
            return self._logical(node, is_and=True)
        if node.op == "||":
            return self._logical(node, is_and=False)
        if node.op not in _BINOPS:
            raise UnsupportedFeatureError(f"binary {node.op!r}", node.coord)
        lhs = self.rvalue(node.left)
        rhs = self.rvalue(node.right)
        return self._arith(_BINOPS[node.op], node.op, lhs, rhs)

    def _arith(self, op: Opcode, op_text: str, lhs: Value, rhs: Value) -> Value:
        # pointer arithmetic
        if op is Opcode.ADD and lhs.ctype.is_pointer() and rhs.ctype.is_integer():
            return self._pointer_offset(lhs, rhs, negate=False)
        if op is Opcode.ADD and rhs.ctype.is_pointer() and lhs.ctype.is_integer():
            return self._pointer_offset(rhs, lhs, negate=False)
        if op is Opcode.SUB and lhs.ctype.is_pointer() and rhs.ctype.is_integer():
            return self._pointer_offset(lhs, rhs, negate=True)
        if op is Opcode.SUB and lhs.ctype.is_pointer() and rhs.ctype.is_pointer():
            diff = self.b.binop(Opcode.SUB, lhs.reg, rhs.reg)
            size = max(lhs.ctype.pointee.size, 1)
            if size != 1:
                size_reg = self.b.loadi(size)
                diff = self.b.binop(Opcode.DIV, diff, size_reg)
            return Value(diff, LONG)

        common = usual_arithmetic(lhs.ctype, rhs.ctype)
        lhs_c = self.convert(lhs, common)
        rhs_c = self.convert(rhs, common)
        reg = self.b.binop(op, lhs_c.reg, rhs_c.reg)
        result_type = INT if op_text in _COMPARISONS else common
        return Value(reg, result_type)

    def _pointer_offset(self, pointer: Value, index: Value, negate: bool) -> Value:
        size = max(pointer.ctype.pointee.size, 1)
        idx = index.reg
        if size != 1:
            size_reg = self.b.loadi(size)
            idx = self.b.mul(idx, size_reg)
        op = Opcode.SUB if negate else Opcode.ADD
        reg = self.b.binop(op, pointer.reg, idx)
        return Value(reg, pointer.ctype)

    def _logical(self, node: c_ast.BinaryOp, is_and: bool) -> Value:
        result = self.func.new_vreg("bool")
        rhs_block = self.b.new_block("Lr")
        short_block = self.b.new_block("Lsrt")
        join = self.b.new_block("Lj")

        lhs = self.rvalue(node.left)
        if is_and:
            self.b.cbr(lhs.reg, rhs_block, short_block)
        else:
            self.b.cbr(lhs.reg, short_block, rhs_block)

        self.b.set_block(short_block)
        short_val = self.b.loadi(0 if is_and else 1)
        self.b.mov(short_val, dst=result)
        self.b.jmp(join)

        self.b.set_block(rhs_block)
        rhs = self.rvalue(node.right)
        zero = self.b.loadi(0 if not rhs.ctype.is_float() else 0.0)
        normalized = self.b.binop(Opcode.CMP_NE, rhs.reg, zero)
        self.b.mov(normalized, dst=result)
        self.b.jmp(join)

        self.b.set_block(join)
        return Value(result, INT)

    def _expr_TernaryOp(self, node: c_ast.TernaryOp, want_value: bool) -> Value:
        result = self.func.new_vreg("sel")
        then_block = self.b.new_block("Tt")
        else_block = self.b.new_block("Tf")
        join = self.b.new_block("Tj")

        cond = self.rvalue(node.cond)
        self.b.cbr(cond.reg, then_block, else_block)

        self.b.set_block(then_block)
        then_val = self.rvalue(node.iftrue)
        self.b.mov(then_val.reg, dst=result)
        self.b.jmp(join)

        self.b.set_block(else_block)
        else_val = self.rvalue(node.iffalse)
        self.b.mov(else_val.reg, dst=result)
        self.b.jmp(join)

        self.b.set_block(join)
        ctype = usual_arithmetic(then_val.ctype, else_val.ctype) \
            if then_val.ctype.is_arithmetic() and else_val.ctype.is_arithmetic() \
            else then_val.ctype
        return Value(result, ctype)

    def _expr_Cast(self, node: c_ast.Cast, want_value: bool) -> Value | None:
        target = self.parent.resolve_type(node.to_type.type)
        value = self.rvalue(node.expr)
        if target.is_void():
            return None if not want_value else Value(value.reg, VOID)
        return self.convert(value, target)

    def _expr_ExprList(self, node: c_ast.ExprList, want_value: bool) -> Value | None:
        result: Value | None = None
        for idx, sub in enumerate(node.exprs):
            last = idx == len(node.exprs) - 1
            result = self.expr(sub, want_value=last and want_value)
        return result

    def _expr_FuncCall(self, node: c_ast.FuncCall, want_value: bool) -> Value | None:
        if not isinstance(node.name, c_ast.ID):
            raise UnsupportedFeatureError(
                "indirect calls through expressions are not supported",
                node.coord,
            )
        name = node.name.name
        args = list(node.args.exprs) if node.args is not None else []
        if is_intrinsic(name) and name not in self.parent.functions:
            return self._lower_intrinsic_call(name, args, node, want_value)
        fsym = self.parent.functions.get(name)
        if fsym is None:
            raise FrontendError(f"call to undeclared function {name!r}", node.coord)
        arg_values = self._lower_args(args, fsym.ftype)
        dst = None
        if not fsym.ftype.ret.is_void():
            dst = self.func.new_vreg("ret")
        call = Call(
            dst,
            name,
            [v.reg for v in arg_values],
            mod=TagSet.universe(),
            ref=TagSet.universe(),
            site_id=self.module.new_call_site(),
        )
        self.b.emit(call)
        if dst is None:
            return None
        return Value(dst, fsym.ftype.ret)

    def _lower_args(
        self, args: list[c_ast.Node], ftype: FunctionType | None
    ) -> list[Value]:
        values: list[Value] = []
        for idx, arg in enumerate(args):
            value = self.rvalue(arg)
            if ftype is not None and idx < len(ftype.params):
                value = self.convert(value, ftype.params[idx])
            elif value.ctype.is_integer():
                pass  # default promotions leave our ints alone
            values.append(value)
        return values

    def _lower_intrinsic_call(
        self,
        name: str,
        args: list[c_ast.Node],
        node: c_ast.FuncCall,
        want_value: bool,
    ) -> Value | None:
        spec = INTRINSICS[name]
        arg_values = []
        passes_user_pointer = False
        for arg in args:
            value = self.rvalue(arg)
            if name in {"sqrt", "fabs", "sin", "cos", "exp", "log", "pow", "floor"}:
                value = self.convert(value, DOUBLE)
            if value.ctype.is_pointer() and not _is_string_literal(arg):
                passes_user_pointer = True
            arg_values.append(value)

        mod = TagSet.empty()
        ref = TagSet.empty()
        if passes_user_pointer:
            if spec.writes_pointees:
                mod = TagSet.universe()
            if spec.reads_pointees:
                ref = TagSet.universe()

        dst = None
        if not spec.ret.is_void():
            dst = self.func.new_vreg("ret")
        site_id = self.module.new_call_site()
        if name in ALLOCATORS:
            # name the heap block now so every analysis (not just
            # points-to) sees the allocation site's tag in its universe
            self.module.heap_tag_for_site(site_id)
        call = Call(
            dst,
            name,
            [v.reg for v in arg_values],
            mod=mod,
            ref=ref,
            site_id=site_id,
        )
        self.b.emit(call)
        if dst is None or not want_value:
            return None if spec.ret.is_void() else Value(dst, spec.ret)
        return Value(dst, spec.ret)

    # -- addresses of array-ish expressions ----------------------------------
    def expr_address(self, node: c_ast.Node) -> Value:
        """Evaluate an expression in address context: arrays decay to their
        base address, pointers evaluate normally."""
        if isinstance(node, c_ast.ID):
            sym = self.scopes.lookup_var(node.name)
            if sym.ctype.is_array():
                assert sym.tag is not None
                reg = self.b.la(sym.tag)
                return Value(reg, PointerType(sym.ctype.elem))
            return self.read_lvalue(self.lvalue(node))
        if isinstance(node, c_ast.ArrayRef):
            lv = self._array_lvalue(node)
            if lv.ctype.is_array():
                return Value(lv.addr, PointerType(lv.ctype.elem))
            value = self.read_lvalue(lv)
            return value
        if isinstance(node, c_ast.StructRef):
            lv = self._struct_lvalue(node)
            if lv.ctype.is_array():
                return Value(lv.addr, PointerType(lv.ctype.elem))
            return self.read_lvalue(lv)
        value = self.rvalue(node)
        if value.ctype.is_array():
            return Value(value.reg, PointerType(value.ctype.elem))
        return value


# ----------------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------------

def _parse_constant(node: c_ast.Constant) -> int | float:
    text = node.value
    if node.type in {"float", "double", "long double"}:
        return float(text.rstrip("fFlL"))
    if node.type == "char":
        return _decode_char(text)
    if node.type == "string":
        raise FrontendError("string constant in numeric context", node.coord)
    cleaned = text.rstrip("uUlL")
    if len(cleaned) > 1 and cleaned[0] == "0" and cleaned[1] not in "xXbB":
        return int(cleaned, 8)  # C octal: 010 == 8 (Python needs 0o10)
    return int(cleaned, 0)


def _decode_char(text: str) -> int:
    body = text[1:-1]
    decoded = body.encode().decode("unicode_escape")
    if len(decoded) != 1:
        raise FrontendError(f"bad character literal {text}")
    return ord(decoded)


def _decode_string(text: str) -> str:
    return text[1:-1].encode().decode("unicode_escape")


def _is_string_literal(node: c_ast.Node) -> bool:
    return isinstance(node, c_ast.Constant) and node.type == "string"


def _fold_binary(op: str, lhs: int | float, rhs: int | float, coord: object) -> int | float:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if isinstance(lhs, int) and isinstance(rhs, int):
            return int(lhs / rhs)
        return lhs / rhs
    if op == "%":
        return int(lhs) - int(lhs / rhs) * int(rhs)  # C remainder
    if op == "<<":
        return int(lhs) << int(rhs)
    if op == ">>":
        return int(lhs) >> int(rhs)
    if op == "&":
        return int(lhs) & int(rhs)
    if op == "|":
        return int(lhs) | int(rhs)
    if op == "^":
        return int(lhs) ^ int(rhs)
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    raise UnsupportedFeatureError(f"constant binary {op!r}", coord)


def _loadi_for(func: Function, dst: VReg, ctype: CType):
    from ..ir.instructions import LoadI

    return LoadI(dst, 0.0 if ctype.is_float() else 0)


def _element_size(ctype: CType) -> int:
    if isinstance(ctype, ArrayType):
        return _element_size(ctype.elem)
    return max(ctype.size, 1)

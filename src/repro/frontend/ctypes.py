"""Re-export of the C type model.

The model lives in :mod:`repro.ctype_model` (outside the frontend package)
so that :mod:`repro.intrinsics` can use it without importing the whole
front end; this shim keeps ``repro.frontend.ctypes`` as the public path.
"""

from ..ctype_model import *  # noqa: F401,F403
from ..ctype_model import (  # noqa: F401
    ArrayType,
    CHAR,
    CHAR_PTR,
    CType,
    DOUBLE,
    FloatType,
    FunctionType,
    INT,
    IntType,
    LONG,
    PointerType,
    SHORT,
    StructField,
    StructType,
    UINT,
    ULONG,
    VOID,
    VoidType,
    WORD,
    align_up,
    build_struct,
    decay,
    natural_alignment,
    usual_arithmetic,
)

"""``repro.chaos`` — deterministic, seed-driven fault injection.

The serving stack (:mod:`repro.serve`) survives worker crashes,
deadlines, queue pressure, and torn connections — but until this
package, that failure space was only explored by a handful of
hand-written crash tests.  ``repro.chaos`` makes *operational*
correctness a searchable space the same way :mod:`repro.fuzz` did for
compiler correctness: every fault is decided by a pure function of a
seed, so a failing campaign replays exactly from its seed.

Modules:

* :mod:`~repro.chaos.plan` — :class:`FaultPlan`: the closed registry of
  injection sites, per-site rates, and the deterministic decision
  function (seed × site × token × occurrence → fault or not);
* :mod:`~repro.chaos.inject` — enactment helpers: worker-side fault
  execution (crash/hang/slow-start), cache corruption/eviction,
  response-frame mangling;
* :mod:`~repro.chaos.soak` — the ``repro chaos soak`` harness: a
  chaos-enabled in-process server under deterministic load, asserting
  the invariant contract (every request resolves to ok / a
  closed-vocabulary error / an explicit shed; no leaked workers; a
  flight bundle per injected crash) and writing ``CHAOS_REPORT.json``.

The plan layer is deliberately serve-agnostic — any component with a
stable token for its decision points (the batch :mod:`repro.runner`
included) can consult a :class:`FaultPlan` the same way.

See ``docs/CHAOS.md`` for plan grammar, seeds, and replay.
"""

from __future__ import annotations

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "SITES",
    "SoakConfig",
    "format_soak_report",
    "run_soak",
]

_LAZY = {
    "FaultPlan": "plan",
    "FaultSpec": "plan",
    "SITES": "plan",
    "SoakConfig": "soak",
    "format_soak_report": "soak",
    "run_soak": "soak",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value

"""The fault plan: a deterministic, seed-driven fault schedule.

A :class:`FaultPlan` answers one question at every registered injection
site: *should this decision point fail, and how hard?*  The answer is a
pure function of ``(seed, site, token, occurrence)``:

* **site** — one of the closed :data:`SITES` registry (where in the
  stack the fault is enacted);
* **token** — the stable identity of the decision point.  The serving
  stack uses the request's idempotency key when the client sent one
  (the soak harness always does), falling back to the content-addressed
  request digest — either way the token is reproducible across runs,
  which is what makes a campaign replayable from its seed;
* **occurrence** — how many times this (site, token) pair has been
  consulted before.  A request that is retried consults the same token
  again at the next occurrence, so the retry's fate is *also* decided
  by the seed, not by wall-clock races.

Because the decision function is pure, the full first-attempt schedule
for a known token sequence can be computed up front
(:meth:`FaultPlan.schedule`) and compared across runs — that is the
determinism contract ``repro chaos soak`` pins: same seed, same
(site, request, timing-step) schedule.

Rates come from a compact spec string (``--chaos-plan``)::

    seed=0,rate=0.05                      # every site at 5%
    seed=7,pool.crash_during=1.0,limit=1  # one targeted crash
    seed=3,rate=0.02,cache.corrupt=0.3    # default + per-site override

``limit=N`` caps the number of injections per site (useful for targeted
regression tests; the cap counter is consult-ordered, so under
concurrency it trades determinism for precision — the soak harness
never uses it).  ``delay-max-ms=N`` bounds the deterministic timing
step attached to delay-shaped faults.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["FaultPlan", "FaultSpec", "SITES", "request_token"]

#: the closed registry of injection sites, grouped by the seam that
#: enacts them (see docs/CHAOS.md for the fault each one produces)
SITES = (
    # worker pool (pool.py): decided parent-side, enacted in the child
    "pool.crash_before",   # worker exits before starting the cell
    "pool.crash_during",   # worker exits mid-cell (never replies)
    "pool.crash_after",    # worker computes the cell, exits before reply
    "pool.hang",           # worker sleeps forever -> deadline kill
    "pool.slow_start",     # fresh worker sleeps before serving
    # server event loop (server.py)
    "server.admission_stall",  # delay before the admission-queue put
    "server.dispatch_delay",   # delay before the job ships to a worker
    # wire protocol (protocol.py seam): enacted on response frames
    "protocol.truncate",   # write half the frame, then hang up
    "protocol.hangup",     # drop the response, close the connection
    "protocol.split",      # write the frame in two flushes (benign)
    "protocol.oversize",   # pad the frame beyond the client's limit
    # result cache (cache.py seam)
    "cache.corrupt",       # overwrite the entry with garbage bytes
    "cache.evict",         # delete the entry out from under the read
)

_SITE_SET = frozenset(SITES)

#: sites whose enactment kills a worker process exactly once
CRASH_SITES = frozenset(
    {"pool.crash_before", "pool.crash_during", "pool.crash_after"}
)

#: default cap on the deterministic delay step (milliseconds)
DEFAULT_DELAY_MAX_MS = 50


@dataclass(frozen=True)
class FaultSpec:
    """One decided fault: where, for whom, and its timing step."""

    site: str
    token: str
    occurrence: int
    #: deterministic delay magnitude in milliseconds (the "timing step");
    #: delay-shaped sites sleep this long, crash_during arms its exit
    #: timer with it, other sites carry it for the schedule record only
    delay_ms: int

    @property
    def delay_s(self) -> float:
        return self.delay_ms / 1000.0

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "token": self.token,
            "occurrence": self.occurrence,
            "delay_ms": self.delay_ms,
        }

    def worker_payload(self) -> dict:
        """The shape shipped inside a job dict for child-side enactment."""
        return {"site": self.site, "delay_ms": self.delay_ms}


def request_token(op: str, params: dict | None) -> str:
    """Stable fallback token for a request without an idempotency key:
    a digest of the request *content* (never the wire ``id``, which is a
    per-connection counter and differs run to run)."""
    import json

    canonical = json.dumps(
        {"op": op, "params": params or {}}, sort_keys=True, default=repr
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class FaultPlan:
    """Seed + per-site rates + the deterministic decision function.

    Instances carry two kinds of state on top of the pure decision
    function: per-(site, token) occurrence counters (so repeat consults
    advance deterministically) and the log of injected faults
    (:attr:`injected`, the replay evidence ``CHAOS_REPORT.json``
    records).  Neither affects *what* is decided for a given
    (site, token, occurrence) triple — :meth:`would_inject` is static.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: dict[str, float] | None = None,
        *,
        max_injections_per_site: int | None = None,
        delay_max_ms: int = DEFAULT_DELAY_MAX_MS,
    ) -> None:
        rates = dict(rates or {})
        unknown = set(rates) - _SITE_SET
        if unknown:
            raise ValueError(
                f"unknown chaos sites {sorted(unknown)}; "
                f"known: {list(SITES)}"
            )
        for site, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {site} must be in [0, 1], got {rate}")
        if max_injections_per_site is not None and max_injections_per_site < 0:
            raise ValueError(
                f"limit must be >= 0, got {max_injections_per_site}"
            )
        self.seed = int(seed)
        self.rates = rates
        self.max_injections_per_site = max_injections_per_site
        self.delay_max_ms = max(1, int(delay_max_ms))
        self._occurrences: dict[tuple[str, str], int] = {}
        self._site_injections: dict[str, int] = {}
        #: every injected fault, in consult order
        self.injected: list[FaultSpec] = []
        #: total decision points consulted (injected or not)
        self.consults = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the ``--chaos-plan`` spec grammar."""
        seed = 0
        default_rate: float | None = None
        rates: dict[str, float] = {}
        limit: int | None = None
        delay_max_ms = DEFAULT_DELAY_MAX_MS
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                raise ValueError(
                    f"chaos plan entries are key=value, got {part!r}"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "rate":
                    default_rate = float(value)
                elif key == "limit":
                    limit = int(value)
                elif key == "delay-max-ms":
                    delay_max_ms = int(value)
                elif key in _SITE_SET:
                    rates[key] = float(value)
                else:
                    raise ValueError(
                        f"unknown chaos plan key {key!r} "
                        f"(sites: {list(SITES)})"
                    )
            except ValueError as error:
                if "unknown chaos" in str(error):
                    raise
                raise ValueError(
                    f"bad value for chaos plan key {key!r}: {value!r}"
                ) from None
        if default_rate is not None:
            for site in SITES:
                rates.setdefault(site, default_rate)
        return cls(
            seed,
            rates,
            max_injections_per_site=limit,
            delay_max_ms=delay_max_ms,
        )

    @classmethod
    def all_sites(cls, seed: int, rate: float, **kw) -> "FaultPlan":
        """Every site enabled at one uniform rate (the soak default)."""
        return cls(seed, {site: rate for site in SITES}, **kw)

    def spec(self) -> str:
        """Canonical spec string that :meth:`parse` round-trips."""
        parts = [f"seed={self.seed}"]
        parts.extend(
            f"{site}={self.rates[site]:g}"
            for site in SITES
            if site in self.rates
        )
        if self.max_injections_per_site is not None:
            parts.append(f"limit={self.max_injections_per_site}")
        if self.delay_max_ms != DEFAULT_DELAY_MAX_MS:
            parts.append(f"delay-max-ms={self.delay_max_ms}")
        return ",".join(parts)

    # -- the decision function ---------------------------------------------

    def _draw(self, site: str, token: str, occurrence: int) -> tuple[float, int]:
        digest = hashlib.sha256(
            f"{self.seed}:{site}:{token}:{occurrence}".encode()
        ).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        delay_ms = 1 + int.from_bytes(digest[8:10], "big") % self.delay_max_ms
        return u, delay_ms

    def would_inject(
        self, site: str, token: str, occurrence: int = 0
    ) -> FaultSpec | None:
        """The pure decision: no counters advanced, nothing logged."""
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return None
        u, delay_ms = self._draw(site, token, occurrence)
        if u >= rate:
            return None
        return FaultSpec(site, token, occurrence, delay_ms)

    def decide(self, site: str, token: str) -> FaultSpec | None:
        """Consult the plan at one decision point (advances counters)."""
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return None
        occurrence = self._occurrences.get((site, token), 0)
        self._occurrences[(site, token)] = occurrence + 1
        self.consults += 1
        fault = self.would_inject(site, token, occurrence)
        if fault is None:
            return None
        if self.max_injections_per_site is not None:
            done = self._site_injections.get(site, 0)
            if done >= self.max_injections_per_site:
                return None
            self._site_injections[site] = done + 1
        self.injected.append(fault)
        return fault

    # -- schedules and reporting -------------------------------------------

    def schedule(self, tokens: list[str], occurrences: int = 1) -> list[dict]:
        """The pure first-``occurrences`` schedule over a token sequence,
        canonically ordered — identical across runs by construction."""
        entries = []
        for token in tokens:
            for site in SITES:
                for occurrence in range(occurrences):
                    fault = self.would_inject(site, token, occurrence)
                    if fault is not None:
                        entries.append(fault.as_dict())
        entries.sort(
            key=lambda e: (e["token"], e["site"], e["occurrence"])
        )
        return entries

    @staticmethod
    def schedule_digest(entries: list[dict]) -> str:
        import json

        ordered = sorted(
            entries,
            key=lambda e: (e["token"], e["site"], e["occurrence"]),
        )
        canonical = json.dumps(ordered, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def injected_by_site(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for fault in self.injected:
            counts[fault.site] = counts.get(fault.site, 0) + 1
        return dict(sorted(counts.items()))

    def describe(self) -> dict:
        """Plan facts for the ``metrics`` endpoint / CHAOS_REPORT."""
        return {
            "seed": self.seed,
            "spec": self.spec(),
            "rates": dict(sorted(self.rates.items())),
            "limit": self.max_injections_per_site,
            "delay_max_ms": self.delay_max_ms,
            "consults": self.consults,
            "injected": len(self.injected),
            "injected_by_site": self.injected_by_site(),
        }

"""Fault enactment: turning a decided :class:`~repro.chaos.plan.FaultSpec`
into an actual failure.

The *decision* of what fails lives entirely in the plan (parent-side, one
asyncio loop, deterministic).  This module holds the *mechanics* — the
small, side-effectful helpers each seam calls once a fault has already
been decided:

* worker faults ride inside the job dict (``job["_chaos"]``) and are
  enacted in the child by :func:`enact_worker_fault`;
* cache faults rewrite or unlink the entry on disk before the read;
* protocol faults reshape an already-encoded response frame into the
  chunks the server should actually write (and whether to hang up).

Everything here is import-lazy from the serving stack's point of view:
a server with no chaos plan never imports this module.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = [
    "CHAOS_EXIT_CODE",
    "corrupt_cache_entry",
    "enact_worker_fault",
    "evict_cache_entry",
    "mangle_response",
]

#: exit status for chaos-killed workers — distinguishable from real
#: segfaults (negative signal codes) and clean exits in post-mortems
CHAOS_EXIT_CODE = 86

#: a "forever" hang, in practice bounded by the request deadline that
#: kills the worker (the server always sets one)
_HANG_S = 3600.0

#: padding size for protocol.oversize — comfortably past the asyncio
#: StreamReader default limit (64 KiB) so the client's read loop trips
#: ``LimitOverrunError`` instead of parsing the frame
_OVERSIZE_PAD = 128 * 1024


# --------------------------------------------------------------------------
# worker-side enactment (runs in the child process)


def enact_worker_fault(chaos: dict, work) -> None:
    """Enact a pool fault inside the worker.  Never returns normally.

    ``chaos`` is the :meth:`FaultSpec.worker_payload` dict shipped in the
    job; ``work`` is a zero-arg callable running the real job.  All three
    crash shapes exit via :func:`os._exit` **before any reply is sent**,
    so the parent always observes the same thing — EOF on the pipe — and
    the retry schedule stays deterministic:

    * ``crash_before``: die without touching the job;
    * ``crash_during``: arm an exit timer for the fault's timing step,
      run the job, then die anyway if the timer hasn't fired — the timer
      models dying mid-cell, the unconditional exit keeps the outcome
      independent of how fast the cell ran;
    * ``crash_after``: run the job to completion, then die holding the
      result;
    * ``hang``: sleep until the request deadline kills this process.
    """
    site = chaos["site"]
    delay_s = chaos.get("delay_ms", 1) / 1000.0
    if site == "pool.crash_before":
        os._exit(CHAOS_EXIT_CODE)
    if site == "pool.crash_during":
        timer = threading.Timer(delay_s, os._exit, args=(CHAOS_EXIT_CODE,))
        timer.daemon = True
        timer.start()
        try:
            work()
        finally:
            timer.cancel()
            os._exit(CHAOS_EXIT_CODE)
    if site == "pool.crash_after":
        try:
            work()
        finally:
            os._exit(CHAOS_EXIT_CODE)
    if site == "pool.hang":
        while True:  # killed by the parent's deadline reaper
            time.sleep(_HANG_S)
    raise ValueError(f"not a worker-enactable chaos site: {site!r}")


# --------------------------------------------------------------------------
# cache-side enactment (parent, before the read)


def corrupt_cache_entry(cache, key: str) -> bool:
    """Overwrite the cached entry with bytes that are not JSON.

    Returns whether an entry existed to corrupt.  The read that follows
    must treat the entry as a miss (``ResultCache.get`` already rejects
    undecodable payloads), never serve garbage — that is the invariant
    this site exists to exercise.
    """
    path = cache.path_for(key)
    if not path.exists():
        return False
    path.write_bytes(b"\x00chaos: corrupted entry\xff{{{")
    return True


def evict_cache_entry(cache, key: str) -> bool:
    """Delete the cached entry out from under the read (a clean miss)."""
    path = cache.path_for(key)
    if not path.exists():
        return False
    path.unlink(missing_ok=True)
    return True


# --------------------------------------------------------------------------
# wire-side enactment (parent, on the encoded response frame)


def mangle_response(site: str, frame: bytes) -> tuple[list[bytes], bool]:
    """Reshape one encoded response frame per the protocol fault.

    Returns ``(chunks, hangup)``: the byte chunks the server should
    write (each followed by a drain) and whether to close the connection
    afterwards.

    * ``truncate``: half the frame, then hang up — the client can never
      complete the line;
    * ``hangup``: nothing at all, then close — mid-response from the
      client's point of view (the request is inflight);
    * ``split``: the frame in two flushes — *benign*, the client's line
      framing must reassemble it transparently;
    * ``oversize``: the frame padded past the client's stream limit via
      a junk field — still valid JSON, but unreadable through a default
      64 KiB :class:`asyncio.StreamReader`.
    """
    if site == "protocol.truncate":
        return [frame[: max(1, len(frame) // 2)]], True
    if site == "protocol.hangup":
        return [], True
    if site == "protocol.split":
        cut = max(1, len(frame) // 2)
        return [frame[:cut], frame[cut:]], False
    if site == "protocol.oversize":
        # graft the pad inside the JSON object: strip "}\n", append field
        body = frame.rstrip(b"\n")[:-1]
        pad = b"x" * _OVERSIZE_PAD
        return [body + b',"_chaos_pad":"' + pad + b'"}\n'], True
    raise ValueError(f"not a protocol chaos site: {site!r}")

"""The ``repro chaos soak`` harness: load under deterministic fault fire.

One soak run is a closed experiment:

1. start an in-process :class:`~repro.serve.server.ReproServer` with a
   :class:`~repro.chaos.plan.FaultPlan` (every site enabled at a low
   rate by default, seeded);
2. drive ``budget`` probes through a :class:`ResilientClient` —
   sequentially, each carrying a deterministic idempotency key
   (``soak-<seed>-<index>``), alternating a *cold* probe (``no_cache``,
   forcing real work) with a *warm* probe of the same cell (exercising
   the cache read and its corrupt/evict faults).  Sequential issue +
   deterministic tokens is what makes the fault schedule reproducible:
   the plan's decision for (site, token, occurrence) never depends on
   wall-clock interleaving;
3. assert the **invariant contract** and write ``CHAOS_REPORT.json``:

   * every probe resolves as ok, a closed-vocabulary error, or an
     explicit shed (server back-pressure or the client's own breaker) —
     zero unexplained outcomes;
   * no leaked workers: every pid the pool ever spawned is reaped after
     drain;
   * a flight-recorder bundle exists for every observed worker crash,
     and every *injected* crash is observed (as a crash replacement or,
     in the rare deadline race, a deadline kill);
   * the metrics/trace plumbing stayed intact under fire (request
     accounting consistent, flight recorder populated).

Replaying a failing campaign is ``repro chaos soak --seed <seed>`` with
the same budget/rate: the report's ``schedule_digest`` is identical
across runs by construction.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..diag.log import get_logger
from .plan import CRASH_SITES, SITES, FaultPlan

_log = get_logger(__name__)

__all__ = ["SOAK_SCHEMA", "SoakConfig", "format_soak_report", "run_soak"]

SOAK_SCHEMA = 1

#: outcomes that count as an explicit shed: the server's deliberate
#: back-pressure vocabulary plus the client-side breaker refusal
SHED_OUTCOMES = frozenset(
    {"queue_full", "deadline_exceeded", "draining", "circuit_open"}
)


@dataclass
class SoakConfig:
    #: number of probes (each an independent logical request)
    budget: int = 60
    seed: int = 0
    #: per-site injection rate; every site in ``sites`` gets it
    rate: float = 0.05
    #: sites to enable (default: all of :data:`~repro.chaos.plan.SITES`)
    sites: tuple[str, ...] = SITES
    workers: int = 2
    #: per-probe deadline — also bounds how long a ``pool.hang`` burns
    deadline_s: float = 5.0
    #: cells the probes cycle through (workload, variant)
    mix: tuple[tuple[str, str], ...] = (
        ("dhrystone", "modref/promo"),
        ("fft", "modref/nopromo"),
    )
    #: interpreter fuel per cell: small enough that a cold probe is
    #: fast, large enough that the cell does real compile+execute work
    max_steps: int = 2_000_000
    #: fresh per-run directories by default (determinism: a pre-warmed
    #: cache would change which probes hit)
    cache_dir: str | None = None
    artifacts_dir: str | None = None
    out: str | None = "CHAOS_REPORT.json"


@dataclass
class _Outcomes:
    ok: int = 0
    errors: int = 0
    shed: int = 0
    unexplained: int = 0
    by_code: dict[str, int] = field(default_factory=dict)

    def count(self, code: str | None) -> None:
        """Classify one resolved probe by its outcome code (None = ok)."""
        if code is None:
            self.ok += 1
            return
        self.by_code[code] = self.by_code.get(code, 0) + 1
        from ..serve.protocol import ERROR_CODES

        if code in SHED_OUTCOMES:
            self.shed += 1
        elif code in ERROR_CODES or code == "connection_lost":
            # connection_lost is the client's closed-vocabulary name for
            # a transport fault that outlived every retry
            self.errors += 1
        else:
            self.unexplained += 1


async def _soak(config: SoakConfig, tmp_root: Path) -> dict:
    from ..serve.client import ResilientClient, ServeClient
    from ..serve.resilience import CircuitBreaker, CircuitOpen, RetryPolicy
    from ..serve.server import ReproServer, ServerConfig

    plan = FaultPlan(
        config.seed, {site: config.rate for site in config.sites}
    )
    cache_dir = config.cache_dir or str(tmp_root / "cache")
    artifacts_dir = config.artifacts_dir or str(tmp_root / "artifacts")
    server = ReproServer(
        ServerConfig(
            port=0,
            workers=config.workers,
            cache_dir=cache_dir,
            artifacts_dir=artifacts_dir,
            default_deadline_s=config.deadline_s,
            # the bundle-per-crash invariant must never saturate the cap
            max_flight_dumps=100_000,
            chaos_plan=plan,
        )
    )
    await server.start()
    outcomes = _Outcomes()
    started = time.perf_counter()
    client = ResilientClient(
        "127.0.0.1",
        server.port,
        retry=RetryPolicy(
            max_attempts=8,
            base_delay_s=0.02,
            max_delay_s=0.25,
            rng=random.Random(config.seed),
        ),
        breaker=CircuitBreaker(failure_threshold=8, recovery_s=1.0),
        key_prefix=f"soak-{config.seed}",
    )
    try:
        for index in range(config.budget):
            workload, variant = config.mix[(index // 2) % len(config.mix)]
            params = {
                "workload": workload,
                "variant": variant,
                "max_steps": config.max_steps,
            }
            if index % 2 == 0:
                # cold probe: bypass the cache read, force real work
                params["no_cache"] = True
            token = f"soak-{config.seed}-{index:04d}"
            try:
                response = await client.request(
                    "suite_cell",
                    params,
                    deadline_s=config.deadline_s,
                    idempotency_key=token,
                )
            except CircuitOpen:
                outcomes.count("circuit_open")
                continue
            except (ConnectionError, OSError):
                outcomes.count("connection_lost")
                continue
            if response.get("ok"):
                outcomes.count(None)
            else:
                outcomes.count(
                    response.get("error", {}).get("code", "unexplained")
                )
        resilience = client.stats.as_dict()
    finally:
        await client.close()

    # post-campaign snapshot over a plain client: metrics is a control
    # op, so chaos never mangles it
    snapshot_error = None
    try:
        probe = await ServeClient.connect("127.0.0.1", server.port)
        try:
            wire_metrics = await probe.call("metrics")
        finally:
            await probe.close()
    except Exception as error:  # noqa: BLE001 - recorded, not fatal
        wire_metrics = {}
        snapshot_error = f"{type(error).__name__}: {error}"

    await server.drain()
    duration_s = time.perf_counter() - started

    registry = server.metrics.registry
    crash_replacements = int(
        registry.get("serve.worker_restarts.crash") or 0
    ) + int(registry.get("serve.worker_restarts.idle_crash") or 0)
    deadline_kills = int(
        registry.get("serve.worker_restarts.deadline_kill") or 0
    )
    requests_served = int(registry.get("serve.requests") or 0)

    leaked = sorted(
        pid for pid in server.pool.spawned_pids if _pid_alive(pid)
    )
    crash_bundles = len(
        [
            name
            for name in _list_dir(artifacts_dir)
            if name.startswith("flight-") and "worker_crash-" in name
        ]
    )
    injected = plan.injected_by_site()
    injected_crashes = sum(
        count for site, count in injected.items() if site in CRASH_SITES
    )

    schedule = [fault.as_dict() for fault in plan.injected]
    invariants = {
        # every probe landed in exactly one bucket, none outside the
        # closed vocabulary
        "all_resolved": (
            outcomes.ok + outcomes.errors + outcomes.shed
            + outcomes.unexplained
            == config.budget
        ),
        "no_unexplained": outcomes.unexplained == 0,
        "no_leaked_workers": not leaked,
        # evidence per crash: every observed crash dumped a bundle, and
        # every injected crash was observed (a deadline may win the race
        # against a crash_during timer on a slow cell, hence the kills
        # term)
        "bundle_per_crash": crash_bundles >= crash_replacements
        and crash_replacements + deadline_kills >= injected_crashes,
        # the observability stack survived: request accounting covers at
        # least every client attempt and the wire snapshot still answers
        "metrics_intact": (
            requests_served >= resilience["attempts"]
            and snapshot_error is None
            and bool(wire_metrics.get("chaos"))
        ),
    }
    report = {
        "schema": SOAK_SCHEMA,
        "seed": config.seed,
        "budget": config.budget,
        "spec": plan.spec(),
        "duration_s": round(duration_s, 3),
        "requests": {
            "total": config.budget,
            "ok": outcomes.ok,
            "closed_vocab_errors": outcomes.errors,
            "shed": outcomes.shed,
            "unexplained": outcomes.unexplained,
        },
        "outcomes_by_code": dict(sorted(outcomes.by_code.items())),
        "resilience": resilience,
        "chaos": plan.describe(),
        "workers": {
            "spawned": len(server.pool.spawned_pids),
            "leaked_pids": leaked,
            "crash_replacements": crash_replacements,
            "deadline_kills": deadline_kills,
        },
        "flight": {
            "crash_bundles": crash_bundles,
            "injected_crashes": injected_crashes,
            "artifacts_dir": artifacts_dir,
        },
        "snapshot_error": snapshot_error,
        "schedule": schedule,
        "schedule_digest": FaultPlan.schedule_digest(schedule),
        "invariants": invariants,
        "passed": all(invariants.values()),
    }
    return report


def run_soak(config: SoakConfig | None = None) -> dict:
    """Run one campaign; returns (and optionally writes) the report."""
    import tempfile

    config = config or SoakConfig()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        tmp_root = Path(tmp)
        report = asyncio.run(_soak(config, tmp_root))
        # bundles live in the temp dir unless the caller pinned a
        # directory; preserve the evidence on failure
        if not report["passed"] and config.artifacts_dir is None:
            keep = Path("chaos-artifacts")
            keep.mkdir(exist_ok=True)
            import shutil

            for name in _list_dir(report["flight"]["artifacts_dir"]):
                shutil.copy2(
                    Path(report["flight"]["artifacts_dir"]) / name, keep
                )
            report["flight"]["artifacts_dir"] = str(keep)
    if config.out:
        Path(config.out).write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_soak_report(report: dict) -> str:
    requests = report["requests"]
    injected = report["chaos"]["injected_by_site"]
    lines = [
        f"chaos soak: seed {report['seed']}, {report['budget']} probes in "
        f"{report['duration_s']:.1f}s ({report['spec']})",
        f"  outcomes: ok {requests['ok']}  "
        f"closed-vocab errors {requests['closed_vocab_errors']}  "
        f"shed {requests['shed']}  unexplained {requests['unexplained']}",
        f"  injected {report['chaos']['injected']} fault(s) over "
        f"{report['chaos']['consults']} decision point(s): "
        + (
            "  ".join(f"{site}={n}" for site, n in injected.items())
            or "none"
        ),
        f"  workers: {report['workers']['spawned']} spawned, "
        f"{report['workers']['crash_replacements']} crash replacement(s), "
        f"{report['workers']['deadline_kills']} deadline kill(s), "
        f"leaked {report['workers']['leaked_pids'] or 'none'}",
        f"  flight bundles: {report['flight']['crash_bundles']} for "
        f"{report['flight']['injected_crashes']} injected crash(es)",
        f"  schedule digest: {report['schedule_digest'][:16]}",
    ]
    if report.get("resilience", {}).get("retried"):
        resilience = report["resilience"]
        lines.append(
            f"  client absorbed: retried {resilience['retried']} "
            f"({resilience['retries_by_code']})  "
            f"reconnects {resilience['reconnects']}  "
            f"breaker-open {resilience['breaker_open']}"
        )
    failed = [
        name for name, held in report["invariants"].items() if not held
    ]
    lines.append(
        "  PASS: all invariants held"
        if report["passed"]
        else f"  FAIL: {', '.join(failed)}"
    )
    return "\n".join(lines)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def _list_dir(path: str) -> list[str]:
    try:
        return sorted(os.listdir(path))
    except OSError:
        return []

"""Span export and analysis: Chrome trace, JSONL streams, attribution.

Two export formats serve different consumers:

* :func:`chrome_trace` — the Chrome trace-event format for
  ``chrome://tracing`` / https://ui.perfetto.dev, unchanged from the
  original telemetry layer (``repro suite --trace`` output stays
  byte-compatible);
* :func:`write_spans_jsonl` — one span dict per line, the stream the
  server's ``--trace-export`` writes and the ``repro trace`` CLI reads.

The analysis half answers the attribution question per request: group a
JSONL stream into traces (:func:`group_traces`), check structural health
(:func:`orphan_spans`, :func:`trace_coverage`), bucket the time into
queue / compile / execute / cache (:func:`attribution`) and walk the
dominant chain (:func:`critical_path`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .spans import SpanEvent

__all__ = [
    "attribution",
    "chrome_trace",
    "critical_path",
    "format_span_summary",
    "group_traces",
    "load_spans",
    "orphan_spans",
    "trace_coverage",
    "trace_root",
    "write_chrome_trace",
    "write_spans_jsonl",
]


# -- Chrome trace export (moved from runner.telemetry, format unchanged) ----


def chrome_trace(groups: dict[str, list[SpanEvent]]) -> dict:
    """Convert span groups (label -> events) to the Chrome trace-event
    format: one synthetic thread per group, complete (``ph: X``) events in
    microseconds."""
    trace_events: list[dict] = []
    for tid, (label, events) in enumerate(sorted(groups.items())):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": label},
            }
        )
        for event in events:
            trace_events.append(
                {
                    "name": event.name,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": round(event.start * 1e6, 3),
                    "dur": round(event.seconds * 1e6, 3),
                    "args": dict(event.args),
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, groups: dict[str, list[SpanEvent]]) -> None:
    Path(path).write_text(json.dumps(chrome_trace(groups), indent=1) + "\n")


def format_span_summary(groups: dict[str, list[SpanEvent]]) -> str:
    """Aggregate spans by name across all groups: calls, self time, the net
    static operations removed (``-ops_delta`` summed), and the load subset
    of that (from ``ops_by_class_delta``)."""
    totals: dict[str, dict[str, float]] = {}
    for events in groups.values():
        for event in events:
            entry = totals.setdefault(
                event.name, {"calls": 0, "self": 0.0, "removed": 0, "loads": 0}
            )
            entry["calls"] += 1
            entry["self"] += event.self_seconds
            delta = event.args.get("ops_delta")
            if isinstance(delta, int):
                entry["removed"] -= delta
            by_class = event.args.get("ops_by_class_delta")
            if isinstance(by_class, dict):
                loads_delta = by_class.get("loads")
                if isinstance(loads_delta, int):
                    entry["loads"] -= loads_delta
    grand_self = sum(entry["self"] for entry in totals.values()) or 1.0
    header = (
        f"{'span':<20} {'calls':>6} {'self (s)':>10} {'% self':>8} "
        f"{'ops removed':>12} {'loads removed':>14}"
    )
    lines = [header, "-" * len(header)]
    for name, entry in sorted(totals.items(), key=lambda kv: -kv[1]["self"]):
        lines.append(
            f"{name:<20} {int(entry['calls']):>6} {entry['self']:>10.3f} "
            f"{100.0 * entry['self'] / grand_self:>8.1f} "
            f"{int(entry['removed']):>12} {int(entry['loads']):>14}"
        )
    return "\n".join(lines)


# -- JSONL span streams ------------------------------------------------------


def write_spans_jsonl(
    path, events: Iterable[SpanEvent], append: bool = False
) -> int:
    """Write spans one-dict-per-line; returns the number written."""
    count = 0
    with Path(path).open("a" if append else "w") as fh:
        for event in events:
            fh.write(json.dumps(event.as_dict(), default=str) + "\n")
            count += 1
    return count


def load_spans(path) -> list[SpanEvent]:
    events = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(SpanEvent.from_dict(json.loads(line)))
    return events


def group_traces(events: Iterable[SpanEvent]) -> dict[str, list[SpanEvent]]:
    """Bucket identified spans by trace id (anonymous spans are skipped)."""
    traces: dict[str, list[SpanEvent]] = {}
    for event in events:
        if event.trace_id is not None:
            traces.setdefault(event.trace_id, []).append(event)
    return traces


def trace_root(events: list[SpanEvent]) -> SpanEvent | None:
    """The span with no parent within the trace (the ``request`` span)."""
    ids = {e.span_id for e in events if e.span_id is not None}
    roots = [e for e in events if e.parent_id not in ids]
    if not roots:
        return None
    return max(roots, key=lambda e: e.seconds)


def orphan_spans(events: list[SpanEvent]) -> list[SpanEvent]:
    """Spans whose ``parent_id`` names no span in the trace.

    A healthy trace has exactly one such span — the root, whose
    ``parent_id`` is ``None``.  Anything else is a propagation bug.
    """
    ids = {e.span_id for e in events if e.span_id is not None}
    return [
        e for e in events if e.parent_id is not None and e.parent_id not in ids
    ]


def _children(events: list[SpanEvent], parent: SpanEvent) -> list[SpanEvent]:
    return [e for e in events if e.parent_id == parent.span_id]


def trace_coverage(events: list[SpanEvent]) -> float:
    """Fraction of the root span's time covered by its direct children.

    This is the "no unexplained gaps" health metric: for a well
    instrumented request the direct children of the root (queue wait,
    cache lookup, dispatch, serialization...) should account for nearly
    all of the request's wall time.
    """
    root = trace_root(events)
    if root is None or root.seconds <= 0.0:
        return 0.0
    covered = sum(e.seconds for e in _children(events, root))
    return min(1.0, covered / root.seconds)


# -- latency attribution -----------------------------------------------------

#: span-name prefixes -> attribution bucket
_BUCKETS = (
    ("queue_wait", "queue"),
    ("cache_lookup", "cache"),
    ("cache_hit_framing", "cache"),
    ("cache_write", "cache"),
    ("coalesce_wait", "coalesce"),
    ("compile", "compile"),
    ("parse", "compile"),
    ("optimize", "compile"),
    ("execute", "execute"),
    ("interp.", "execute"),
)


def _bucket(name: str) -> str | None:
    for prefix, bucket in _BUCKETS:
        if name == prefix or name.startswith(prefix):
            return bucket
    return None


def attribution(events: list[SpanEvent]) -> dict[str, float]:
    """Bucket one trace's time into queue/cache/coalesce/compile/execute.

    Only the *outermost* span of each bucket counts (a ``parse`` span
    inside a ``compile`` span is not added again), implemented by
    skipping a span whose ancestor chain already hit the same bucket.
    The leftover inside the root is ``other`` (framing, dispatch
    overhead, serialization); ``coverage`` is the direct-children health
    metric and ``total`` the root duration.
    """
    by_id = {e.span_id: e for e in events if e.span_id is not None}
    root = trace_root(events)
    totals = {
        "queue": 0.0, "cache": 0.0, "coalesce": 0.0,
        "compile": 0.0, "execute": 0.0,
    }

    def ancestor_hits_bucket(event: SpanEvent, bucket: str) -> bool:
        seen = set()
        parent = event.parent_id
        while parent is not None and parent not in seen:
            seen.add(parent)
            ancestor = by_id.get(parent)
            if ancestor is None:
                return False
            if _bucket(ancestor.name) == bucket:
                return True
            parent = ancestor.parent_id
        return False

    for event in events:
        bucket = _bucket(event.name)
        if bucket is None or event is root:
            continue
        if ancestor_hits_bucket(event, bucket):
            continue
        totals[bucket] += event.seconds

    total = root.seconds if root is not None else sum(
        e.seconds for e in events
    )
    attributed = sum(totals.values())
    totals["other"] = max(0.0, total - attributed)
    totals["total"] = total
    totals["coverage"] = trace_coverage(events)
    return totals


def critical_path(events: list[SpanEvent]) -> list[SpanEvent]:
    """The chain root → heaviest child → ... (longest-duration descent)."""
    root = trace_root(events)
    if root is None:
        return []
    path = [root]
    seen = {root.span_id}
    node = root
    while True:
        kids = [
            e for e in _children(events, node)
            if e.span_id not in seen or e.span_id is None
        ]
        if not kids:
            return path
        node = max(kids, key=lambda e: e.seconds)
        path.append(node)
        if node.span_id is not None:
            seen.add(node.span_id)

"""The span model: nested wall-clock spans with trace-context identity.

This module is the core of :mod:`repro.trace`, the layer that absorbed
the original ``repro.runner.telemetry``.  A :class:`Trace` records
nested :func:`span`\\ s — one per compiler pass, plus ``parse``,
``execute``, and the serving layer's request lifecycle — together with
the static operation count of the module before and after each pass, so
a trace shows both where the time goes and which pass removes which
operations.

Two regimes share one API:

* **anonymous traces** (``tracing()`` with no context) behave exactly
  like the old telemetry layer: spans carry no identity, only
  name/timing/args, and serialize byte-compatibly with the pre-trace
  format — ``repro suite --trace`` output is unchanged;
* **identified traces** (``tracing(context=TraceContext(...))``) stamp
  every span with ``trace_id`` / ``span_id`` / ``parent_id`` and an
  absolute ``wall_start``, which is what lets spans recorded in a forked
  worker merge with the serving parent's spans into one connected tree
  (see :func:`propagation_context` and :meth:`Trace.adopt`).

The layer costs nothing when disabled: :func:`span` checks a
module-level current trace and yields immediately when none is
installed, so the pipeline can be instrumented unconditionally.  Spans
additionally yield a mutable dict — args discovered only at pass *exit*
(decision counts, dynamic op totals) are merged into the event there.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "HeadSampler",
    "SpanEvent",
    "Trace",
    "TraceContext",
    "current_trace",
    "module_op_breakdown",
    "module_op_count",
    "new_trace_id",
    "propagation_context",
    "span",
    "tracing",
]


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id."""
    return os.urandom(8).hex()


# span ids are pid-qualified so they stay unique across the fork boundary,
# and drawn from one process-wide counter so concurrent traces in the same
# process (the async server handles many requests at once) never collide
_SPAN_IDS = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """The portable part of a trace: what crosses process boundaries.

    ``trace_id`` names the whole request; ``parent_id`` is the span the
    receiving side should parent its top-level spans under (the sender's
    currently-open span).  The dict form is what travels inside worker
    job payloads across the fork boundary.
    """

    trace_id: str
    parent_id: str | None = None
    sampled: bool = True

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        return cls(
            trace_id=str(data["trace_id"]),
            parent_id=data.get("parent_id"),
            sampled=bool(data.get("sampled", True)),
        )


@dataclass
class SpanEvent:
    """One completed span.

    ``start`` is seconds since the owning trace began; ``seconds`` is the
    inclusive duration and ``self_seconds`` excludes time spent in child
    spans, so summing ``self_seconds`` over a trace never double-counts.
    The identity fields (``trace_id``/``span_id``/``parent_id``/``worker``
    /``wall_start``) are ``None`` for anonymous traces and omitted from
    the dict form, which keeps cached payloads and Chrome exports
    byte-compatible with the pre-context format.
    """

    name: str
    start: float
    seconds: float
    depth: int
    self_seconds: float
    args: dict[str, object] = field(default_factory=dict)
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None
    #: which process recorded this span ("serve", "w0", ...)
    worker: str | None = None
    #: absolute ``time.time()`` at span start — the cross-process timeline
    wall_start: float | None = None

    def as_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "depth": self.depth,
            "self_seconds": self.self_seconds,
            "args": dict(self.args),
        }
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.span_id is not None:
            data["span_id"] = self.span_id
        if self.parent_id is not None:
            data["parent_id"] = self.parent_id
        if self.worker is not None:
            data["worker"] = self.worker
        if self.wall_start is not None:
            data["wall_start"] = self.wall_start
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SpanEvent":
        wall_start = data.get("wall_start")
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),  # type: ignore[arg-type]
            seconds=float(data["seconds"]),  # type: ignore[arg-type]
            depth=int(data["depth"]),  # type: ignore[arg-type]
            self_seconds=float(data["self_seconds"]),  # type: ignore[arg-type]
            args=dict(data.get("args", {})),  # type: ignore[arg-type]
            trace_id=data.get("trace_id"),  # type: ignore[arg-type]
            span_id=data.get("span_id"),  # type: ignore[arg-type]
            parent_id=data.get("parent_id"),  # type: ignore[arg-type]
            worker=data.get("worker"),  # type: ignore[arg-type]
            wall_start=float(wall_start) if wall_start is not None else None,  # type: ignore[arg-type]
        )


def module_op_count(module) -> int:
    """Static instruction count — the per-pass size metric."""
    return sum(
        1 for function in module.functions.values() for _ in function.instructions()
    )


def module_op_breakdown(module) -> dict[str, int]:
    """Static instruction counts bucketed by opcode class.

    Buckets: ``loads`` (sload/cload/load), ``stores`` (sstore/store),
    ``copies`` (mov), ``calls``, ``branches`` (br/cbr/ret), ``other``
    (arithmetic, address computation, phi...).  ``nop`` placeholders are
    excluded — they are dead weight the clean pass erases, not work.
    """
    from ..ir.instructions import (
        Branch,
        Call,
        CLoad,
        MemLoad,
        MemStore,
        Mov,
        Nop,
        Ret,
        ScalarLoad,
        ScalarStore,
    )

    counts = {
        "loads": 0, "stores": 0, "copies": 0,
        "calls": 0, "branches": 0, "other": 0,
    }
    for function in module.functions.values():
        for instr in function.instructions():
            if isinstance(instr, (ScalarLoad, CLoad, MemLoad)):
                counts["loads"] += 1
            elif isinstance(instr, (ScalarStore, MemStore)):
                counts["stores"] += 1
            elif isinstance(instr, Mov):
                counts["copies"] += 1
            elif isinstance(instr, Call):
                counts["calls"] += 1
            elif isinstance(instr, (Branch, Ret)):
                counts["branches"] += 1
            elif not isinstance(instr, Nop):
                counts["other"] += 1
    return counts


class Trace:
    """An ordered collection of spans from one traced activity."""

    def __init__(
        self,
        name: str = "trace",
        context: TraceContext | None = None,
        worker: str | None = None,
    ) -> None:
        self.name = name
        self.context = context
        self.worker = worker
        self.epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self.events: list[SpanEvent] = []
        # one child-time accumulator per open span, plus a root slot
        self._child_time: list[float] = [0.0]
        #: span ids of currently-open spans, outermost first
        self._open_ids: list[str] = []

    def new_span_id(self) -> str:
        """A span id unique across the fork boundary (pid-qualified)."""
        return f"{os.getpid():x}-{next(_SPAN_IDS):x}"

    def open_parent_id(self) -> str | None:
        """The id new spans would be parented under right now."""
        if self._open_ids:
            return self._open_ids[-1]
        return self.context.parent_id if self.context is not None else None

    @contextmanager
    def span(
        self,
        name: str,
        module=None,
        span_id: str | None = None,
        **args: object,
    ) -> Iterator[dict]:
        """Record one live span; yields a dict for exit-time args."""
        depth = len(self._child_time) - 1
        self._child_time.append(0.0)
        identified = self.context is not None
        sid = span_id or (self.new_span_id() if identified else None)
        parent = self.open_parent_id() if identified else None
        if sid is not None:
            self._open_ids.append(sid)
        ops_before = module_op_count(module) if module is not None else None
        classes_before = module_op_breakdown(module) if module is not None else None
        extra: dict[str, object] = {}
        start = time.perf_counter()
        try:
            yield extra
        finally:
            seconds = time.perf_counter() - start
            child_time = self._child_time.pop()
            self._child_time[-1] += seconds
            if sid is not None:
                self._open_ids.pop()
            # a block may ask for its own self time to be booked as an
            # explicit child (``extra["frame_gap"] = name``): the gap is
            # derived from the same clock read as ``seconds``, so no
            # scheduling hiccup between a measurement and the span close
            # can leave unattributed time — this is how the serving layer
            # keeps a traced request's span coverage at ~100% regardless
            # of machine load
            gap_name = extra.pop("frame_gap", None)
            if gap_name is not None and seconds > child_time:
                self.events.append(
                    SpanEvent(
                        name=str(gap_name),
                        start=start - self.epoch,
                        seconds=seconds - child_time,
                        depth=depth + 1,
                        self_seconds=seconds - child_time,
                        trace_id=(
                            self.context.trace_id if identified else None
                        ),
                        span_id=self.new_span_id() if identified else None,
                        parent_id=sid,
                        worker=self.worker if identified else None,
                        wall_start=(
                            self.wall_epoch + (start - self.epoch)
                            if identified
                            else None
                        ),
                    )
                )
                child_time = seconds
            event_args: dict[str, object] = dict(args)
            if ops_before is not None:
                ops_after = module_op_count(module)
                event_args["ops_before"] = ops_before
                event_args["ops_after"] = ops_after
                event_args["ops_delta"] = ops_after - ops_before
            if classes_before is not None:
                classes_after = module_op_breakdown(module)
                class_delta = {
                    cls: classes_after[cls] - classes_before[cls]
                    for cls in classes_after
                    if classes_after[cls] != classes_before[cls]
                }
                if class_delta:
                    event_args["ops_by_class_delta"] = class_delta
            if extra:
                event_args.update(extra)
            self.events.append(
                SpanEvent(
                    name=name,
                    start=start - self.epoch,
                    seconds=seconds,
                    depth=depth,
                    self_seconds=max(0.0, seconds - child_time),
                    args=event_args,
                    trace_id=self.context.trace_id if identified else None,
                    span_id=sid,
                    parent_id=parent,
                    worker=self.worker if identified else None,
                    wall_start=(
                        self.wall_epoch + (start - self.epoch)
                        if identified
                        else None
                    ),
                )
            )

    def add_event(
        self,
        name: str,
        *,
        start_perf: float,
        seconds: float,
        span_id: str | None = None,
        parent_id: str | None = None,
        **args: object,
    ) -> SpanEvent:
        """Record an already-elapsed span (e.g. queue wait measured at
        dequeue).  It is attributed as a child of the innermost open span
        for self-time accounting."""
        identified = self.context is not None
        self._child_time[-1] += seconds
        start = start_perf - self.epoch
        event = SpanEvent(
            name=name,
            start=start,
            seconds=seconds,
            depth=len(self._child_time) - 1,
            self_seconds=seconds,
            args=dict(args),
            trace_id=self.context.trace_id if identified else None,
            span_id=(
                (span_id or self.new_span_id()) if identified else None
            ),
            parent_id=(
                parent_id or self.open_parent_id() if identified else None
            ),
            worker=self.worker if identified else None,
            wall_start=self.wall_epoch + start if identified else None,
        )
        self.events.append(event)
        return event

    def adopt(self, span_dicts: list[dict]) -> list[SpanEvent]:
        """Merge spans recorded in another process into this trace.

        Each adopted span's ``start`` is re-based onto this trace's
        timeline through its absolute ``wall_start`` (the processes share
        a clock — the fork boundary is on one host), and its depth is
        shifted under the innermost open span.
        """
        base_depth = len(self._child_time) - 1
        adopted = []
        for data in span_dicts:
            event = SpanEvent.from_dict(data)
            if event.wall_start is not None:
                event.start = event.wall_start - self.wall_epoch
            event.depth += base_depth
            self.events.append(event)
            adopted.append(event)
        return adopted

    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.events if e.depth == 0)


_CURRENT: Trace | None = None


def current_trace() -> Trace | None:
    return _CURRENT


def propagation_context() -> TraceContext | None:
    """The context a child unit of work should run under: the current
    trace's id with the innermost open span as parent.  ``None`` when no
    identified trace is active — callers ship nothing in that case."""
    trace = _CURRENT
    if trace is None or trace.context is None:
        return None
    return TraceContext(
        trace_id=trace.context.trace_id, parent_id=trace.open_parent_id()
    )


@contextmanager
def tracing(
    name: str = "trace",
    context: TraceContext | None = None,
    worker: str | None = None,
) -> Iterator[Trace]:
    """Install a fresh trace as the current one for the duration."""
    global _CURRENT
    previous = _CURRENT
    trace = Trace(name, context=context, worker=worker)
    _CURRENT = trace
    try:
        yield trace
    finally:
        _CURRENT = previous


@contextmanager
def span(name: str, module=None, **args: object) -> Iterator[dict | None]:
    """Record a span on the current trace; free no-op when tracing is off.

    Yields the span's mutable exit-args dict (``None`` when tracing is
    off) so instrumentation can attach values computed inside the span.
    """
    trace = _CURRENT
    if trace is None:
        yield None
        return
    with trace.span(name, module=module, **args) as extra:
        yield extra


class HeadSampler:
    """Head-based sampling: decide at admission, propagate everywhere.

    ``rate`` is the fraction of requests traced: 0 disables, 1 traces
    everything.  A dedicated :class:`random.Random` keeps the decision
    stream independent of application randomness (and seedable in tests).
    """

    def __init__(self, rate: float, seed: int | None = None) -> None:
        self.rate = max(0.0, min(1.0, float(rate)))
        self._rng = random.Random(seed)

    def sample(self) -> bool:
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        return self._rng.random() < self.rate

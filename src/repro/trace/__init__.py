"""End-to-end tracing: spans, context propagation, flight recorder.

This package absorbed ``repro.runner.telemetry`` (which remains as a
compatibility shim).  The span model and in-process API live in
:mod:`repro.trace.spans`; the always-on crash-bundle ring buffer in
:mod:`repro.trace.flight`; exporters and the attribution/critical-path
analysis in :mod:`repro.trace.analyze`; the ``repro trace`` CLI's
rendering in :mod:`repro.trace.report`.
See ``docs/OBSERVABILITY.md`` for the model.
"""

from .analyze import (
    attribution,
    chrome_trace,
    critical_path,
    format_span_summary,
    group_traces,
    load_spans,
    orphan_spans,
    trace_coverage,
    trace_root,
    write_chrome_trace,
    write_spans_jsonl,
)
from .flight import (
    FlightLogHandler,
    FlightRecorder,
    flight_recorder,
    install_flight_recorder,
    uninstall_flight_recorder,
)
from .spans import (
    HeadSampler,
    SpanEvent,
    Trace,
    TraceContext,
    current_trace,
    module_op_breakdown,
    module_op_count,
    new_trace_id,
    propagation_context,
    span,
    tracing,
)

__all__ = [
    "FlightLogHandler",
    "FlightRecorder",
    "HeadSampler",
    "SpanEvent",
    "Trace",
    "TraceContext",
    "attribution",
    "chrome_trace",
    "critical_path",
    "current_trace",
    "flight_recorder",
    "format_span_summary",
    "group_traces",
    "install_flight_recorder",
    "load_spans",
    "module_op_breakdown",
    "module_op_count",
    "new_trace_id",
    "orphan_spans",
    "propagation_context",
    "span",
    "trace_coverage",
    "trace_root",
    "tracing",
    "uninstall_flight_recorder",
    "write_chrome_trace",
    "write_spans_jsonl",
]

"""Always-on flight recorder: a bounded ring of recent spans and logs.

The serving layer (and the fuzzer) keep one :class:`FlightRecorder`
running regardless of sampling: a preallocated ring buffer whose slots
are plain dicts with a fixed key set, updated **in place** — recording a
span allocates nothing, so the recorder can stay on in production.  When
something dies without warning (worker crash, deadline SIGKILL, drain
timeout, fuzz divergence) the ring holds the last-N spans and recent log
records from *before* the failure, and :meth:`FlightRecorder.dump`
writes them as a crash bundle in the same spirit as ``fuzz-artifacts/``
divergence bundles: a directory with ``meta.json``, ``spans.jsonl`` and
``logs.txt``.

A module-level recorder can be installed with
:func:`install_flight_recorder` so distant subsystems (the fuzz
campaign, the pool) can feed it without plumbing; it is never installed
implicitly.
"""

from __future__ import annotations

import json
import logging
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .spans import SpanEvent, Trace

__all__ = [
    "FlightLogHandler",
    "FlightRecorder",
    "flight_recorder",
    "install_flight_recorder",
    "uninstall_flight_recorder",
]

#: the fixed slot schema — every ring slot always has exactly these keys
_SLOT_KEYS = (
    "name",
    "trace_id",
    "span_id",
    "parent_id",
    "worker",
    "wall_start",
    "start",
    "seconds",
    "args",
)


class FlightLogHandler(logging.Handler):
    """A logging handler that keeps the last N formatted records in a
    ring, for inclusion in crash bundles."""

    def __init__(self, capacity: int = 200) -> None:
        super().__init__()
        self.capacity = max(1, int(capacity))
        self._lines: list[str | None] = [None] * self.capacity
        self._next = 0
        self._count = 0

    def emit(self, record: logging.LogRecord) -> None:
        try:
            line = self.format(record)
        except Exception:  # pragma: no cover - formatter misconfiguration
            line = record.getMessage()
        self._lines[self._next % self.capacity] = line
        self._next += 1
        self._count = min(self._count + 1, self.capacity)

    def snapshot(self) -> list[str]:
        """Retained log lines, oldest first."""
        if self._count < self.capacity:
            lines = self._lines[: self._count]
        else:
            split = self._next % self.capacity
            lines = self._lines[split:] + self._lines[:split]
        return [line for line in lines if line is not None]


class FlightRecorder:
    """Bounded ring buffer of recent span records.

    ``capacity`` slots are preallocated as dicts at construction; the hot
    path (:meth:`record_span`) only assigns into the next slot's existing
    keys and advances an index — no allocation, no locking (single
    process, and the asyncio server records from one thread).
    """

    def __init__(self, capacity: int = 512, log_capacity: int = 200) -> None:
        self.capacity = max(1, int(capacity))
        self._slots: list[dict] = [
            dict.fromkeys(_SLOT_KEYS) for _ in range(self.capacity)
        ]
        self._next = 0
        self._count = 0
        self.dumps = 0
        self.log_handler = FlightLogHandler(log_capacity)
        self.log_handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )

    # -- recording (hot path) ---------------------------------------------

    def record_span(
        self,
        name: str,
        *,
        seconds: float,
        start: float = 0.0,
        trace_id: str | None = None,
        span_id: str | None = None,
        parent_id: str | None = None,
        worker: str | None = None,
        wall_start: float | None = None,
        args: dict | None = None,
    ) -> None:
        slot = self._slots[self._next % self.capacity]
        slot["name"] = name
        slot["trace_id"] = trace_id
        slot["span_id"] = span_id
        slot["parent_id"] = parent_id
        slot["worker"] = worker
        slot["wall_start"] = wall_start
        slot["start"] = start
        slot["seconds"] = seconds
        slot["args"] = args
        self._next += 1
        self._count = min(self._count + 1, self.capacity)

    def record_event(self, name: str, seconds: float = 0.0, **args: object) -> None:
        """Record a coarse marker (one per request, per batch, ...)."""
        self.record_span(
            name,
            seconds=seconds,
            wall_start=time.time() - seconds,
            args=args or None,
        )

    def record_trace(self, trace: "Trace") -> None:
        """Push every span of a finished trace into the ring."""
        for event in trace.events:
            self.record_span(
                event.name,
                seconds=event.seconds,
                start=event.start,
                trace_id=event.trace_id,
                span_id=event.span_id,
                parent_id=event.parent_id,
                worker=event.worker,
                wall_start=event.wall_start,
                args=event.args or None,
            )

    # -- inspection ---------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return self._count

    @property
    def dropped(self) -> int:
        """Spans that have been overwritten by newer ones."""
        return max(0, self._next - self.capacity)

    def _iter_slots(self) -> Iterator[dict]:
        if self._count < self.capacity:
            yield from self._slots[: self._count]
            return
        split = self._next % self.capacity
        yield from self._slots[split:]
        yield from self._slots[:split]

    def snapshot(self) -> list[dict]:
        """Retained spans, oldest first, as independent dicts."""
        records = []
        for slot in self._iter_slots():
            record = {k: v for k, v in slot.items() if v is not None}
            records.append(record)
        return records

    # -- crash bundles -------------------------------------------------------

    def dump(
        self,
        directory: str | Path,
        reason: str,
        extra_spans: "list[SpanEvent] | None" = None,
        meta: dict | None = None,
    ) -> Path:
        """Write a crash bundle and return its directory.

        The bundle holds the ring contents (``spans.jsonl``, with any
        ``extra_spans`` — e.g. the killed request's partial trace —
        appended after a blank-line-free stream), retained log lines
        (``logs.txt``) and a ``meta.json`` describing the trigger.
        """
        self.dumps += 1
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
        root = Path(directory)
        bundle = root / f"flight-{stamp}-{reason}-{self.dumps:03d}"
        bundle.mkdir(parents=True, exist_ok=True)

        records = self.snapshot()
        if extra_spans:
            records.extend(event.as_dict() for event in extra_spans)
        with (bundle / "spans.jsonl").open("w") as fh:
            for record in records:
                fh.write(json.dumps(record, default=str) + "\n")

        (bundle / "logs.txt").write_text(
            "\n".join(self.log_handler.snapshot()) + "\n"
        )

        bundle_meta = {
            "schema": 1,
            "reason": reason,
            "written_at": time.time(),
            "spans": len(records),
            "ring": {
                "capacity": self.capacity,
                "occupancy": self.occupancy,
                "dropped": self.dropped,
            },
        }
        if meta:
            bundle_meta.update(meta)
        (bundle / "meta.json").write_text(json.dumps(bundle_meta, indent=2) + "\n")
        return bundle


_RECORDER: FlightRecorder | None = None


def install_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Make ``recorder`` the process-global one (and hook it into the
    ``repro`` logger so recent log records land in crash bundles)."""
    global _RECORDER
    uninstall_flight_recorder()
    _RECORDER = recorder
    logging.getLogger("repro").addHandler(recorder.log_handler)
    return recorder


def uninstall_flight_recorder() -> None:
    global _RECORDER
    if _RECORDER is not None:
        logging.getLogger("repro").removeHandler(_RECORDER.log_handler)
    _RECORDER = None


def flight_recorder() -> FlightRecorder | None:
    return _RECORDER

"""Rendering for the ``repro trace`` CLI.

Consumes the JSONL span stream the server's ``--trace-export`` writes
(see :func:`repro.trace.analyze.write_spans_jsonl`) and turns it into
the four operator views:

* ``show`` — one line per trace, or the full span tree of one trace;
* ``top`` — spans aggregated by name across the selected traces;
* ``slow`` — slowest traces with their latency attribution;
* ``critical-path`` — the heaviest root-to-leaf chain per trace.

Filters are split by granularity: trace-level selection
(:func:`filter_traces` — by id, request op, workload) picks which
requests are in view, span-level selection (:func:`filter_spans` — by
span name, worker) narrows the aggregation inside them.
"""

from __future__ import annotations

from .analyze import attribution, critical_path, trace_root
from .spans import SpanEvent

__all__ = [
    "aggregate_spans",
    "filter_spans",
    "filter_traces",
    "format_critical_path",
    "format_slow",
    "format_top",
    "format_trace_list",
    "format_trace_tree",
    "trace_program",
]

#: args keys that name the workload a trace ran (build_job stamps
#: ``program``; worker-side interp spans carry ``function``)
_PROGRAM_KEYS = ("program", "workload")


def trace_program(events: list[SpanEvent]) -> str | None:
    """The workload name a trace ran, if any span recorded one."""
    for event in events:
        for key in _PROGRAM_KEYS:
            value = event.args.get(key)
            if isinstance(value, str):
                return value
    return None


def _trace_op(events: list[SpanEvent]) -> str | None:
    root = trace_root(events)
    if root is not None and isinstance(root.args.get("op"), str):
        return root.args["op"]
    for event in events:
        if event.name == "build_job" and isinstance(event.args.get("op"), str):
            return event.args["op"]
    return None


def filter_traces(
    groups: dict[str, list[SpanEvent]],
    trace_id: str | None = None,
    op: str | None = None,
    program: str | None = None,
) -> dict[str, list[SpanEvent]]:
    """Trace-level selection; ``trace_id`` accepts a unique prefix."""
    selected = {}
    for tid, events in groups.items():
        if trace_id is not None and not tid.startswith(trace_id):
            continue
        if op is not None and _trace_op(events) != op:
            continue
        if program is not None and trace_program(events) != program:
            continue
        selected[tid] = events
    return selected


def filter_spans(
    events: list[SpanEvent],
    name: str | None = None,
    worker: str | None = None,
) -> list[SpanEvent]:
    """Span-level selection by exact name and/or worker label."""
    out = events
    if name is not None:
        out = [e for e in out if e.name == name]
    if worker is not None:
        out = [e for e in out if e.worker == worker]
    return out


# -- show --------------------------------------------------------------------


def format_trace_list(
    groups: dict[str, list[SpanEvent]], limit: int = 10
) -> str:
    """One line per trace, most recent first."""
    rows = []
    for tid, events in groups.items():
        root = trace_root(events)
        rows.append(
            (
                root.wall_start or 0.0 if root else 0.0,
                tid,
                (root.seconds * 1e3) if root else 0.0,
                len(events),
                _trace_op(events) or "-",
                trace_program(events) or "-",
                sorted({e.worker for e in events if e.worker is not None}),
            )
        )
    rows.sort(key=lambda r: -r[0])
    header = (
        f"{'trace':<18} {'ms':>9} {'spans':>6} {'op':<10} "
        f"{'program':<16} workers"
    )
    lines = [header, "-" * len(header)]
    for _, tid, ms, count, op, program, workers in rows[:limit]:
        lines.append(
            f"{tid:<18} {ms:>9.2f} {count:>6} {op:<10} "
            f"{program:<16} {','.join(workers)}"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more (raise -n)")
    return "\n".join(lines)


def _format_args(event: SpanEvent) -> str:
    parts = []
    for key, value in event.args.items():
        if isinstance(value, float):
            value = round(value, 4)
        if isinstance(value, (str, int, bool)):
            parts.append(f"{key}={value}")
    return f"  [{' '.join(parts)}]" if parts else ""


def format_trace_tree(events: list[SpanEvent]) -> str:
    """The span tree of one trace: offset, duration, worker, name, args."""
    root = trace_root(events)
    if root is None:
        return "(no root span)"
    by_parent: dict[str | None, list[SpanEvent]] = {}
    for event in events:
        if event is not root:
            by_parent.setdefault(event.parent_id, []).append(event)
    lines = [f"trace {root.trace_id}  ({root.seconds * 1e3:.2f} ms)"]
    seen: set[str] = set()

    def walk(event: SpanEvent, depth: int) -> None:
        offset = (event.start - root.start) * 1e3
        worker = event.worker or "-"
        lines.append(
            f"{offset:>9.2f}ms {'  ' * depth}{event.name} "
            f"+{event.seconds * 1e3:.2f}ms  ({worker})"
            f"{_format_args(event)}"
        )
        if event.span_id is None or event.span_id in seen:
            return
        seen.add(event.span_id)
        for child in sorted(
            by_parent.get(event.span_id, []), key=lambda e: e.start
        ):
            walk(child, depth + 1)

    walk(root, 0)
    # anything unreachable from the root is a propagation bug — show it
    shown = len(lines) - 1
    if shown < len(events):
        lines.append(f"! {len(events) - shown} span(s) unreachable from root")
    return "\n".join(lines)


# -- top ---------------------------------------------------------------------


def aggregate_spans(
    groups: dict[str, list[SpanEvent]],
    name: str | None = None,
    worker: str | None = None,
) -> list[dict]:
    """Per-span-name totals across the selected traces, heaviest first."""
    totals: dict[str, dict] = {}
    for events in groups.values():
        for event in filter_spans(events, name=name, worker=worker):
            row = totals.setdefault(
                event.name,
                {"name": event.name, "calls": 0, "total_s": 0.0, "max_s": 0.0},
            )
            row["calls"] += 1
            row["total_s"] += event.seconds
            row["max_s"] = max(row["max_s"], event.seconds)
    rows = sorted(totals.values(), key=lambda r: -r["total_s"])
    for row in rows:
        row["mean_s"] = row["total_s"] / row["calls"]
    return rows


def format_top(
    groups: dict[str, list[SpanEvent]],
    limit: int = 10,
    name: str | None = None,
    worker: str | None = None,
) -> str:
    rows = aggregate_spans(groups, name=name, worker=worker)
    header = (
        f"{'span':<20} {'calls':>6} {'total (ms)':>11} "
        f"{'mean (ms)':>10} {'max (ms)':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows[:limit]:
        lines.append(
            f"{row['name']:<20} {row['calls']:>6} "
            f"{row['total_s'] * 1e3:>11.2f} {row['mean_s'] * 1e3:>10.2f} "
            f"{row['max_s'] * 1e3:>10.2f}"
        )
    return "\n".join(lines)


# -- slow / critical-path ----------------------------------------------------

_STAGE_ORDER = ("queue", "cache", "coalesce", "compile", "execute", "other")


def format_slow(groups: dict[str, list[SpanEvent]], limit: int = 10) -> str:
    """Slowest traces with their per-stage latency attribution."""
    scored = []
    for tid, events in groups.items():
        root = trace_root(events)
        if root is None:
            continue
        scored.append((root.seconds, tid, events))
    scored.sort(key=lambda r: -r[0])
    header = (
        f"{'trace':<18} {'ms':>9} "
        + " ".join(f"{stage:>9}" for stage in _STAGE_ORDER)
        + f" {'cover':>6} {'program':<14}"
    )
    lines = [header, "-" * len(header)]
    for seconds, tid, events in scored[:limit]:
        att = attribution(events)
        stages = " ".join(
            f"{att[stage] * 1e3:>9.2f}" for stage in _STAGE_ORDER
        )
        lines.append(
            f"{tid:<18} {seconds * 1e3:>9.2f} {stages} "
            f"{att['coverage'] * 100:>5.1f}% {trace_program(events) or '-':<14}"
        )
    return "\n".join(lines)


def format_critical_path(events: list[SpanEvent]) -> str:
    """The heaviest root-to-leaf chain, with share of total latency."""
    path = critical_path(events)
    if not path:
        return "(no root span)"
    total = path[0].seconds or 1.0
    lines = [f"trace {path[0].trace_id}  ({path[0].seconds * 1e3:.2f} ms)"]
    for depth, event in enumerate(path):
        worker = event.worker or "-"
        lines.append(
            f"{'  ' * depth}{event.name:<20} {event.seconds * 1e3:>9.2f}ms "
            f"{100.0 * event.seconds / total:>5.1f}%  ({worker})"
        )
    return "\n".join(lines)

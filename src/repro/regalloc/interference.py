"""Interference graph construction.

Built from backward liveness the classic way: at each instruction, the
defined register interferes with everything live after it — except, for a
copy ``d = mov s``, with ``s`` itself (the exclusion that makes copies
coalescable, exactly the property the paper's promotion-generated copies
rely on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.liveness import Liveness, compute_liveness
from ..ir.function import Function
from ..ir.instructions import Mov, Phi, VReg


@dataclass
class InterferenceGraph:
    """Adjacency sets over register ids."""

    adjacency: dict[int, set[int]] = field(default_factory=dict)
    #: number of defs+uses per register, weighted by loop depth
    occurrences: dict[int, float] = field(default_factory=dict)

    def ensure(self, reg_id: int) -> None:
        self.adjacency.setdefault(reg_id, set())

    def add_edge(self, a: int, b: int) -> None:
        if a == b:
            return
        self.ensure(a)
        self.ensure(b)
        self.adjacency[a].add(b)
        self.adjacency[b].add(a)

    def interferes(self, a: int, b: int) -> bool:
        return b in self.adjacency.get(a, ())

    def degree(self, reg_id: int) -> int:
        return len(self.adjacency.get(reg_id, ()))

    def nodes(self) -> list[int]:
        return list(self.adjacency)

    def merge(self, keep: int, gone: int) -> None:
        """Fold node ``gone`` into ``keep`` (coalescing)."""
        self.ensure(keep)
        for neighbor in self.adjacency.pop(gone, set()):
            self.adjacency[neighbor].discard(gone)
            if neighbor != keep:
                self.adjacency[neighbor].add(keep)
                self.adjacency[keep].add(neighbor)
        self.occurrences[keep] = self.occurrences.get(keep, 0) + self.occurrences.pop(
            gone, 0
        )


def build_interference(
    func: Function,
    liveness: Liveness | None = None,
    loop_depth: dict[str, int] | None = None,
) -> InterferenceGraph:
    if liveness is None:
        liveness = compute_liveness(func)
    graph = InterferenceGraph()

    for param in func.params:
        graph.ensure(param.id)

    for label, block in func.blocks.items():
        weight = 10.0 ** min(loop_depth.get(label, 0) if loop_depth else 0, 6)
        live: set[VReg] = set(liveness.live_out.get(label, frozenset()))
        for instr in reversed(block.instrs):
            dest = instr.dest
            if dest is not None:
                graph.ensure(dest.id)
                graph.occurrences[dest.id] = (
                    graph.occurrences.get(dest.id, 0) + weight
                )
                skip = (
                    instr.src if isinstance(instr, Mov) else None
                )
                for other in live:
                    if other != dest and other != skip:
                        graph.add_edge(dest.id, other.id)
                live.discard(dest)
            if isinstance(instr, Phi):
                continue
            for reg in instr.uses():
                graph.ensure(reg.id)
                graph.occurrences[reg.id] = graph.occurrences.get(reg.id, 0) + weight
                live.add(reg)
    # parameters are defined on entry and interfere with whatever is live
    # into the entry block
    entry_live = liveness.live_in.get(func.entry, frozenset())
    for i, param in enumerate(func.params):
        for other in entry_live:
            if other != param:
                graph.add_edge(param.id, other.id)
        for other_param in func.params[i + 1:]:
            graph.add_edge(param.id, other_param.id)
    return graph

"""Graph-coloring register allocation (Chaitin-Briggs with coalescing)."""

from .coloring import (
    RegAllocOptions,
    RegAllocReport,
    allocate_function,
    allocate_module,
)
from .interference import InterferenceGraph, build_interference

__all__ = [
    "InterferenceGraph",
    "RegAllocOptions",
    "RegAllocReport",
    "allocate_function",
    "allocate_module",
    "build_interference",
]

"""Graph-coloring register allocation (Chaitin–Briggs).

The paper's compiler uses the Briggs–Cooper–Torczon allocator; promoted
values "compete for registers on an equal footing with other values" and,
when demand exceeds supply, some are spilled — occasionally making
promotion a net loss (the paper's *water* anecdote).  We reproduce that
machinery:

* *coalescing* — copies whose source and destination do not interfere
  are merged (Briggs-conservative test by default), which is what erases
  the ``mov`` operations promotion introduced;
* *simplify/select* — Briggs optimistic coloring with K colors;
* *spilling* — uncolored registers get a spill tag (a stack slot); every
  definition is followed by an ``sstore`` and every use preceded by an
  ``sload``, then the allocator retries.  The inserted memory traffic is
  exactly what the paper charges against over-aggressive promotion.

Colors are never written back into the instruction stream: the
interpreter executes virtual registers directly, so the observable
effects of allocation are the coalesced copies and the spill code —
precisely the two quantities the evaluation measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.liveness import compute_liveness
from ..analysis.loops import find_loops
from ..ir.function import Function
from ..ir.instructions import Instr, LoadAddr, LoadI, Mov, ScalarLoad, ScalarStore, VReg
from ..ir.module import Module
from ..ir.tags import Tag, TagKind
from .interference import InterferenceGraph, build_interference


@dataclass
class RegAllocOptions:
    num_registers: int = 32
    coalesce: bool = True
    #: Briggs-conservative coalescing; aggressive (Chaitin) when False
    conservative: bool = True
    max_rounds: int = 12


@dataclass
class RegAllocReport:
    function: str
    rounds: int = 0
    copies_coalesced: int = 0
    spilled_registers: list[int] = field(default_factory=list)
    spill_loads: int = 0
    spill_stores: int = 0
    colors_used: int = 0
    coloring: dict[int, int] = field(default_factory=dict)


def allocate_function(
    func: Function, options: RegAllocOptions | None = None
) -> RegAllocReport:
    options = options or RegAllocOptions()
    report = RegAllocReport(function=func.name)
    forest = find_loops(func)
    depth = {label: forest.depth_of(label) for label in func.blocks}

    for round_no in range(options.max_rounds):
        report.rounds = round_no + 1
        if options.coalesce:
            report.copies_coalesced += _coalesce(func, options, depth)
        graph = build_interference(func, compute_liveness(func), depth)
        coloring, spills = _color(graph, options.num_registers)
        if not spills:
            report.coloring = coloring
            report.colors_used = len(set(coloring.values())) if coloring else 0
            return report
        loads, stores = _spill(func, spills)
        report.spilled_registers.extend(spills)
        report.spill_loads += loads
        report.spill_stores += stores
    # give up gracefully: leave the last coloring attempt in the report
    report.coloring = coloring
    report.colors_used = len(set(coloring.values())) if coloring else 0
    return report


def allocate_module(
    module: Module, options: RegAllocOptions | None = None
) -> dict[str, RegAllocReport]:
    return {
        func.name: allocate_function(func, options)
        for func in module.functions.values()
    }


# ---------------------------------------------------------------------------
# coalescing
# ---------------------------------------------------------------------------

def _coalesce(func: Function, options: RegAllocOptions, depth) -> int:
    """Merge non-interfering copy pairs until none remain.  Returns the
    number of copies removed."""
    removed = 0
    for _ in range(8):
        graph = build_interference(func, compute_liveness(func), depth)
        parent: dict[int, int] = {}

        def find(x: int) -> int:
            root = x
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(x, x) != x:
                parent[x], x = root, parent[x]
            return root

        merged_any = False
        param_ids = {p.id for p in func.params}
        for block in func.blocks.values():
            for instr in block.instrs:
                if not isinstance(instr, Mov):
                    continue
                a = find(instr.dst.id)
                b = find(instr.src.id)
                if a == b:
                    continue
                if graph.interferes(a, b):
                    continue
                if options.conservative and not _briggs_ok(
                    graph, a, b, options.num_registers
                ):
                    continue
                # keep the parameter id if one side is a parameter (its
                # identity is fixed by the calling convention)
                keep, gone = (a, b) if b not in param_ids else (b, a)
                if gone in param_ids:
                    continue  # never merge two parameters
                graph.merge(keep, gone)
                parent[gone] = keep
                merged_any = True
        if not merged_any:
            break
        removed += _apply_union(func, parent, find)
    return removed


def _briggs_ok(graph: InterferenceGraph, a: int, b: int, k: int) -> bool:
    neighbors = graph.adjacency.get(a, set()) | graph.adjacency.get(b, set())
    significant = sum(1 for n in neighbors if graph.degree(n) >= k)
    return significant < k


def _apply_union(func: Function, parent: dict[int, int], find) -> int:
    """Rewrite the function with the union-find substitution; delete
    self-copies.  Returns the number of copies deleted."""
    cache: dict[int, VReg] = {}

    def subst(reg: VReg) -> VReg:
        root = find(reg.id)
        if root == reg.id:
            return reg
        if root not in cache:
            cache[root] = VReg(root, reg.hint)
        return cache[root]

    removed = 0
    for block in func.blocks.values():
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            mapping = {}
            for reg in set(instr.uses()):
                new_reg = subst(reg)
                if new_reg != reg:
                    mapping[reg] = new_reg
            if mapping:
                instr.replace_uses(mapping)
            dest = instr.dest
            if dest is not None:
                new_dest = subst(dest)
                if new_dest != dest:
                    _set_dest(instr, new_dest)
            if isinstance(instr, Mov) and instr.dst.id == instr.src.id:
                removed += 1
                continue
            new_instrs.append(instr)
        block.instrs = new_instrs
    return removed


def _set_dest(instr: Instr, reg: VReg) -> None:
    instr.dst = reg  # type: ignore[attr-defined]


def _rematerialize(func: Function, defs: dict[int, Instr]) -> None:
    """Re-issue the defining constant (``loadi`` or ``la``) before each use
    of the given registers, splitting their live ranges to a single
    instruction each (zero memory traffic)."""

    def fresh_def(reg_id: int, temp: VReg) -> Instr:
        template = defs[reg_id]
        if isinstance(template, LoadI):
            return LoadI(temp, template.value)
        assert isinstance(template, LoadAddr)
        return LoadAddr(temp, template.tag, template.offset)

    for block in func.blocks.values():
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            used = [r for r in set(instr.uses()) if r.id in defs]
            if used:
                mapping = {}
                for reg in used:
                    temp = func.new_vreg("rm")
                    new_instrs.append(fresh_def(reg.id, temp))
                    mapping[reg] = temp
                instr.replace_uses(mapping)
            dest = instr.dest
            if dest is not None and dest.id in defs and isinstance(
                instr, (LoadI, LoadAddr)
            ):
                continue  # original definitions become dead
            new_instrs.append(instr)
        block.instrs = new_instrs


# ---------------------------------------------------------------------------
# simplify / select
# ---------------------------------------------------------------------------

def _color(
    graph: InterferenceGraph, k: int
) -> tuple[dict[int, int], list[int]]:
    """Briggs optimistic coloring.  Returns (coloring, actual spills)."""
    degrees = {n: graph.degree(n) for n in graph.nodes()}
    adjacency = graph.adjacency
    removed: set[int] = set()
    stack: list[int] = []

    nodes = set(graph.nodes())
    while len(removed) < len(nodes):
        candidate = None
        for node in sorted(nodes - removed, key=lambda n: (degrees[n], n)):
            if degrees[node] < k:
                candidate = node
                break
        if candidate is None:
            # blocked: push the cheapest spill candidate optimistically
            def cost(n: int) -> float:
                occ = graph.occurrences.get(n, 1.0)
                return occ / max(degrees[n], 1)

            candidate = min(nodes - removed, key=lambda n: (cost(n), n))
        removed.add(candidate)
        stack.append(candidate)
        for neighbor in adjacency.get(candidate, ()):
            if neighbor not in removed:
                degrees[neighbor] -= 1

    coloring: dict[int, int] = {}
    spills: list[int] = []
    for node in reversed(stack):
        taken = {
            coloring[n] for n in adjacency.get(node, ()) if n in coloring
        }
        color = next((c for c in range(k) if c not in taken), None)
        if color is None:
            spills.append(node)
        else:
            coloring[node] = color
    return coloring, spills


# ---------------------------------------------------------------------------
# spilling
# ---------------------------------------------------------------------------

def _spill(func: Function, spills: list[int]) -> tuple[int, int]:
    """Insert spill code for each register id in ``spills``.

    Registers whose only definition is a ``loadi`` are *rematerialized*
    (the constant is re-issued before each use) instead of spilled — the
    classic Chaitin/Briggs refinement, without which hoisted constants
    turn into gratuitous memory traffic.  Everything else gets a spill
    tag: every definition is followed by a store, every use preceded by a
    load.  Returns (loads, stores) inserted.
    """
    candidates: dict[int, list[Instr] | None] = {r: [] for r in spills}
    for block in func.blocks.values():
        for instr in block.instrs:
            dest = instr.dest
            if dest is None or dest.id not in candidates:
                continue
            defs = candidates[dest.id]
            if defs is None:
                continue
            if isinstance(instr, (LoadI, LoadAddr)):
                defs.append(instr)
            else:
                # a non-constant definition disqualifies rematerialization
                candidates[dest.id] = None

    def _same_value(defs: list[Instr]) -> bool:
        first = defs[0]
        if isinstance(first, LoadI):
            return all(
                isinstance(d, LoadI) and d.value == first.value for d in defs
            )
        assert isinstance(first, LoadAddr)
        return all(
            isinstance(d, LoadAddr)
            and d.tag == first.tag
            and d.offset == first.offset
            for d in defs
        )

    remat_def: dict[int, Instr] = {
        reg_id: defs[0]
        for reg_id, defs in candidates.items()
        if defs and _same_value(defs)
    }
    remat_ids = set(remat_def)

    if remat_ids:
        _rematerialize(func, remat_def)
    spills = [s for s in spills if s not in remat_ids]
    if not spills:
        return 0, 0

    spill_tags: dict[int, Tag] = {}
    for reg_id in spills:
        tag = Tag(
            f"{func.name}.spill{reg_id}",
            TagKind.LOCAL,
            is_scalar=True,
            owner=func.name,
        )
        func.local_tags.append(tag)
        func.local_tag_sizes[tag.name] = 8
        spill_tags[reg_id] = tag

    loads = stores = 0
    spill_set = set(spills)
    for block in func.blocks.values():
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            used = [r for r in set(instr.uses()) if r.id in spill_set]
            if used:
                mapping = {}
                for reg in used:
                    temp = func.new_vreg("sp")
                    new_instrs.append(ScalarLoad(temp, spill_tags[reg.id]))
                    loads += 1
                    mapping[reg] = temp
                instr.replace_uses(mapping)
            new_instrs.append(instr)
            dest = instr.dest
            if dest is not None and dest.id in spill_set:
                new_instrs.append(ScalarStore(dest, spill_tags[dest.id]))
                stores += 1
        block.instrs = new_instrs

    # spilled parameters are defined by the call itself, not by any
    # instruction: store them once on entry (after the rewrite above so
    # these stores keep their register operands)
    entry_stores = [
        ScalarStore(param, spill_tags[param.id])
        for param in func.params
        if param.id in spill_set
    ]
    if entry_stores:
        func.entry_block().instrs[0:0] = entry_stores
        stores += len(entry_stores)
    return loads, stores

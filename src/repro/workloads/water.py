"""water — molecular-dynamics simulation (SPLASH's WATER ancestor).

Paper behaviour: the cautionary tale.  Promotion removes almost nothing
net (2 stores under MOD/REF, 67 loads under points-to — ~0.00%): "register
promotion was able to promote twenty-eight values for one loop nest.
Unfortunately, this caused the register allocator to spill values which
resulted in a performance loss compared to no register promotion."

The miniature accumulates 28 global virial/energy components inside a
pair-interaction loop whose body already keeps a dozen distance/force
temporaries live; on a 32-register machine the 28 promoted homes cannot
all be colored and the allocator's spill code hands most of the promoted
traffic right back.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>

#define MOLS 34
#define STEPS 18

double pos_x[MOLS];
double pos_y[MOLS];
double pos_z[MOLS];
double vel_x[MOLS];
double vel_y[MOLS];
double vel_z[MOLS];

double vxx; double vxy; double vxz;
double vyx; double vyy; double vyz;
double vzx; double vzy; double vzz;
double exx; double exy; double exz;
double eyx; double eyy; double eyz;
double ezx; double ezy; double ezz;
double fxx; double fxy; double fxz;
double fyx; double fyy; double fyz;
double fzx; double fzy; double fzz;
double pot_sum;

void init_molecules(void) {
    int i;
    for (i = 0; i < MOLS; i++) {
        pos_x[i] = (double) (i % 9) / 3.0;
        pos_y[i] = (double) (i % 7) / 4.0;
        pos_z[i] = (double) (i % 5) / 5.0;
        vel_x[i] = (double) (i % 3) / 8.0;
        vel_y[i] = (double) (i % 4) / 8.0;
        vel_z[i] = (double) (i % 6) / 8.0;
    }
}

void accumulate_virials(void) {
    int i;
    int j;
    int step;
    double dx;
    double dy;
    double dz;
    double r2;
    double inv;
    double f;
    double gx;
    double gy;
    double gz;
    double wx;
    double wy;
    double wz;
    double kin;
    for (step = 0; step < STEPS; step++) {
        for (i = 0; i + 1 < MOLS; i++) {
            j = i + 1;
            dx = pos_x[i] - pos_x[j];
            dy = pos_y[i] - pos_y[j];
            dz = pos_z[i] - pos_z[j];
            r2 = dx * dx + dy * dy + dz * dz + 0.25;
            inv = 1.0 / r2;
            f = inv * inv - 0.5 * inv;
            gx = f * dx;
            gy = f * dy;
            gz = f * dz;
            wx = vel_x[i] + gx;
            wy = vel_y[i] + gy;
            wz = vel_z[i] + gz;
            kin = wx * wx + wy * wy + wz * wz;
            vxx = vxx + gx * dx; vxy = vxy + gx * dy; vxz = vxz + gx * dz;
            vyx = vyx + gy * dx; vyy = vyy + gy * dy; vyz = vyz + gy * dz;
            vzx = vzx + gz * dx; vzy = vzy + gz * dy; vzz = vzz + gz * dz;
            exx = exx + wx * dx; exy = exy + wx * dy; exz = exz + wx * dz;
            eyx = eyx + wy * dx; eyy = eyy + wy * dy; eyz = eyz + wy * dz;
            ezx = ezx + wz * dx; ezy = ezy + wz * dy; ezz = ezz + wz * dz;
            fxx = fxx + kin * dx; fxy = fxy + kin * dy; fxz = fxz + kin * dz;
            fyx = fyx + gx * gy; fyy = fyy + gy * gz; fyz = fyz + gz * gx;
            fzx = fzx + wx * gy; fzy = fzy + wy * gz; fzz = fzz + wz * gx;
            pot_sum = pot_sum + f + kin;
        }
    }
}

int main(void) {
    double trace;
    init_molecules();
    accumulate_virials();
    trace = vxx + vyy + vzz + exx + eyy + ezz + fxx + fyy + fzz;
    printf("water trace=%f pot=%f vxy=%f fzx=%f\n",
           trace, pot_sum, vxy, fzx);
    return 0;
}
"""

register(Workload(
    name="water",
    description="molecular dynamics accumulating 28 virial components",
    source=SOURCE,
    paper_behaviour="28 values promoted in one loop nest; register "
                    "pressure makes the allocator spill, netting ~0",
))

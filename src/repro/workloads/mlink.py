"""mlink — genetic-linkage analysis (paper: 28,553 lines; FASTLINK family).

Paper behaviour: the biggest promotion win in the suite — 57.4% of stores
removed with MOD/REF and 59.9% with points-to; "register promotion
removed 2.8 million loads from one function".  Most of the improvement
comes from plain global scalars (never address-taken) updated inside deep
loop nests: those promote under either analysis.

The miniature also reproduces the paper's T1/X2 example verbatim in
spirit: ``Tl``'s address is taken elsewhere, so under MOD/REF the stores
through the pointer ``X2`` might modify it and it stays in memory; the
points-to analysis proves ``X2`` only reaches the heap block, and ``Tl``
promotes — which is why the pointer rows beat the modref rows slightly.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>
#include <stdlib.h>

#define PEOPLE 24
#define LOCI 6
#define PASSES 40

double like_total;
double recomb_sum;
int eval_count;
int path_count;

double Tl;          /* address taken in setup(): ambiguous under MOD/REF */
double *X1;
double *X2;

double theta[LOCI];
double genarray[PEOPLE][LOCI];

void setup(int seed) {
    int i;
    int j;
    int v;
    double *p;
    p = &Tl;            /* the address escape that blocks MOD/REF */
    *p = 0.25;
    v = seed;
    for (i = 0; i < PEOPLE; i++) {
        for (j = 0; j < LOCI; j++) {
            v = (v * 7621 + 1) % 32768;
            genarray[i][j] = (double) (v % 100) / 100.0;
        }
    }
    for (j = 0; j < LOCI; j++) {
        theta[j] = 0.01 + 0.03 * (double) j;
    }
    X1 = (double *) malloc(PEOPLE * 8);
    X2 = (double *) malloc(PEOPLE * 8);
    for (i = 0; i < PEOPLE; i++) {
        X1[i] = 1.0 + (double) i / 10.0;
    }
}

void scale_likelihoods(void) {
    int i;
    /* the paper's example: Tl is read in a loop containing stores
       through X2; only points-to analysis can promote Tl here */
    for (i = 0; i < PEOPLE; i++) {
        X2[i] = Tl * X1[i];
        Tl = Tl * 0.999 + 0.0001;
    }
}

void traverse_pedigree(int pass) {
    int person;
    int locus;
    double g;
    for (person = 0; person < PEOPLE; person++) {
        for (locus = 0; locus < LOCI; locus++) {
            g = genarray[person][locus];
            like_total = like_total + g * theta[locus];
            recomb_sum = recomb_sum + g * (1.0 - theta[locus]);
            eval_count = eval_count + 1;
            if (g > 0.5) {
                path_count = path_count + 1;
            }
        }
    }
    if (pass % 16 == 15) {
        scale_likelihoods();
    }
}

int main(void) {
    int pass;
    setup(11);
    for (pass = 0; pass < PASSES; pass++) {
        traverse_pedigree(pass);
    }
    printf("mlink like=%f recomb=%f evals=%d paths=%d Tl=%f X2=%f\n",
           like_total, recomb_sum, eval_count, path_count, Tl, X2[3]);
    return 0;
}
"""

register(Workload(
    name="mlink",
    description="genetic linkage analysis (FASTLINK-style kernels)",
    source=SOURCE,
    paper_behaviour="largest win: ~57-60% of stores removed; pointer "
                    "analysis promotes Tl that MOD/REF cannot",
))

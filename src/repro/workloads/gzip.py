"""gzip — encode and decode, two rows in the paper's figures.

Paper behaviour: encoding improves (1.75% of total operations with
MOD/REF, 2.15% with points-to — CRC and match-bookkeeping globals promote
in the hot deflate loop); decoding is flat to marginally *negative*
(-0.02%): like zlib, all bit-stream state lives in a state struct reached
through a pointer, so nothing in the hot loops is an explicitly-named
scalar, while a header-check loop that runs once per block still pays the
landing-pad/exit traffic promotion adds.

One miniature source serves both rows, selected by the ``DECODE`` macro.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>

#define INPUT_LEN 5000
#define WINDOW 64

unsigned char input[INPUT_LEN];
unsigned char packed[2 * INPUT_LEN];
unsigned char unpacked[INPUT_LEN + WINDOW];

/* zlib-style: bit-stream state lives in a struct behind a pointer, so
   its fields are pointer-based references, never promotable scalars */
struct bitstream {
    int pos;
    int bits;
    int count;
};

struct bitstream enc_state;
struct bitstream dec_state;
struct bitstream *bs;

int out_len;
int crc;
int matches_found;
int literals;
int bits_sent;
int header_checks;

void make_input(void) {
    int i;
    int v;
    v = 31;
    for (i = 0; i < INPUT_LEN; i++) {
        v = (v * 75 + 74) % 65537;
        if (v % 4 == 0 && i > WINDOW) {
            input[i] = input[i - WINDOW];
        } else {
            input[i] = 'a' + v % 20;
        }
    }
}

void put_bits(int value, int n) {
    struct bitstream *p;
    p = bs;
    p->bits = p->bits | (value << p->count);
    p->count = p->count + n;
    while (p->count >= 8) {
        packed[p->pos] = p->bits & 255;
        p->pos = p->pos + 1;
        p->bits = p->bits >> 8;
        p->count = p->count - 8;
    }
}

void encode(void) {
    int i;
    int j;
    int len;
    int best_len;
    int best_off;
    bs = &enc_state;
    bs->pos = 0;
    bs->bits = 0;
    bs->count = 0;
    i = 0;
    while (i < INPUT_LEN) {
        best_len = 0;
        best_off = 0;
        for (j = 1; j <= 32 && j <= i; j++) {
            len = 0;
            while (len < 15 && i + len < INPUT_LEN
                   && input[i + len - j] == input[i + len]) {
                len = len + 1;
            }
            if (len > best_len) {
                best_len = len;
                best_off = j;
            }
        }
        crc = (crc * 31 + input[i]) % 65521;
        if (best_len >= 3 && best_off <= WINDOW) {
            put_bits(((best_len << 6 | best_off) << 1) | 1, 11);
            matches_found = matches_found + 1;
            bits_sent = bits_sent + 11;
            i = i + best_len;
        } else {
            put_bits(input[i] << 1, 9);
            literals = literals + 1;
            bits_sent = bits_sent + 9;
            i = i + 1;
        }
    }
    put_bits(0, 1);
    put_bits(0, 8);
    put_bits(0, 7);
    out_len = enc_state.pos;
}

int get_bits(int n) {
    struct bitstream *p;
    int value;
    p = bs;
    while (p->count < n) {
        p->bits = p->bits | (packed[p->pos] << p->count);
        p->pos = p->pos + 1;
        p->count = p->count + 8;
    }
    value = p->bits & ((1 << n) - 1);
    p->bits = p->bits >> n;
    p->count = p->count - n;
    return value;
}

void make_packed_stream(void) {
    /* synthesize a valid token stream directly (cheap, locals only) */
    int k;
    bs = &enc_state;
    bs->pos = 0;
    bs->bits = 0;
    bs->count = 0;
    for (k = 0; k < INPUT_LEN; k++) {
        if (k < WINDOW + 1 || k % 3 != 0) {
            put_bits(0, 1);
            put_bits('a' + k % 20, 8);
        } else {
            put_bits(1, 1);
            put_bits(k % WINDOW + 1, 6);
            put_bits(5, 4);
            k = k + 4;  /* the copy token covers 5 positions */
        }
    }
    put_bits(0, 1);
    put_bits(0, 8);
    put_bits(0, 7);
    out_len = enc_state.pos;
}

int check_header(void) {
    int k;
    /* runs once per decoded block: the promoted counter costs as much
       in the landing pad and exit as it saves in the body */
    for (k = 0; k < 1; k++) {
        header_checks = header_checks + 1;
    }
    return header_checks;
}

int decode(void) {
    int pos;
    int flag;
    int off;
    int len;
    int k;
    int ch;
    check_header();
    bs = &dec_state;
    bs->pos = 0;
    bs->bits = 0;
    bs->count = 0;
    pos = 0;
    while (pos < INPUT_LEN) {
        flag = get_bits(1);
        if (flag) {
            off = get_bits(6);
            len = get_bits(4);
            for (k = 0; k < len; k++) {
                unpacked[pos] = unpacked[pos - off];
                pos = pos + 1;
            }
        } else {
            ch = get_bits(8);
            if (ch == 0 && pos > 0) {
                return pos;
            }
            unpacked[pos] = ch;
            pos = pos + 1;
        }
    }
    return pos;
}

int main(void) {
    int decoded;
    int pass;
#ifdef DECODE
    make_packed_stream();
    decoded = 0;
    for (pass = 0; pass < 10; pass++) {
        decoded = decode();
    }
    printf("gzip(dec) decoded=%d headers=%d sample=%c\n",
           decoded, header_checks, unpacked[10]);
#else
    make_input();
    encode();
    printf("gzip(enc) out=%d crc=%d matches=%d literals=%d bits=%d\n",
           out_len, crc, matches_found, literals, bits_sent);
#endif
    return 0;
}
"""

register(Workload(
    name="gzip_enc",
    description="LZ-style encoder (gzip compression path)",
    source=SOURCE,
    paper_behaviour="1.75%/2.15% of total operations removed",
))

register(Workload(
    name="gzip_dec",
    description="LZ-style decoder (gzip decompression path)",
    source=SOURCE,
    paper_behaviour="flat to marginally negative (-0.02%)",
    defines={"DECODE": "1"},
))

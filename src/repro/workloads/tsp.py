"""tsp — a traveling salesman problem (paper: 760 lines).

Paper behaviour: register promotion finds *nothing* — 0.00% of stores and
loads removed under both analyses.  The miniature reproduces why: all hot
state lives in local scalars (register-resident from the start) and local
arrays (not scalars, never promotable); no global scalar is referenced
inside a loop.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>

#define N 40

int dist_table[N][N];

void build_distances(int seed) {
    int i;
    int j;
    int v;
    v = seed;
    for (i = 0; i < N; i++) {
        for (j = 0; j < N; j++) {
            v = (v * 1103 + 12345) % 10007;
            if (i == j) {
                dist_table[i][j] = 0;
            } else {
                dist_table[i][j] = 1 + (v % 97);
            }
        }
    }
}

int tour_length(int tour[], int n) {
    int total;
    int k;
    total = 0;
    for (k = 0; k + 1 < n; k++) {
        total = total + dist_table[tour[k]][tour[k + 1]];
    }
    total = total + dist_table[tour[n - 1]][tour[0]];
    return total;
}

int nearest_neighbor(int tour[], int start) {
    int used[N];
    int i;
    int step;
    int current;
    int best;
    int best_d;
    int d;
    for (i = 0; i < N; i++) {
        used[i] = 0;
    }
    tour[0] = start;
    used[start] = 1;
    current = start;
    for (step = 1; step < N; step++) {
        best = -1;
        best_d = 1000000;
        for (i = 0; i < N; i++) {
            if (!used[i]) {
                d = dist_table[current][i];
                if (d < best_d) {
                    best_d = d;
                    best = i;
                }
            }
        }
        tour[step] = best;
        used[best] = 1;
        current = best;
    }
    return tour_length(tour, N);
}

int improve_two_opt(int tour[]) {
    int improved;
    int i;
    int j;
    int delta;
    int tmp;
    int rounds;
    rounds = 0;
    improved = 1;
    while (improved && rounds < 6) {
        improved = 0;
        rounds = rounds + 1;
        for (i = 1; i + 1 < N; i++) {
            for (j = i + 1; j < N; j++) {
                delta = dist_table[tour[i - 1]][tour[j]]
                      + dist_table[tour[i]][tour[(j + 1) % N]]
                      - dist_table[tour[i - 1]][tour[i]]
                      - dist_table[tour[j]][tour[(j + 1) % N]];
                if (delta < 0) {
                    tmp = tour[i];
                    tour[i] = tour[j];
                    tour[j] = tmp;
                    improved = 1;
                }
            }
        }
    }
    return tour_length(tour, N);
}

int main(void) {
    int tour[N];
    int start;
    int before;
    int after;
    int best_after;
    best_after = 1000000;
    build_distances(7);
    for (start = 0; start < 8; start++) {
        before = nearest_neighbor(tour, start);
        after = improve_two_opt(tour);
        if (after < best_after) {
            best_after = after;
        }
        if (after > before) {
            printf("regression at %d\n", start);
        }
    }
    printf("tsp best=%d\n", best_after);
    return 0;
}
"""

register(Workload(
    name="tsp",
    description="a traveling salesman problem",
    source=SOURCE,
    paper_behaviour="no opportunities: 0.00% stores/loads removed",
))

"""Importing this module registers all 14 workloads (Figure 4)."""

from . import (  # noqa: F401
    allroots,
    bc,
    bison,
    clean_prog,
    compress,
    dhrystone,
    fft,
    go,
    gzip,
    indent,
    mlink,
    tsp,
    water,
)

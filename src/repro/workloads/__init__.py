"""The 14-program benchmark suite (the paper's Figure 4), as miniatures
written in the supported C subset."""

from .base import Workload, all_workloads, get_workload, register, workload_names

__all__ = [
    "Workload",
    "all_workloads",
    "get_workload",
    "register",
    "workload_names",
]

"""compress — file compression (the SPEC 129.compress ancestor).

Paper behaviour: a clear promotion win concentrated in the hash/ratio
bookkeeping globals of the compression loop, insensitive to analysis
precision.  The miniature implements a small LZW-flavored compressor over
a synthetic buffer with the classic compress-style globals (``in_count``,
``out_count``, ``free_ent``, ``checkpoint``) hot in the main loop.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>

#define HSIZE 1024
#define INPUT_LEN 6000
#define MAXCODE 512

int htab[HSIZE];
int codetab[HSIZE];
unsigned char input[INPUT_LEN];

int in_count;
int out_count;
int free_ent;
int checkpoint;
int clear_count;

void make_input(void) {
    int i;
    int v;
    v = 99;
    for (i = 0; i < INPUT_LEN; i++) {
        v = (v * 2147001325 + 715136305) % 65536;
        if (v < 0) {
            v = -v;
        }
        input[i] = (v >> 3) % 17 + 'a';
    }
}

void clear_tables(void) {
    int i;
    for (i = 0; i < HSIZE; i++) {
        htab[i] = -1;
        codetab[i] = 0;
    }
    free_ent = 257;
    clear_count = clear_count + 1;
}

void compress_buffer(void) {
    int i;
    int ent;
    int c;
    int fcode;
    int h;
    int probes;
    ent = input[0];
    in_count = 1;
    for (i = 1; i < INPUT_LEN; i++) {
        c = input[i];
        in_count = in_count + 1;
        fcode = (c << 9) + ent;
        h = (c << 3 ^ ent) % HSIZE;
        if (h < 0) {
            h = -h;
        }
        probes = 0;
        while (htab[h] != fcode && htab[h] != -1 && probes < 8) {
            h = (h + 1) % HSIZE;
            probes = probes + 1;
        }
        if (htab[h] == fcode) {
            ent = codetab[h];
        } else {
            out_count = out_count + 1;
            if (free_ent < MAXCODE) {
                htab[h] = fcode;
                codetab[h] = free_ent;
                free_ent = free_ent + 1;
            } else {
                if (in_count > checkpoint) {
                    checkpoint = in_count + 1000;
                    clear_tables();
                }
            }
            ent = c;
        }
    }
    out_count = out_count + 1;
}

int main(void) {
    int pass;
    make_input();
    checkpoint = 1000;
    for (pass = 0; pass < 3; pass++) {
        clear_tables();
        compress_buffer();
    }
    printf("compress in=%d out=%d free=%d clears=%d\n",
           in_count, out_count, free_ent, clear_count);
    return 0;
}
"""

register(Workload(
    name="compress",
    description="LZW-style file compression kernel",
    source=SOURCE,
    paper_behaviour="solid store removal in the hash bookkeeping globals",
))

"""dhrystone — the classic synthetic integer benchmark.

Paper behaviour: promotion finds nothing to remove (0.00% of stores and
loads) and *total operations get marginally worse*: "in dhrystone, values
were promoted in a loop that always executed once", so the landing-pad
load and exit store cost as much as the references they replaced.  The
miniature reproduces the pattern: procedures whose bodies contain a
one-trip loop referencing globals, called from the measurement loop.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>

#define RUNS 1500

int Int_Glob;
int Bool_Glob;
char Ch_1_Glob;
int Arr_1_Glob[50];

int Proc_6(int val) {
    int run;
    int result;
    result = val;
    /* a loop that always executes exactly once (the dhrystone idiom):
       promotion hoists Int_Glob around a single iteration */
    for (run = 0; run < 1; run++) {
        Int_Glob = Int_Glob + val;
        if (Int_Glob > 100000) {
            Int_Glob = val;
        }
        result = result + Int_Glob;
    }
    return result;
}

int Proc_7(int a, int b) {
    return a + b + 2;
}

void Proc_8(int index, int value) {
    int i;
    for (i = 0; i < 1; i++) {
        Arr_1_Glob[index] = value;
        Bool_Glob = Arr_1_Glob[index] > value - 1;
    }
}

int Func_1(int ch1, int ch2) {
    if (ch1 == ch2) {
        Ch_1_Glob = ch1;
        return 0;
    }
    return 1;
}

int main(void) {
    int run;
    int Int_1;
    int Int_2;
    int Int_3;
    Int_1 = 0;
    for (run = 1; run <= RUNS; run++) {
        Int_2 = Proc_6(run % 7);
        Int_3 = Proc_7(Int_2, run % 13);
        Proc_8(run % 50, Int_3);
        Int_1 = Int_1 + Func_1(run % 3 + 'A', 'B');
    }
    printf("dhrystone Int_Glob=%d Bool=%d Ch=%c sum=%d\n",
           Int_Glob, Bool_Glob, Ch_1_Glob, Int_1);
    return 0;
}
"""

register(Workload(
    name="dhrystone",
    description="synthetic integer benchmark with one-trip loops",
    source=SOURCE,
    paper_behaviour="0.00% stores/loads removed; total ops marginally "
                    "worse (promotion in a loop that executes once)",
))

"""Workload registry.

The paper evaluates on 14 C programs (Figure 4).  We cannot ship SPEC
sources, so each workload here is a faithful *miniature*: a program in our
C subset, 60-200 lines, engineered to exhibit the same memory-access
structure the paper reports for its namesake — which globals live in hot
loops, whether address-taken scalars alias pointer stores, whether
promotion finds anything at all (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Workload:
    """One benchmark program."""

    name: str
    description: str
    source: str
    #: what the paper reports for this program, as a hint to readers
    paper_behaviour: str = ""
    defines: dict[str, str] = field(default_factory=dict)

    @property
    def line_count(self) -> int:
        return len(self.source.strip().splitlines())


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


def all_workloads() -> list[Workload]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def workload_names() -> list[str]:
    _ensure_loaded()
    return list(_REGISTRY)


def _ensure_loaded() -> None:
    if _REGISTRY:
        return
    # importing the program modules populates the registry
    from . import programs  # noqa: F401

"""allroots — polynomial root finder (paper: 215 lines, the smallest
program in the suite).

Paper behaviour: nothing at all — 11 stores executed in total in the
paper's run, 0 removed.  The miniature is likewise all-local: polynomial
evaluation and Newton/bisection refinement with every hot value in
register-resident locals; promotion has no memory-resident scalar to
work on inside the loops.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>
#include <math.h>

#define DEGREE 5

double coeffs[DEGREE + 1];

double eval_poly(double x) {
    double acc;
    int k;
    acc = coeffs[DEGREE];
    for (k = DEGREE - 1; k >= 0; k--) {
        acc = acc * x + coeffs[k];
    }
    return acc;
}

double bisect(double lo, double hi) {
    double mid;
    double fmid;
    double flo;
    int iter;
    flo = eval_poly(lo);
    for (iter = 0; iter < 40; iter++) {
        mid = (lo + hi) / 2.0;
        fmid = eval_poly(mid);
        if (fmid == 0.0) {
            return mid;
        }
        if ((flo < 0.0 && fmid < 0.0) || (flo > 0.0 && fmid > 0.0)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return (lo + hi) / 2.0;
}

int main(void) {
    double x;
    double prev;
    double fx;
    double fprev;
    double root;
    int roots_found;
    /* p(x) = (x-1)(x-2)(x-3)(x+1)(x+2) expanded */
    coeffs[5] = 1.0;
    coeffs[4] = -3.0;
    coeffs[3] = -5.0;
    coeffs[2] = 15.0;
    coeffs[1] = 4.0;
    coeffs[0] = -12.0;
    roots_found = 0;
    prev = -4.0;
    fprev = eval_poly(prev);
    for (x = -4.0 + 0.125; x <= 4.0; x += 0.125) {
        fx = eval_poly(x);
        if ((fprev < 0.0 && fx >= 0.0) || (fprev > 0.0 && fx <= 0.0)) {
            root = bisect(prev, x);
            roots_found = roots_found + 1;
            printf("root %d near %f\n", roots_found, root);
        }
        prev = x;
        fprev = fx;
    }
    printf("allroots found=%d\n", roots_found);
    return 0;
}
"""

register(Workload(
    name="allroots",
    description="polynomial root finder",
    source=SOURCE,
    paper_behaviour="no effect: the program is all-local",
))

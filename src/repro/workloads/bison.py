"""bison — the LR(1) parser generator.

Paper behaviour: essentially flat, slightly *negative* in places
(Figure 5 shows -750 total operations under points-to): "in bison, values
were promoted that were only accessed on an error condition", so the
landing-pad loads and exit stores run on every loop entry while the body
touches the value almost never.  The miniature's table-construction loops
reference ``error_count``/``conflict_count`` only on rare inconsistent
entries.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>

#define STATES 60
#define SYMBOLS 20
#define PASSES 20

int action[STATES][SYMBOLS];
int goto_table[STATES][SYMBOLS];

int error_count;
int conflict_count;
int useful_states;

void seed_tables(void) {
    int s;
    int t;
    int v;
    v = 17;
    for (s = 0; s < STATES; s++) {
        for (t = 0; t < SYMBOLS; t++) {
            v = (v * 69069 + 1) % 32768;
            action[s][t] = v % 50 - 2;
            goto_table[s][t] = (v / 7) % STATES;
        }
    }
}

void check_tables(void) {
    int s;
    int t;
    for (s = 0; s < STATES; s++) {
        for (t = 0; t < SYMBOLS; t++) {
            /* promoted, but only touched on the rare error paths */
            if (action[s][t] == -1) {
                error_count = error_count + 1;
            }
            if (action[s][t] == -2 && goto_table[s][t] == 0) {
                conflict_count = conflict_count + 1;
            }
        }
    }
}

int propagate(void) {
    int s;
    int t;
    int reachable;
    int frontier;
    reachable = 1;
    frontier = 0;
    for (s = 0; s < STATES; s++) {
        for (t = 0; t < SYMBOLS; t++) {
            if (action[s][t] > 0 && goto_table[s][t] == (s + 1) % STATES) {
                frontier = frontier + 1;
            }
        }
        if (frontier > 0) {
            reachable = reachable + 1;
            frontier = 0;
        }
    }
    return reachable;
}

int main(void) {
    int pass;
    seed_tables();
    for (pass = 0; pass < PASSES; pass++) {
        check_tables();
        useful_states = propagate();
    }
    printf("bison errors=%d conflicts=%d useful=%d\n",
           error_count, conflict_count, useful_states);
    return 0;
}
"""

register(Workload(
    name="bison",
    description="LR(1) parser generator table checks",
    source=SOURCE,
    paper_behaviour="~0: promoted values only touched on error paths; "
                    "promotion can be a marginal net loss",
))

"""fft — fast Fourier transform kernels.

Paper behaviour: small scalar-promotion gains that *require* pointer
analysis (0.03% of stores with MOD/REF vs 0.83% with points-to: the
``T1``/``X2`` loop nest quoted in section 5 only promotes once analysis
proves the stores through ``X2`` cannot modify the address-taken ``T1``),
and the one program where pointer-based promotion (section 3.3) wins
measurably: the ``B[i] += A[i][j]`` access pattern with a loop-invariant
base address.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>
#include <stdlib.h>

#define N1 8
#define N3 6
#define NB 4
#define DIM_X 12
#define DIM_Y 48

double T1;            /* address-taken: aliased by X2 under MOD/REF */
double *X1;
double *X2;
double *X3;

double A[DIM_X][DIM_Y];
double B[DIM_X];

int twiddle_count;

void init(void) {
    int i;
    int j;
    double *anchor;
    anchor = &T1;
    *anchor = 1.0;
    X1 = (double *) malloc(N1 * N3 * NB * 2 * 8);
    X2 = (double *) malloc(N1 * N3 * NB * 2 * 8);
    X3 = (double *) malloc(N1 * N3 * NB * 8);
    for (i = 0; i < N1 * N3 * NB * 2; i++) {
        X1[i] = 1.0 + (double) (i % 7) / 8.0;
        X2[i] = 0.0;
    }
    for (i = 0; i < N1 * N3 * NB; i++) {
        X3[i] = 1.0 + (double) (i % 5) / 16.0;
    }
    for (i = 0; i < DIM_X; i++) {
        B[i] = 0.0;
        for (j = 0; j < DIM_Y; j++) {
            A[i][j] = (double) ((i * 31 + j * 17) % 100) / 100.0;
        }
    }
}

/* the loop nest quoted in section 5: T1 is promotable only with
   points-to analysis showing X2 cannot alias it */
void scale_pass(int begin, int end, int kt) {
    int i;
    int j;
    int k;
    int index3;
    int index1;
    for (i = begin; i < end; i++) {
        for (j = 0; j < N3; j++) {
            for (k = 0; k < N1; k++) {
                index3 = (i * NB + j) * N1 + k;
                index1 = (i * N3 + j) * N1 * 2 + k;
                T1 = X3[index3] * (double) kt;
                X2[index1] = T1 * X1[index1];
                X2[index1 + N1] = T1 * X1[index1 + N1];
                twiddle_count = twiddle_count + 1;
            }
        }
    }
}

/* the Figure 3 pattern: B[i] is invariant in the inner loop and only
   reachable through the invariant address &B[i] — pointer-based
   promotion turns it into an accumulator register */
void row_reduce(void) {
    int i;
    int j;
    for (i = 0; i < DIM_X; i++) {
        for (j = 0; j < DIM_Y; j++) {
            B[i] += A[i][j];
        }
    }
}

int main(void) {
    int pass;
    double checksum;
    int i;
    init();
    for (pass = 0; pass < 10; pass++) {
        scale_pass(0, NB, pass + 1);
        row_reduce();
    }
    checksum = 0.0;
    for (i = 0; i < DIM_X; i++) {
        checksum = checksum + B[i];
    }
    printf("fft checksum=%f T1=%f X2=%f twiddles=%d\n",
           checksum, T1, X2[5], twiddle_count);
    return 0;
}
"""

register(Workload(
    name="fft",
    description="FFT-style kernels with pointer-aliased temporaries",
    source=SOURCE,
    paper_behaviour="pointer analysis required for T1 (0.03% -> 0.83% of "
                    "stores); the one measurable pointer-based promotion win",
))

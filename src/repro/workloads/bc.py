"""bc — the GNU calculator language (paper: 7,583 lines).

Paper behaviour: a strong win that *grows with pointer analysis*: 8.83%
of stores removed under MOD/REF but 27.52% under points-to (the biggest
precision gap in Figure 6).  The miniature interprets a small bytecode
program for a stack calculator.  The VM registers (``sp``, ``acc``,
``steps``) are plain globals (promotable under either analysis), while
the scale/base registers have their addresses taken for a register-file
pointer — under MOD/REF every store through that pointer aliases them,
and only points-to analysis (seeing it reach just the heap scratchpad)
lets them promote in the dispatch loop.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>
#include <stdlib.h>

#define STACK_DEPTH 64
#define PROG_LEN 24
#define RUNS 400

int stack[STACK_DEPTH];
int program[PROG_LEN];

int sp;
int acc;
int steps;

int scale_reg;     /* address taken: ambiguous under MOD/REF */
int ibase_reg;     /* address taken: ambiguous under MOD/REF */
int *scratch;      /* points only at the heap under points-to */

void load_program(void) {
    /* push 7; push 5; add; push 3; mul; dup; sub-1; mod; done-ish loop */
    program[0] = 1; program[1] = 7;
    program[2] = 1; program[3] = 5;
    program[4] = 2;
    program[5] = 1; program[6] = 3;
    program[7] = 3;
    program[8] = 5;
    program[9] = 1; program[10] = 1;
    program[11] = 4;
    program[12] = 6;
    program[13] = 1; program[14] = 9;
    program[15] = 2;
    program[16] = 7;
    program[17] = 1; program[18] = 2;
    program[19] = 3;
    program[20] = 8;
    program[21] = 0; program[22] = 0; program[23] = 0;
}

void publish(int *cell) {
    /* gives the analyses a real address escape to reason about */
    *cell = *cell + 1;
}

int run_program(void) {
    int pc;
    int op;
    int a;
    int b;
    pc = 0;
    while (pc < PROG_LEN) {
        op = program[pc];
        steps = steps + 1;
        scale_reg = scale_reg + (op == 8);
        ibase_reg = ibase_reg ^ op;
        scratch[op % 8] = pc;
        if (op == 0) {
            pc = PROG_LEN;
        } else if (op == 1) {
            stack[sp] = program[pc + 1];
            sp = sp + 1;
            pc = pc + 2;
        } else if (op == 2) {
            b = stack[sp - 1]; a = stack[sp - 2];
            stack[sp - 2] = a + b; sp = sp - 1; pc = pc + 1;
        } else if (op == 3) {
            b = stack[sp - 1]; a = stack[sp - 2];
            stack[sp - 2] = a * b; sp = sp - 1; pc = pc + 1;
        } else if (op == 4) {
            b = stack[sp - 1]; a = stack[sp - 2];
            stack[sp - 2] = a - b; sp = sp - 1; pc = pc + 1;
        } else if (op == 5) {
            stack[sp] = stack[sp - 1]; sp = sp + 1; pc = pc + 1;
        } else if (op == 6) {
            b = stack[sp - 1]; a = stack[sp - 2];
            if (b == 0) { b = 1; }
            stack[sp - 2] = a % b; sp = sp - 1; pc = pc + 1;
        } else if (op == 7) {
            acc = acc + stack[sp - 1]; pc = pc + 1;
        } else {
            acc = acc ^ stack[sp - 1]; sp = sp - 1; pc = pc + 1;
        }
    }
    return acc;
}

int main(void) {
    int run;
    int result;
    scratch = (int *) malloc(8 * 4);
    load_program();
    result = 0;
    for (run = 0; run < RUNS; run++) {
        sp = 0;
        result = run_program();
    }
    publish(&scale_reg);
    publish(&ibase_reg);
    printf("bc result=%d steps=%d scale=%d ibase=%d\n",
           result, steps, scale_reg, ibase_reg);
    return 0;
}
"""

register(Workload(
    name="bc",
    description="calculator language bytecode interpreter",
    source=SOURCE,
    paper_behaviour="8.83% of stores removed with MOD/REF, 27.52% with "
                    "points-to (the largest precision gap)",
))

"""clean — graphics/scan-conversion style pass over raster rows.

Paper behaviour: a modest, analysis-insensitive win — 3.28% of stores
removed under both MOD/REF and points-to.  The miniature keeps a couple
of global counters hot in pixel loops (promotable under any analysis)
while the bulk of the traffic is raster-array loads and stores that
promotion cannot touch.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>

#define WIDTH 64
#define HEIGHT 48

int raster[HEIGHT][WIDTH];
int out[HEIGHT][WIDTH];

int pixels_written;
int spans_merged;
int threshold;

void synthesize(int seed) {
    int x;
    int y;
    int v;
    v = seed;
    for (y = 0; y < HEIGHT; y++) {
        for (x = 0; x < WIDTH; x++) {
            v = (v * 1103515 + 12345) % 100003;
            raster[y][x] = v % 256;
        }
    }
}

void smooth_rows(void) {
    int x;
    int y;
    int acc;
    for (y = 0; y < HEIGHT; y++) {
        for (x = 1; x + 1 < WIDTH; x++) {
            acc = raster[y][x - 1] + raster[y][x] + raster[y][x + 1];
            out[y][x] = acc / 3;
            pixels_written = pixels_written + 1;
        }
        out[y][0] = raster[y][0];
        out[y][WIDTH - 1] = raster[y][WIDTH - 1];
        pixels_written = pixels_written + 2;
    }
}

void merge_spans(void) {
    int x;
    int y;
    int run;
    for (y = 0; y < HEIGHT; y++) {
        run = 0;
        for (x = 0; x < WIDTH; x++) {
            if (out[y][x] > threshold) {
                run = run + 1;
            } else {
                if (run > 2) {
                    spans_merged = spans_merged + 1;
                }
                run = 0;
            }
        }
        if (run > 2) {
            spans_merged = spans_merged + 1;
        }
    }
}

int main(void) {
    int frame;
    threshold = 128;
    for (frame = 0; frame < 12; frame++) {
        synthesize(frame + 3);
        smooth_rows();
        merge_spans();
    }
    printf("clean pixels=%d spans=%d sample=%d\n",
           pixels_written, spans_merged, out[7][9]);
    return 0;
}
"""

register(Workload(
    name="clean",
    description="graphics scan pass over raster rows",
    source=SOURCE,
    paper_behaviour="~3.3% of stores removed, identical under both analyses",
))

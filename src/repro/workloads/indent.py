"""indent — a prettyprinter for C programs (paper: 5,955 lines).

Paper behaviour: a steady mid-size win — 3.98% of stores removed under
both analyses, ~0.4% of total operations.  The miniature scans a buffer
of C-ish text, tracking the formatter state (paren depth, brace level,
column, blank-line count) in global scalars that promote in the scan
loops.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>

#define SRC_LEN 4000

char src[SRC_LEN];
char dst[2 * SRC_LEN];

int paren_depth;
int brace_level;
int column;
int out_pos;
int in_comment;
int lines_emitted;

void make_source(void) {
    int i;
    int v;
    v = 5;
    for (i = 0; i < SRC_LEN; i++) {
        v = (v * 131 + 7) % 997;
        if (v < 100) {
            src[i] = '{';
        } else if (v < 200) {
            src[i] = '}';
        } else if (v < 300) {
            src[i] = '(';
        } else if (v < 400) {
            src[i] = ')';
        } else if (v < 480) {
            src[i] = ';';
        } else if (v < 520) {
            src[i] = '\n';
        } else {
            src[i] = 'a' + v % 26;
        }
    }
    src[SRC_LEN - 1] = '\n';
}

void put(int ch) {
    dst[out_pos] = ch;
    out_pos = out_pos + 1;
    if (ch == '\n') {
        column = 0;
        lines_emitted = lines_emitted + 1;
    } else {
        column = column + 1;
    }
}

void reindent(void) {
    int i;
    int ch;
    int k;
    for (i = 0; i < SRC_LEN; i++) {
        ch = src[i];
        if (ch == '{') {
            brace_level = brace_level + 1;
            put(ch);
            put('\n');
        } else if (ch == '}') {
            if (brace_level > 0) {
                brace_level = brace_level - 1;
            }
            put(ch);
        } else if (ch == '(') {
            paren_depth = paren_depth + 1;
            put(ch);
        } else if (ch == ')') {
            if (paren_depth > 0) {
                paren_depth = paren_depth - 1;
            }
            put(ch);
        } else if (ch == ';') {
            put(ch);
            if (paren_depth == 0) {
                put('\n');
                for (k = 0; k < brace_level && k < 8; k++) {
                    put(' ');
                }
            }
        } else {
            put(ch);
        }
        if (column > 72) {
            put('\n');
        }
    }
}

int main(void) {
    make_source();
    reindent();
    printf("indent lines=%d out=%d depth=%d level=%d\n",
           lines_emitted, out_pos, paren_depth, brace_level);
    return 0;
}
"""

register(Workload(
    name="indent",
    description="prettyprinter for C programs",
    source=SOURCE,
    paper_behaviour="~4% of stores removed, identical under both analyses",
))

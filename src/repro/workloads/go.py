"""go — the SPEC 099.go game program (paper: 28k+ lines).

Paper behaviour: the biggest *load* removal in the suite (~15.6% with
MOD/REF, 16.2% with points-to) with a large absolute operation count:
board-evaluation loops re-read global game state (ko position, move
number, color to play, territory counters) on every probe, and promotion
keeps those in registers across whole scans.
"""

from .base import Workload, register

SOURCE = r"""
#include <stdio.h>

#define SIZE 9
#define MOVES 120

int board[SIZE][SIZE];
int move_number;
int to_play;
int ko_x;
int ko_y;
int black_caps;
int white_caps;
int territory;
int influence;

void reset_game(void) {
    int x;
    int y;
    for (y = 0; y < SIZE; y++) {
        for (x = 0; x < SIZE; x++) {
            board[y][x] = 0;
        }
    }
    move_number = 0;
    to_play = 1;
    ko_x = -1;
    ko_y = -1;
}

int count_liberties(int x, int y) {
    int libs;
    libs = 0;
    if (x > 0 && board[y][x - 1] == 0) { libs = libs + 1; }
    if (x + 1 < SIZE && board[y][x + 1] == 0) { libs = libs + 1; }
    if (y > 0 && board[y - 1][x] == 0) { libs = libs + 1; }
    if (y + 1 < SIZE && board[y + 1][x] == 0) { libs = libs + 1; }
    return libs;
}

int evaluate(void) {
    int x;
    int y;
    int score;
    score = 0;
    /* promotion keeps territory/influence/ko state in registers for the
       whole double scan: every probe below otherwise reloads them */
    for (y = 0; y < SIZE; y++) {
        for (x = 0; x < SIZE; x++) {
            if (board[y][x] == to_play) {
                score = score + 2;
                influence = influence + count_liberties(x, y);
            } else if (board[y][x] != 0) {
                score = score - 2;
            } else {
                territory = territory + 1;
                if (x == ko_x && y == ko_y) {
                    score = score - 5;
                }
            }
        }
    }
    return score + black_caps - white_caps;
}

int pick_move(int seed) {
    int x;
    int y;
    int best_x;
    int best_y;
    int best_val;
    int val;
    best_x = -1;
    best_y = -1;
    best_val = -1000000;
    for (y = 0; y < SIZE; y++) {
        for (x = 0; x < SIZE; x++) {
            if (board[y][x] == 0) {
                val = count_liberties(x, y) * 4
                    + (x * 7 + y * 13 + seed) % 11
                    - (x == ko_x && y == ko_y) * 100;
                if (val > best_val) {
                    best_val = val;
                    best_x = x;
                    best_y = y;
                }
            }
        }
    }
    return best_x * SIZE + best_y;
}

void play(int pos) {
    int x;
    int y;
    x = pos / SIZE;
    y = pos % SIZE;
    if (x < 0) {
        return;
    }
    board[y][x] = to_play;
    if (count_liberties(x, y) == 0) {
        board[y][x] = 0;
        if (to_play == 1) {
            white_caps = white_caps + 1;
        } else {
            black_caps = black_caps + 1;
        }
        ko_x = x;
        ko_y = y;
    }
    to_play = 3 - to_play;
    move_number = move_number + 1;
}

int main(void) {
    int move;
    int eval_sum;
    reset_game();
    eval_sum = 0;
    for (move = 0; move < MOVES; move++) {
        play(pick_move(move * 37 + 5));
        eval_sum = eval_sum + evaluate();
    }
    printf("go eval=%d moves=%d terr=%d infl=%d caps=%d/%d\n",
           eval_sum, move_number, territory, influence,
           black_caps, white_caps);
    return 0;
}
"""

register(Workload(
    name="go",
    description="game-playing program with board evaluation scans",
    source=SOURCE,
    paper_behaviour="largest load removal (~15.6%/16.2%): global game "
                    "state stays in registers across board scans",
))

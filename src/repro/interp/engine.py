"""Block-threaded execution engine: decode once, execute many.

The reference engine in :mod:`repro.interp.machine` pays per executed
instruction for a ``type()`` dispatch chain, a dict lookup per scalar tag
address, and a ``max_steps`` comparison per op.  This engine applies the
paper's own discipline — decide once, execute many — to the interpreter
itself: on first entry to each ``(function, block)`` the instruction list
is compiled into one fused Python function with every invariant decision
resolved at decode time:

* global/string tag addresses are baked in as integer literals (the
  :class:`~repro.interp.memory.MemoryImage` layout is deterministic per
  module);
* local tags become frame-slot indices into the list returned by
  ``MemoryImage.push_frame_slots``;
* register ids, branch targets, immediates, and callees (user function,
  intrinsic, or unknown) are captured as plain ints/objects;
* compare opcodes specialize to ``1 if a < b else 0`` — no ``wrap_int``
  call — and add/sub/mul/neg inline the two's-complement wrap as a range
  check that only masks on actual overflow.

Counter updates are *batched*: each block is split into segments at call
boundaries (a ``Call`` always ends its segment; the terminator ends the
last one), and each segment folds its static counter mix into
:class:`~repro.interp.counters.Counters` on entry.  Because a block
executes all of its instructions once entered, the folded totals are
bit-identical to per-instruction counting, and because calls end
segments, ``clock()`` (which reads ``total_ops``) sees exactly the
per-instruction value.

``max_steps`` stays exact through a peak argument: within a segment the
reference engine's per-instruction check value never exceeds
``entry_total + net_segment_ops`` (the terminator/call is always last and
always counted; a ``nop``'s +1/-1 transient cannot exceed that), and that
peak is reached at the segment's final instruction.  So the batched guard
``entry_total + net > max_steps`` fires iff some per-instruction check
would have fired.  When it fires, the segment is *not* folded; instead
:func:`_precise_tail` replays the segment with exact per-instruction
semantics so trap-vs-limit ordering, counter state at the raise, and the
error message all match the reference engine.

The decoded program lives on the module (``module._decoded``) so repeat
runs skip decoding; it is validated against an identity signature of the
module's instruction objects on every run and rebuilt on mismatch
(optimization passes replace instruction objects, which the signature
catches).  Known limitation: mutating a *field* of an existing
instruction in place between runs of the same module object is invisible
to the signature — call :func:`invalidate_decoded` (or use
``MachineOptions(engine="simple")``) in that case.  ``Module`` drops the
cache when pickled or deep-copied.

Counter values are guaranteed bit-identical to the reference engine only
for runs that complete (normally, via ``exit()``, or by ``max_steps``
exhaustion); after a mid-block trap the batched counters may already
include the trapping segment's full mix.  No caller observes counters on
that path — ``Machine.run`` propagates the trap without building a
``RunResult``.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import InterpError, InterpTrap, ResourceLimitError
from ..intrinsics import is_intrinsic
from ..ir.function import Function
from ..ir.instructions import (
    BinOp,
    Branch,
    Call,
    CLoad,
    Jump,
    LoadAddr,
    LoadI,
    MemLoad,
    MemStore,
    Mov,
    Nop,
    Phi,
    Ret,
    ScalarLoad,
    ScalarStore,
    UnOp,
)
from ..ir.module import Module
from ..ir.opcodes import Opcode
from ..ir.tags import TagKind
from .machine import Machine, _binop, _unop
from .memory import MemoryImage

#: python comparison source for the wrap-free compare fast path
_CMP_SRC = {
    Opcode.CMP_LT: "<",
    Opcode.CMP_LE: "<=",
    Opcode.CMP_GT: ">",
    Opcode.CMP_GE: ">=",
    Opcode.CMP_EQ: "==",
    Opcode.CMP_NE: "!=",
}

#: ops whose int result wraps; inlined with a range check (mask only on
#: actual overflow, which is rare)
_WRAP_SRC = {Opcode.ADD: "+", Opcode.SUB: "-", Opcode.MUL: "*"}

_COUNTER_FIELDS = (
    "loads",
    "stores",
    "scalar_loads",
    "scalar_stores",
    "general_loads",
    "general_stores",
    "copies",
    "calls",
    "branches",
)


# -- decode cache ------------------------------------------------------------
def _module_signature(module: Module) -> tuple:
    """Identity snapshot of the module's executable structure.

    Passes rewrite programs by replacing instruction/function objects, so
    comparing object identities (plus classes, to survive id reuse after
    gc) detects stale decodings.  In-place *field* mutation of a kept
    instruction is the documented blind spot — see the module docstring.
    """
    parts = []
    for name, func in module.functions.items():
        blocks = tuple(
            (label, tuple((id(i), i.__class__) for i in block.instrs))
            for label, block in func.blocks.items()
        )
        parts.append(
            (name, id(func), func.entry, tuple(map(id, func.local_tags)), blocks)
        )
    return tuple(parts)


class DecodedFunction:
    """One function's decode state: frame layout plus lazily decoded blocks."""

    __slots__ = (
        "dm",
        "func",
        "name",
        "entry",
        "nregs",
        "param_ids",
        "tags",
        "sizes",
        "slots",
        "blocks",
    )

    def __init__(self, dm: "DecodedModule", func: Function) -> None:
        self.dm = dm
        self.func = func
        self.name = func.name
        self.entry = func.entry
        self.nregs = func.max_vreg_id() + 1
        self.param_ids = tuple(p.id for p in func.params)
        self.tags = func.local_tags
        self.sizes = func.local_tag_sizes
        #: local tag name -> index into the frame-slot address list
        self.slots = {tag.name: i for i, tag in enumerate(func.local_tags)}
        #: label -> compiled block function, filled on first entry
        self.blocks: dict[str, Callable] = {}

    def decode(self, label: str) -> Callable:
        fn = _compile_block(self, label)
        self.blocks[label] = fn
        return fn


class DecodedModule:
    """The decoded program: per-function state plus the baked address maps.

    Subclasses (the tier-2 cache) override :attr:`function_cls` and
    :attr:`call_executor` — the latter is baked into every compiled
    block's ``_call`` binding, so callees reached from threaded-decoded
    blocks enter the same tier as their caller.  Both are assigned after
    the definitions they name.
    """

    function_cls: type
    call_executor: Callable

    def __init__(self, module: Module, mem: MemoryImage) -> None:
        self.module = module
        # the layout is a pure function of the module's globals/strings,
        # so addresses baked from one MemoryImage hold for every machine
        # running this module; validated against each run's image anyway
        self.global_addr = dict(mem.global_addr)
        self.string_addr = dict(mem.string_addr)
        self.signature = _module_signature(module)
        function_cls = type(self).function_cls
        self.functions = {
            name: function_cls(self, func)
            for name, func in module.functions.items()
        }

    def validate(self, mem: MemoryImage) -> bool:
        return (
            self.global_addr == mem.global_addr
            and self.string_addr == mem.string_addr
            and self.signature == _module_signature(self.module)
        )


def get_decoded(module: Module, mem: MemoryImage) -> DecodedModule:
    """The module's decode cache, rebuilt if the program changed."""
    dm = getattr(module, "_decoded", None)
    if dm is not None and dm.validate(mem):
        return dm
    dm = DecodedModule(module, mem)
    module._decoded = dm
    return dm


def invalidate_decoded(module: Module) -> None:
    """Drop the decode and tier-2 caches (needed only after in-place
    instruction field mutation, which the staleness signature cannot
    see)."""
    module.__dict__.pop("_decoded", None)
    module.__dict__.pop("_tier2", None)


# -- execution ---------------------------------------------------------------
def exec_entry(machine: Machine, func: Function) -> int | float | None:
    """Run ``func`` on ``machine`` under the block-threaded engine.

    When a trace is active the decode and run phases get their own spans
    (``interp.decode`` notes whether the decode cache hit); when tracing
    is off this takes the original untraced path — the engine hot loop
    itself is never instrumented.
    """
    from ..trace import current_trace

    trace = current_trace()
    if trace is None:
        dm = get_decoded(machine.module, machine.mem)
        return exec_function(machine, dm.functions[func.name], ())
    cached = getattr(machine.module, "_decoded", None)
    with trace.span("interp.decode") as decode_extra:
        dm = get_decoded(machine.module, machine.mem)
        decode_extra["cached"] = dm is cached
    with trace.span("interp.run", function=func.name) as run_extra:
        result = exec_function(machine, dm.functions[func.name], ())
        run_extra["total_ops"] = machine.counters.total_ops
    return result


def exec_function(
    m: Machine, df: DecodedFunction, args: tuple
) -> int | float | None:
    """One activation: push a frame, then thread through decoded blocks.

    Mirrors ``Machine._exec_function`` exactly (depth check before the
    frame push, frame/depth unwound in ``finally``, extra args dropped,
    missing args left zero).  Block functions return the next label as a
    ``str`` or the return value boxed in a 1-tuple.
    """
    m._call_depth += 1
    if m._call_depth > 2000:
        raise ResourceLimitError("interpreted call stack too deep")
    mem = m.mem
    saved_sp = mem.stack_ptr
    frame = mem.push_frame_slots(df.tags, df.sizes)
    regs: list[int | float] = [0] * df.nregs
    for i, value in zip(df.param_ids, args):
        regs[i] = value
    cells = mem.cells
    c = m.counters
    blocks = df.blocks
    label = df.entry
    visits = m.block_visits
    try:
        if visits is None:
            while True:
                fn = blocks.get(label)
                if fn is None:
                    fn = df.decode(label)
                nxt = fn(regs, frame, cells, c, m)
                if nxt.__class__ is str:
                    label = nxt
                else:
                    return nxt[0]
        else:
            # the visit is counted at block entry, before any of the
            # block's checks can raise — same as the reference engine
            name = df.name
            while True:
                key = (name, label)
                visits[key] = visits.get(key, 0) + 1
                fn = blocks.get(label)
                if fn is None:
                    fn = df.decode(label)
                nxt = fn(regs, frame, cells, c, m)
                if nxt.__class__ is str:
                    label = nxt
                else:
                    return nxt[0]
    finally:
        mem.pop_frame(saved_sp)
        m._call_depth -= 1


# -- the precise tail (guard-trip fallback) ---------------------------------
def _precise_tail(
    m: Machine,
    df: DecodedFunction,
    label: str,
    start: int,
    regs: list,
    frame: list[int],
    cells: dict,
    c,
) -> str | tuple:
    """Replay ``block.instrs[start:]`` with exact reference semantics.

    Entered only when a segment guard trips, i.e. the reference engine
    would raise ``ResourceLimitError`` somewhere in the segment unless a
    trap preempts it.  Counters were *not* folded for this segment, so
    per-instruction increments here leave them in exactly the reference
    engine's state at the raise.  By the peak argument the loop always
    raises at or before the segment's final instruction; the normal-exit
    returns below are defensive completeness.
    """
    func = df.func
    frame_addrs = {tag.name: addr for tag, addr in zip(func.local_tags, frame)}
    max_steps = m._max_steps
    block = func.blocks[label]
    for instr in block.instrs[start:]:
        c.total_ops += 1
        if c.total_ops > max_steps:
            raise ResourceLimitError(f"exceeded {max_steps} executed operations")
        cls = type(instr)
        if cls is BinOp:
            regs[instr.dst.id] = _binop(
                instr.opcode, regs[instr.lhs.id], regs[instr.rhs.id]
            )
        elif cls is LoadI:
            regs[instr.dst.id] = instr.value
        elif cls is Mov:
            c.copies += 1
            regs[instr.dst.id] = regs[instr.src.id]
        elif cls is ScalarLoad or cls is CLoad:
            c.loads += 1
            c.scalar_loads += 1
            addr = m._tag_addr(instr.tag, frame_addrs)
            regs[instr.dst.id] = cells.get(addr, 0)
        elif cls is ScalarStore:
            c.stores += 1
            c.scalar_stores += 1
            addr = m._tag_addr(instr.tag, frame_addrs)
            cells[addr] = regs[instr.src.id]
        elif cls is MemLoad:
            c.loads += 1
            c.general_loads += 1
            addr = regs[instr.addr.id]
            if not isinstance(addr, int):
                raise InterpTrap(f"load through non-integer address {addr!r}")
            regs[instr.dst.id] = cells.get(addr, 0)
        elif cls is MemStore:
            c.stores += 1
            c.general_stores += 1
            addr = regs[instr.addr.id]
            if not isinstance(addr, int):
                raise InterpTrap(f"store through non-integer address {addr!r}")
            cells[addr] = regs[instr.src.id]
        elif cls is UnOp:
            regs[instr.dst.id] = _unop(instr.opcode, regs[instr.src.id])
        elif cls is LoadAddr:
            regs[instr.dst.id] = m._tag_addr(instr.tag, frame_addrs) + instr.offset
        elif cls is Jump:
            return instr.target
        elif cls is Branch:
            c.branches += 1
            return instr.if_true if regs[instr.cond.id] != 0 else instr.if_false
        elif cls is Ret:
            if instr.value is not None:
                return (regs[instr.value.id],)
            return (None,)
        elif cls is Call:
            c.calls += 1
            value = m._exec_call(instr, regs)
            if instr.dst is not None:
                regs[instr.dst.id] = value if value is not None else 0
        elif cls is Nop:
            c.total_ops -= 1  # structural, never "executed"
        elif cls is Phi:
            raise InterpError("phi reached the interpreter; destruct SSA first")
        else:  # pragma: no cover - defensive
            raise InterpError(f"unknown instruction {instr}")
    raise InterpError(
        f"block {label} in {func.name} fell through without terminator"
    )


def _make_tail(df: DecodedFunction, label: str, start: int) -> Callable:
    def _tail(m, regs, frame, cells, c):
        return _precise_tail(m, df, label, start, regs, frame, cells, c)

    return _tail


# -- decode-time helpers -----------------------------------------------------
def _raiser(exc: type, message: str) -> Callable:
    """A callable raising ``exc(message)``; used where the reference
    engine raises at execution time, so decode never raises early."""

    def _raise(*_args):
        raise exc(message)

    return _raise


def _trap_load(addr) -> None:
    raise InterpTrap(f"load through non-integer address {addr!r}")


def _trap_store(addr) -> None:
    raise InterpTrap(f"store through non-integer address {addr!r}")


# -- block compilation -------------------------------------------------------
def _compile_block(df: DecodedFunction, label: str) -> Callable:
    """Compile one basic block into a fused Python function.

    Generated shape (segments split after every ``Call``)::

        def _b(regs, frame, cells, c, m):
            _g = cells.get
            t = c.total_ops + <net ops>          # batched guard + fold
            if t > m._max_steps:
                return _t0(m, regs, frame, cells, c)   # precise tail
            c.total_ops = t
            c.loads += <n> ...                   # nonzero mixes only
            regs[3] = _g(268435456, 0)           # sload, address baked
            v = regs[3] + regs[1]                # add, wrap on overflow
            if v.__class__ is int and not <in range>: v = <mask>
            regs[4] = v
            return 'L2' if regs[4] != 0 else 'L3'
    """
    func = df.func
    block = func.blocks[label]  # KeyError here matches the reference engine
    dm = df.dm
    slots = df.slots

    ns: dict[str, Any] = {
        "_binop": _binop,
        "_unop": _unop,
        "_call": dm.call_executor,
        "_trap_load": _trap_load,
        "_trap_store": _trap_store,
    }
    uid = [0]

    def bind(value, prefix: str) -> str:
        name = f"_{prefix}{uid[0]}"
        uid[0] += 1
        ns[name] = value
        return name

    op_names: dict[Opcode, str] = {}

    def opname(op: Opcode) -> str:
        name = op_names.get(op)
        if name is None:
            name = bind(op, "o")
            op_names[op] = name
        return name

    def tag_addr(tag) -> str:
        if tag.kind is TagKind.LOCAL:
            slot = slots.get(tag.name)
            if slot is None:
                return (
                    bind(
                        _raiser(
                            InterpError,
                            f"local tag {tag.name} has no frame slot",
                        ),
                        "e",
                    )
                    + "()"
                )
            return f"frame[{slot}]"
        addr = dm.global_addr.get(tag.name)
        if addr is None:
            addr = dm.string_addr.get(tag.name)
        if addr is None:
            return (
                bind(_raiser(InterpError, f"tag {tag.name} has no address"), "e")
                + "()"
            )
        return repr(addr)

    def static_addr(tag) -> int | None:
        if tag.kind is TagKind.LOCAL:
            return None
        addr = dm.global_addr.get(tag.name)
        if addr is None:
            addr = dm.string_addr.get(tag.name)
        return addr

    def emit_wrap(out: list[str], dst: int, expr: str) -> None:
        out.append(f"    v = {expr}")
        out.append(
            "    if v.__class__ is int and not"
            " -9223372036854775808 <= v <= 9223372036854775807:"
        )
        out.append(
            "        v = ((v + 9223372036854775808)"
            " & 18446744073709551615) - 9223372036854775808"
        )
        out.append(f"    regs[{dst}] = v")

    def args_src(call: Call) -> str:
        parts = ", ".join(f"regs[{a.id}]" for a in call.args)
        if len(call.args) == 1:
            return f"({parts},)"
        return f"({parts})"

    def emit_instr(instr, out: list[str]) -> None:
        cls = instr.__class__
        if cls is BinOp:
            op = instr.opcode
            sym = _WRAP_SRC.get(op)
            if sym is not None:
                emit_wrap(
                    out,
                    instr.dst.id,
                    f"regs[{instr.lhs.id}] {sym} regs[{instr.rhs.id}]",
                )
            elif op in _CMP_SRC:
                out.append(
                    f"    regs[{instr.dst.id}] = 1 if"
                    f" regs[{instr.lhs.id}] {_CMP_SRC[op]} regs[{instr.rhs.id}]"
                    " else 0"
                )
            else:
                out.append(
                    f"    regs[{instr.dst.id}] = _binop({opname(op)},"
                    f" regs[{instr.lhs.id}], regs[{instr.rhs.id}])"
                )
        elif cls is LoadI:
            value = instr.value
            if type(value) is int:
                out.append(f"    regs[{instr.dst.id}] = {value!r}")
            else:
                # floats (incl. inf/nan) bind the exact object the
                # reference engine would store
                out.append(f"    regs[{instr.dst.id}] = {bind(value, 'k')}")
        elif cls is Mov:
            out.append(f"    regs[{instr.dst.id}] = regs[{instr.src.id}]")
        elif cls is ScalarLoad or cls is CLoad:
            out.append(f"    regs[{instr.dst.id}] = _g({tag_addr(instr.tag)}, 0)")
        elif cls is ScalarStore:
            out.append(f"    cells[{tag_addr(instr.tag)}] = regs[{instr.src.id}]")
        elif cls is MemLoad:
            out.append(f"    a = regs[{instr.addr.id}]")
            out.append("    if a.__class__ is not int:")
            out.append("        _trap_load(a)")
            out.append(f"    regs[{instr.dst.id}] = _g(a, 0)")
        elif cls is MemStore:
            out.append(f"    a = regs[{instr.addr.id}]")
            out.append("    if a.__class__ is not int:")
            out.append("        _trap_store(a)")
            out.append(f"    cells[a] = regs[{instr.src.id}]")
        elif cls is LoadAddr:
            addr = static_addr(instr.tag)
            if addr is not None:
                out.append(f"    regs[{instr.dst.id}] = {addr + instr.offset!r}")
            else:
                expr = tag_addr(instr.tag)
                if instr.offset:
                    expr = f"{expr} + {instr.offset}"
                out.append(f"    regs[{instr.dst.id}] = {expr}")
        elif cls is UnOp:
            op = instr.opcode
            if op is Opcode.NEG:
                emit_wrap(out, instr.dst.id, f"-regs[{instr.src.id}]")
            elif op is Opcode.LNOT:
                out.append(
                    f"    regs[{instr.dst.id}] = 1 if"
                    f" regs[{instr.src.id}] == 0 else 0"
                )
            elif op is Opcode.I2F:
                out.append(
                    f"    regs[{instr.dst.id}] = float(regs[{instr.src.id}])"
                )
            else:
                out.append(
                    f"    regs[{instr.dst.id}] = _unop({opname(op)},"
                    f" regs[{instr.src.id}])"
                )
        elif cls is Jump:
            out.append(f"    return {instr.target!r}")
        elif cls is Branch:
            out.append(
                f"    return {instr.if_true!r} if regs[{instr.cond.id}] != 0"
                f" else {instr.if_false!r}"
            )
        elif cls is Ret:
            if instr.value is not None:
                out.append(f"    return (regs[{instr.value.id}],)")
            else:
                out.append("    return (None,)")
        elif cls is Call:
            name = instr.callee
            if name is None:
                call_expr = (
                    bind(
                        _raiser(
                            InterpError,
                            "indirect calls are not executable in this build",
                        ),
                        "e",
                    )
                    + "()"
                )
            else:
                target = dm.functions.get(name)
                if target is not None:
                    call_expr = (
                        f"_call(m, {bind(target, 'f')}, {args_src(instr)})"
                    )
                elif is_intrinsic(name):
                    call_expr = (
                        f"m._exec_intrinsic({name!r}, {args_src(instr)},"
                        f" {instr.site_id})"
                    )
                else:
                    call_expr = (
                        bind(
                            _raiser(
                                InterpError,
                                f"call to unknown function {name!r}",
                            ),
                            "e",
                        )
                        + "()"
                    )
            if instr.dst is not None:
                out.append(f"    v = {call_expr}")
                out.append(f"    regs[{instr.dst.id}] = 0 if v is None else v")
            else:
                out.append(f"    {call_expr}")
        elif cls is Nop:
            pass  # structural: net-zero ops, no effect
        elif cls is Phi:
            out.append(
                "    "
                + bind(
                    _raiser(
                        InterpError,
                        "phi reached the interpreter; destruct SSA first",
                    ),
                    "e",
                )
                + "()"
            )
        else:  # pragma: no cover - defensive
            out.append(
                "    "
                + bind(_raiser(InterpError, f"unknown instruction {instr}"), "e")
                + "()"
            )

    lines = ["def _b(regs, frame, cells, c, m):", "    _g = cells.get"]
    seg_body: list[str] = []
    mix = {"total_ops": 0}
    for fld in _COUNTER_FIELDS:
        mix[fld] = 0
    seg_start = 0

    def flush(next_start: int) -> None:
        nonlocal seg_start
        if seg_body or mix["total_ops"]:
            tail_name = bind(_make_tail(df, label, seg_start), "t")
            lines.append(f"    t = c.total_ops + {mix['total_ops']}")
            lines.append("    if t > m._max_steps:")
            lines.append(f"        return {tail_name}(m, regs, frame, cells, c)")
            lines.append("    c.total_ops = t")
            for fld in _COUNTER_FIELDS:
                if mix[fld]:
                    lines.append(f"    c.{fld} += {mix[fld]}")
            lines.extend(seg_body)
        seg_body.clear()
        for key in mix:
            mix[key] = 0
        seg_start = next_start

    for idx, instr in enumerate(block.instrs):
        cls = instr.__class__
        if cls is not Nop:
            mix["total_ops"] += 1
        if cls is Mov:
            mix["copies"] += 1
        elif cls is ScalarLoad or cls is CLoad:
            mix["loads"] += 1
            mix["scalar_loads"] += 1
        elif cls is ScalarStore:
            mix["stores"] += 1
            mix["scalar_stores"] += 1
        elif cls is MemLoad:
            mix["loads"] += 1
            mix["general_loads"] += 1
        elif cls is MemStore:
            mix["stores"] += 1
            mix["general_stores"] += 1
        elif cls is Branch:
            mix["branches"] += 1
        elif cls is Call:
            mix["calls"] += 1
        emit_instr(instr, seg_body)
        if cls is Call:
            # a call ends its segment so the callee (clock() especially)
            # observes exactly the per-instruction total_ops
            flush(idx + 1)
    flush(len(block.instrs))

    term = block.instrs[-1] if block.instrs else None
    if term is None or not term.is_terminator():
        lines.append(
            "    "
            + bind(
                _raiser(
                    InterpError,
                    f"block {label} in {func.name} fell through without"
                    " terminator",
                ),
                "e",
            )
            + "()"
        )

    src = "\n".join(lines)
    code = compile(src, f"<decoded {func.name}:{label}>", "exec")
    exec(code, ns)
    return ns["_b"]


DecodedModule.function_cls = DecodedFunction
DecodedModule.call_executor = staticmethod(exec_function)

"""Dynamic operation counters.

These are the paper's three instrumentation metrics (Figures 5, 6, 7):
total operations executed, stores executed, and loads executed.  Loads are
``cload``/``sload``/``load``; an immediate ``loadi`` is not a memory
reference and is not counted as a load (it still counts as an operation).

Both execution engines mutate one ``Counters`` instance: the reference
(``simple``) engine increments per executed instruction, while the
block-threaded engine folds each decoded block's static mix in as a batch
on block entry (see :mod:`repro.interp.engine`).  The two disciplines
produce bit-identical totals because a basic block always executes all of
its instructions once entered.  The dataclass is slotted so the per-op
increments of the reference engine stay as cheap as possible.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class Counters:
    total_ops: int = 0
    loads: int = 0
    stores: int = 0
    #: finer breakdown, useful for the ablation benches
    scalar_loads: int = 0
    scalar_stores: int = 0
    general_loads: int = 0
    general_stores: int = 0
    copies: int = 0
    calls: int = 0
    branches: int = 0

    def memory_ops(self) -> int:
        return self.loads + self.stores

    def as_dict(self) -> dict[str, int]:
        return {
            "total_ops": self.total_ops,
            "loads": self.loads,
            "stores": self.stores,
            "scalar_loads": self.scalar_loads,
            "scalar_stores": self.scalar_stores,
            "general_loads": self.general_loads,
            "general_stores": self.general_stores,
            "copies": self.copies,
            "calls": self.calls,
            "branches": self.branches,
        }

    def __str__(self) -> str:
        return (
            f"ops={self.total_ops} loads={self.loads} stores={self.stores}"
        )

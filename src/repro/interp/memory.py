"""The interpreter's memory model.

A flat byte-addressed space backed by a dictionary.  Each scalar value
(int, float, pointer) is stored *whole* at its base address; the workloads
never type-pun, so a load at an address returns exactly what was stored
there.  Unwritten addresses read as zero (C static initialization for
globals; conveniently-zeroed stack and heap otherwise — the front end
still emits explicit initialization for register-resident locals).

Address space layout::

    0x1000_0000  globals
    0x2000_0000  string literals (read-only)
    0x3000_0000  stack (grows upward, one frame slab per activation)
    0x4000_0000  heap (bump allocator, one block per allocation)

The layout leaves gaps so wild pointer arithmetic faults loudly instead of
silently landing in a different region.
"""

from __future__ import annotations

from ..errors import InterpError
from ..ir.module import Module
from ..ir.tags import Tag

GLOBAL_BASE = 0x1000_0000
STRING_BASE = 0x2000_0000
STACK_BASE = 0x3000_0000
HEAP_BASE = 0x4000_0000
STACK_LIMIT = HEAP_BASE - 0x1000

_ALIGN = 8


def _align(value: int) -> int:
    return (value + _ALIGN - 1) // _ALIGN * _ALIGN


class MemoryImage:
    """The memory of one program run."""

    def __init__(self, module: Module) -> None:
        self.cells: dict[int, int | float] = {}
        self.global_addr: dict[str, int] = {}
        self.string_addr: dict[str, int] = {}
        self.stack_ptr = STACK_BASE
        self.heap_ptr = HEAP_BASE
        self._heap_sizes: dict[int, int] = {}
        self._layout_globals(module)
        self._layout_strings(module)

    # -- static data -------------------------------------------------------
    def _layout_globals(self, module: Module) -> None:
        addr = GLOBAL_BASE
        for var in module.globals.values():
            self.global_addr[var.name] = addr
            for offset, value in var.init.items():
                self.cells[addr + offset] = value
            addr = _align(addr + max(var.size, 1))

    def _layout_strings(self, module: Module) -> None:
        addr = STRING_BASE
        for lit in module.strings.values():
            self.string_addr[lit.tag.name] = addr
            data = lit.text.encode("utf-8", errors="replace")
            for i, byte in enumerate(data):
                self.cells[addr + i] = byte
            self.cells[addr + len(data)] = 0
            addr = _align(addr + len(data) + 1)

    # -- stack frames -----------------------------------------------------
    def push_frame_slots(self, tags: list[Tag], sizes: dict[str, int]) -> list[int]:
        """Allocate one activation's address for each local tag.

        Returns the addresses as a list parallel to ``tags`` — the
        block-threaded engine resolves each local tag to its position in
        ``tags`` once at decode time, so a frame push is one list build
        and every later access is a plain index.  Sizes default to one
        word.
        """
        addrs: list[int] = []
        ptr = self.stack_ptr
        for tag in tags:
            size = sizes.get(tag.name, _ALIGN)
            addrs.append(ptr)
            ptr = _align(ptr + max(size, 1))
        if ptr > STACK_LIMIT:
            raise InterpError("interpreted program overflowed its stack")
        self.stack_ptr = ptr
        return addrs

    def push_frame(self, tags: list[Tag], sizes: dict[str, int]) -> dict[str, int]:
        """Like :meth:`push_frame_slots`, returning ``tag name -> address``
        (the reference engine's by-name view; layout is identical)."""
        slots = self.push_frame_slots(tags, sizes)
        return {tag.name: addr for tag, addr in zip(tags, slots)}

    def pop_frame(self, saved_stack_ptr: int) -> None:
        self.stack_ptr = saved_stack_ptr

    # -- heap --------------------------------------------------------------
    def allocate(self, size: int) -> int:
        addr = self.heap_ptr
        self._heap_sizes[addr] = size
        self.heap_ptr = _align(self.heap_ptr + max(size, 1))
        return addr

    def free(self, addr: int) -> None:
        # a bump allocator never reuses memory; free only validates
        if addr != 0 and addr not in self._heap_sizes:
            raise InterpError(f"free of non-heap address {addr:#x}")

    # -- access --------------------------------------------------------------
    def load(self, addr: int) -> int | float:
        return self.cells.get(addr, 0)

    def store(self, addr: int, value: int | float) -> None:
        self.cells[addr] = value

    def read_c_string(self, addr: int, limit: int = 1 << 20) -> str:
        chars: list[str] = []
        for i in range(limit):
            cell = self.cells.get(addr + i, 0)
            if not isinstance(cell, int):
                raise InterpError(f"non-byte cell in string at {addr + i:#x}")
            if cell == 0:
                return "".join(chars)
            chars.append(chr(cell & 0xFF))
        raise InterpError("unterminated string")

"""Instrumented IL interpreter: deterministic execution with operation,
load, and store counting (the paper's measurement apparatus)."""

from .counters import Counters
from .engine import invalidate_decoded
from .machine import Machine, MachineOptions, RunResult, c_div, c_mod, run_module, wrap_int
from .memory import MemoryImage

__all__ = [
    "Counters",
    "Machine",
    "MachineOptions",
    "MemoryImage",
    "RunResult",
    "c_div",
    "c_mod",
    "invalidate_decoded",
    "run_module",
    "wrap_int",
]

"""Tier-2 specializing engine: register promotion applied to ourselves.

The block-threaded engine (:mod:`repro.interp.engine`) already decides
everything decidable once per block, but it still pays, per executed
block, for a dict lookup, a Python call, ``regs``-list indexing on every
operand, and a ``Counters`` attribute update.  The paper's point — hoist
memory references into registers over a *region* and spill only at its
boundary — applies one level up: this engine selects hot regions, compiles
each into **one** generated Python function in which

* every virtual register used by the region is a Python local (``r7``),
* every promotion-eligible scalar slot is a Python local too (``x2`` for
  frame slots, ``g0`` for globals), loaded at region entry and written
  back at region exits,
* counters accumulate in plain local deltas (``_t``, ``_ld``, ...) flushed
  to the shared :class:`~repro.interp.counters.Counters` only at calls and
  region boundaries,
* control flow is a ``while``/``elif`` dispatch over an integer ``_pc`` —
  no per-block Python call at all.

Region selection
----------------

Candidate regions are the whole function body (when it is small enough)
and every natural loop (via :func:`repro.analysis.loops.find_loops`), keyed
by their header block.  Each candidate header gets a probe that counts
entries; past :data:`HOT_THRESHOLD` the region is template-compiled and
the probe dispatches straight into it.  Cold and oversized code keeps
running on the block-threaded tier unchanged.

Promotion rules (the paper's own criteria, applied to the interpreter)
----------------------------------------------------------------------

A frame slot is promoted iff it is scalar-sized and **no** ``LoadAddr``
in the function ever takes its address — then no pointer to it can exist
anywhere, so neither callees nor ``MemLoad``/``MemStore`` in the region
can alias it and it may live in a Python local across calls.  A global
is promoted under the same no-address rule (checked module-wide) and only
in call-free regions, because a callee may reference a global by name
without any pointer.  Everything else keeps its exact memory traffic.
Promoted accesses still count as loads/stores — the engine changes how
the program executes, never what the experiment measures.

Exact deoptimization
--------------------

Observables (output, exit code, counters, ``block_visits``, ``clock()``)
stay bit-identical with the reference and threaded engines:

* the per-block budget guard folds the block's static mix into the local
  delta and compares against the remaining budget; on overrun it unwinds
  the fold, spills registers + promoted slots + counter deltas, and
  returns a ``("deopt", label)`` jump — the dispatcher then runs that one
  block on the threaded tier, whose segment guard and
  :func:`~repro.interp.engine._precise_tail` replay produce the exact
  per-instruction raise;
* post-call segments (the budget consumed by the callee is unknowable in
  advance) spill and enter ``_precise_tail`` directly mid-block;
* calls flush counter deltas first — ``clock()`` reads the exact
  per-instruction ``total_ops`` — and recompute the budget after;
* any exception (trap, resource limit, ``exit()``) crosses a
  ``try/except BaseException`` that writes promoted slots back to memory
  and flushes the deltas before re-raising, so traps surface with slots
  flushed.

The compiled tier lives at ``module._tier2`` beside the threaded decode
cache, validated by the same identity signature, dropped by
:func:`~repro.interp.engine.invalidate_decoded` and on pickle/deepcopy.
"""

from __future__ import annotations

from typing import Any, Callable

from ..analysis.loops import find_loops
from ..errors import InterpError, ResourceLimitError
from ..intrinsics import is_intrinsic
from ..ir.function import Function
from ..ir.instructions import (
    BinOp,
    Branch,
    Call,
    CLoad,
    Jump,
    LoadAddr,
    LoadI,
    MemLoad,
    MemStore,
    Mov,
    Nop,
    Phi,
    Ret,
    ScalarLoad,
    ScalarStore,
    UnOp,
)
from ..ir.module import Module
from ..ir.opcodes import Opcode
from ..ir.tags import TagKind
from .machine import Machine, _binop, _unop, c_div, c_mod
from .memory import _ALIGN, STACK_LIMIT, MemoryImage, _align
from .engine import (
    _CMP_SRC,
    _COUNTER_FIELDS,
    _WRAP_SRC,
    DecodedFunction,
    DecodedModule,
    _compile_block,
    _make_tail,
    _raiser,
    _trap_load,
    _trap_store,
)

#: region entries before a candidate header is template-compiled
HOT_THRESHOLD = 8

#: largest region (in blocks) the template compiler will take on
REGION_CAP = 96

#: counter delta local per Counters field (total_ops is ``_t``)
_DELTA = {
    "loads": "_ld",
    "stores": "_st",
    "scalar_loads": "_sl",
    "scalar_stores": "_ss",
    "general_loads": "_gl",
    "general_stores": "_gs",
    "copies": "_cp",
    "calls": "_ca",
    "branches": "_br",
}

#: bitwise ops whose both-int results are always in signed 64-bit range
_BIT_SRC = {Opcode.AND: "&", Opcode.OR: "|", Opcode.XOR: "^"}

_WRAP_CHECK = (
    "if {v}.__class__ is int and not"
    " -9223372036854775808 <= {v} <= 9223372036854775807:"
)
_WRAP_MASK = (
    "{v} = (({v} + 9223372036854775808)"
    " & 18446744073709551615) - 9223372036854775808"
)


class Tier2Function(DecodedFunction):
    """Threaded decode state plus the specializing tier for hot regions."""

    __slots__ = (
        "candidates",
        "regions",
        "counts",
        "plains",
        "_local_addressed",
        "frame_offsets",
        "frame_size",
        "nparams",
        "entry_fresh",
        "fresh_count",
        "fresh_off",
        "fresh_on",
    )

    def __init__(self, dm: "Tier2Module", func: Function) -> None:
        super().__init__(dm, func)
        #: header label -> ordered tuple of the region's block labels
        self.candidates = _select_candidates(func)
        #: (header, profiled) -> compiled region function
        self.regions: dict[tuple[str, bool], Callable] = {}
        #: header -> probe entry count (persists across runs with the cache)
        self.counts: dict[str, int] = {}
        #: label -> plain threaded block fn, for deopt re-entry
        self.plains: dict[str, Callable] = {}
        #: local tag names whose address is ever taken in this function
        self._local_addressed: frozenset[str] | None = None
        # frame layout precomputed once (push_frame_slots recomputes it per
        # activation from tag sizes; a call-heavy program pays that on every
        # call)
        offsets: list[int] = []
        off = 0
        for tag in self.tags:
            offsets.append(off)
            off = _align(off + max(self.sizes.get(tag.name, _ALIGN), 1))
        self.frame_offsets = offsets
        self.frame_size = off
        self.nparams = len(self.param_ids)
        #: the entry block heads a candidate region, so fresh activations can
        #: enter a specialized variant that exploits the zeroed register file
        self.entry_fresh = func.entry in self.candidates
        self.fresh_count = 0
        #: entry-region variants for fresh activations (by profiling mode);
        #: they take ``args`` instead of ``regs`` — every non-parameter
        #: register is known-zero at activation start, so the template
        #: chain-assigns zeros instead of loading the list
        self.fresh_off: Callable | None = None
        self.fresh_on: Callable | None = None

    def decode(self, label: str) -> Callable:
        fn = _compile_block(self, label)
        if label in self.candidates:
            fn = _make_probe(self, label, fn)
        self.blocks[label] = fn
        return fn

    def plain(self, label: str) -> Callable:
        """The unwrapped threaded block fn (deopt always lands here)."""
        fn = self.plains.get(label)
        if fn is None:
            fn = _compile_block(self, label)
            self.plains[label] = fn
        return fn

    def local_addressed(self) -> frozenset[str]:
        cached = self._local_addressed
        if cached is None:
            cached = frozenset(
                i.tag.name
                for i in self.func.instructions()
                if i.__class__ is LoadAddr and i.tag.kind is TagKind.LOCAL
            )
            self._local_addressed = cached
        return cached


class Tier2Module(DecodedModule):
    """A decode cache whose call executor routes callees through tier 2."""

    def __init__(self, module: Module, mem: MemoryImage) -> None:
        super().__init__(module, mem)
        #: global/string tag names whose address is ever taken, module-wide
        self._global_addressed: frozenset[str] | None = None

    def global_addressed(self) -> frozenset[str]:
        cached = self._global_addressed
        if cached is None:
            cached = frozenset(
                i.tag.name
                for func in self.module.functions.values()
                for i in func.instructions()
                if i.__class__ is LoadAddr and i.tag.kind is not TagKind.LOCAL
            )
            self._global_addressed = cached
        return cached


def _select_candidates(func: Function) -> dict[str, tuple[str, ...]]:
    """Candidate regions by header: the whole body (small functions) plus
    every natural loop that fits the cap.

    Members are ordered by descending loop depth (header first), so the
    hottest blocks sit at the top of the generated ``_pc`` dispatch chain.
    """
    candidates: dict[str, tuple[str, ...]] = {}
    order = {lbl: i for i, lbl in enumerate(func.blocks)}
    forest = find_loops(func)
    depth: dict[str, int] = {}
    for loop in forest.loops:
        for lbl in loop.blocks:
            depth[lbl] = max(depth.get(lbl, 0), loop.depth)

    def members(header: str, blocks) -> tuple[str, ...]:
        rest = sorted(
            (lbl for lbl in blocks if lbl != header),
            key=lambda lbl: (-depth.get(lbl, 0), order[lbl]),
        )
        return tuple([header] + rest)

    for loop in forest.loops:
        if len(loop.blocks) > REGION_CAP:
            continue
        candidates[loop.header] = members(loop.header, loop.blocks)
    if len(order) <= REGION_CAP:
        # the function-wide region subsumes any loop sharing its header
        candidates[func.entry] = members(func.entry, order)
    return candidates


# -- cache -------------------------------------------------------------------
def get_tier2(module: Module, mem: MemoryImage) -> Tier2Module:
    """The module's tier-2 cache, rebuilt if the program changed."""
    dm = getattr(module, "_tier2", None)
    if dm is not None and dm.validate(mem):
        return dm
    dm = Tier2Module(module, mem)
    module._tier2 = dm
    return dm


# -- execution ---------------------------------------------------------------
def exec_entry(machine: Machine, func: Function) -> int | float | None:
    """Run ``func`` on ``machine`` under the tier-2 engine."""
    from ..trace import current_trace

    trace = current_trace()
    if trace is None:
        dm = get_tier2(machine.module, machine.mem)
        return exec_function(machine, dm.functions[func.name], ())
    cached = getattr(machine.module, "_tier2", None)
    with trace.span("interp.decode") as decode_extra:
        dm = get_tier2(machine.module, machine.mem)
        decode_extra["cached"] = dm is cached
    with trace.span("interp.run", function=func.name) as run_extra:
        result = exec_function(machine, dm.functions[func.name], ())
        run_extra["total_ops"] = machine.counters.total_ops
    return result


def exec_function(
    m: Machine, df: Tier2Function, args: tuple
) -> int | float | None:
    """One activation under tier 2.

    Fresh activations of a function whose entry heads a candidate region
    dispatch straight into the *fresh* region variant — no ``regs`` list is
    even allocated on the fast path; the variant returns a 1-tuple boxed
    value, a ``(label, regs)`` continuation, or a ``("deopt", label, regs)``
    deopt (regs materialized only on those cold exits).  Everything else
    runs the threaded dispatch loop, whose block fns may also return a
    2-tuple ``("deopt", label)``: execute that one block on the plain
    threaded tier (its segment guard and precise tail reproduce the exact
    raise), then resume normal dispatch.  The region has already counted
    the deopt block's visit, so the deopt path does not.
    """
    m._call_depth += 1
    if m._call_depth > 2000:
        raise ResourceLimitError("interpreted call stack too deep")
    mem = m.mem
    saved_sp = mem.stack_ptr
    ptr = saved_sp + df.frame_size
    if ptr > STACK_LIMIT:
        raise InterpError("interpreted program overflowed its stack")
    frame = [saved_sp + o for o in df.frame_offsets]
    mem.stack_ptr = ptr
    cells = mem.cells
    c = m.counters
    label = df.entry
    visits = m.block_visits
    regs: list[int | float] | None = None
    try:
        if visits is None:
            fresh = df.fresh_off
            if fresh is None and df.entry_fresh:
                n = df.fresh_count + 1
                df.fresh_count = n
                if n >= HOT_THRESHOLD and len(args) == df.nparams:
                    fresh = df.fresh_off = _compile_region(
                        df, label, False, fresh=True
                    )
            if fresh is not None and len(args) == df.nparams:
                res = fresh(args, frame, cells, c, m)
                k = len(res)
                if k == 1:
                    return res[0]
                if k == 2:
                    label = res[0]
                    regs = res[1]
                else:
                    regs = res[2]
                    nxt = df.plain(res[1])(regs, frame, cells, c, m)
                    if nxt.__class__ is not str:
                        return nxt[0]
                    label = nxt
            if regs is None:
                regs = [0] * df.nregs
                for i, value in zip(df.param_ids, args):
                    regs[i] = value
            blocks = df.blocks
            while True:
                fn = blocks.get(label)
                if fn is None:
                    fn = df.decode(label)
                nxt = fn(regs, frame, cells, c, m)
                while nxt.__class__ is not str:
                    if len(nxt) == 1:
                        return nxt[0]
                    nxt = df.plain(nxt[1])(regs, frame, cells, c, m)
                label = nxt
        else:
            fresh = df.fresh_on
            if fresh is None and df.entry_fresh:
                n = df.fresh_count + 1
                df.fresh_count = n
                if n >= HOT_THRESHOLD and len(args) == df.nparams:
                    fresh = df.fresh_on = _compile_region(
                        df, label, True, fresh=True
                    )
            if fresh is not None and len(args) == df.nparams:
                # the fresh variant counts its own entry visit
                res = fresh(args, frame, cells, c, m)
                k = len(res)
                if k == 1:
                    return res[0]
                if k == 2:
                    label = res[0]
                    regs = res[1]
                else:
                    regs = res[2]
                    nxt = df.plain(res[1])(regs, frame, cells, c, m)
                    if nxt.__class__ is not str:
                        return nxt[0]
                    label = nxt
            if regs is None:
                regs = [0] * df.nregs
                for i, value in zip(df.param_ids, args):
                    regs[i] = value
            blocks = df.blocks
            name = df.name
            while True:
                key = (name, label)
                visits[key] = visits.get(key, 0) + 1
                fn = blocks.get(label)
                if fn is None:
                    fn = df.decode(label)
                nxt = fn(regs, frame, cells, c, m)
                while nxt.__class__ is not str:
                    if len(nxt) == 1:
                        return nxt[0]
                    nxt = df.plain(nxt[1])(regs, frame, cells, c, m)
                label = nxt
    finally:
        mem.pop_frame(saved_sp)
        m._call_depth -= 1


def _make_probe(tf: Tier2Function, header: str, plain: Callable) -> Callable:
    """Header probe: count entries, compile past the threshold, then
    dispatch straight into the region (one variant per profiling mode)."""
    counts = tf.counts

    region_off: Callable | None = None
    region_on: Callable | None = None

    def _probe(regs, frame, cells, c, m):
        nonlocal region_off, region_on
        if m.block_visits is None:
            region = region_off
            if region is None:
                n = counts.get(header, 0) + 1
                counts[header] = n
                if n < HOT_THRESHOLD:
                    return plain(regs, frame, cells, c, m)
                region = region_off = _compile_region(tf, header, False)
                tf.regions[(header, False)] = region
            return region(regs, frame, cells, c, m)
        region = region_on
        if region is None:
            n = counts.get(header, 0) + 1
            counts[header] = n
            if n < HOT_THRESHOLD:
                return plain(regs, frame, cells, c, m)
            region = region_on = _compile_region(tf, header, True)
            tf.regions[(header, True)] = region
        return region(regs, frame, cells, c, m)

    return _probe


# -- region template compilation ---------------------------------------------
def _compile_region(
    tf: Tier2Function, header: str, profiled: bool, fresh: bool = False
) -> Callable:
    """Compile one region into a single specialized Python function.

    With ``fresh`` the region is specialized for activation entry: it takes
    the call's ``args`` tuple instead of a ``regs`` list, loads parameters
    from it, chain-assigns every other register to zero (the register file
    of a new activation is all zeros), and materializes a ``regs`` list
    only on the cold exits that need one (deopt, precise tail, region
    escape).  Its return protocol is ``(value,)`` for a function return,
    ``(label, regs)`` to continue threaded dispatch, and
    ``("deopt", label, regs)`` for a clean deopt.

    Generated shape (two-block loop, one promoted slot)::

        def _r(regs, frame, cells, c, m):
            _g = cells.get
            r3 = regs[3]; r4 = regs[4]
            x0 = _g(frame[0], 0)
            _m = m._max_steps
            _lim = _m - c.total_ops
            _t = 0; _ld = 0; ...
            _pc = 0
            try:
                while True:
                    if _pc == 0:                 # header
                        _t += 2
                        if _t > _lim:
                            _t -= 2
                            ... spill ...
                            return _d0           # ("deopt", header)
                        r3 = 1 if r4 < x0 else 0
                        if r3 != 0:
                            _pc = 1
                            continue
                        ... spill ...
                        return 'exit_label'
                    elif _pc == 1: ...
            except BaseException:
                cells[frame[0]] = x0             # traps see flushed slots
                c.total_ops += _t; ...
                raise
    """
    func = tf.func
    dm = tf.dm
    labels = tf.candidates[header]
    region_blocks = [func.blocks[lbl] for lbl in labels]

    # -- superblock linearization ------------------------------------------
    # a member with exactly one in-region predecessor is emitted inline
    # after that predecessor (plain fall-through, no ``_pc`` dispatch on
    # the edge); only chain heads get an arm in the dispatch ladder.  For
    # a branch whose targets both qualify, the hotter one (earlier in the
    # depth-sorted member order) falls through.
    member_order = {lbl: i for i, lbl in enumerate(labels)}

    def _succs(lbl: str) -> tuple[str, ...]:
        instrs = func.blocks[lbl].instrs
        term = instrs[-1] if instrs else None
        cls = term.__class__
        if cls is Jump:
            return (term.target,)
        if cls is Branch:
            if term.if_true == term.if_false:
                return (term.if_true,)
            return (term.if_true, term.if_false)
        return ()

    pred_count: dict[str, int] = {lbl: 0 for lbl in labels}
    for lbl in labels:
        for s in _succs(lbl):
            if s in pred_count:
                pred_count[s] += 1
    fallthrough: dict[str, str] = {}
    inlined: set[str] = set()
    for lbl in labels:
        for s in sorted(
            _succs(lbl), key=lambda t: member_order.get(t, len(labels))
        ):
            if (
                s != header
                and s != lbl
                and pred_count.get(s) == 1
                and s not in inlined
            ):
                fallthrough[lbl] = s
                inlined.add(s)
                break
    arm_labels = [lbl for lbl in labels if lbl not in inlined]
    pc_of = {lbl: i for i, lbl in enumerate(arm_labels)}

    # -- promotion analysis ------------------------------------------------
    used_vregs: set[int] = set()
    scalar_local: set[str] = set()
    scalar_global: set[str] = set()
    has_call = False
    for block in region_blocks:
        for instr in block.instrs:
            for u in instr.uses():
                used_vregs.add(u.id)
            d = instr.dest
            if d is not None:
                used_vregs.add(d.id)
            cls = instr.__class__
            if cls is Call:
                # intrinsics cannot reference a module global without a
                # pointer (and promoted globals are never addressed), so
                # only real function calls demote global promotion;
                # ``clock`` reads counters, not memory
                callee = instr.callee
                if (
                    callee is None
                    or callee in dm.functions
                    or not is_intrinsic(callee)
                ):
                    has_call = True
            elif cls is ScalarLoad or cls is CLoad or cls is ScalarStore:
                tag = instr.tag
                if tag.kind is TagKind.LOCAL:
                    scalar_local.add(tag.name)
                else:
                    scalar_global.add(tag.name)

    local_addressed = tf.local_addressed()
    sizes = tf.sizes
    #: promoted frame slots: slot index -> local name
    promo_slot: dict[int, str] = {}
    for name in scalar_local:
        slot = tf.slots.get(name)
        if slot is None or name in local_addressed:
            continue
        if sizes.get(name, _ALIGN) > _ALIGN:
            continue
        promo_slot[slot] = f"x{slot}"

    #: promoted globals: baked address -> local name (call-free regions only)
    promo_global: dict[int, str] = {}
    if not has_call:
        global_addressed = dm.global_addressed()
        for name in sorted(scalar_global):
            if name in global_addressed:
                continue
            addr = dm.global_addr.get(name)
            if addr is None:
                continue  # strings stay in memory
            var = dm.module.globals.get(name)
            if var is None or var.size > _ALIGN:
                continue
            promo_global[addr] = f"g{len(promo_global)}"

    promo_global_by_name = {}
    for name in scalar_global:
        addr = dm.global_addr.get(name)
        if addr is not None and addr in promo_global:
            promo_global_by_name[name] = promo_global[addr]

    # non-promoted frame slots the region touches: hoist the (constant)
    # frame address into a local once, instead of indexing ``frame`` at
    # every access
    hoist_slot: dict[int, str] = {}
    for block in region_blocks:
        for instr in block.instrs:
            cls = instr.__class__
            if (
                cls is ScalarLoad
                or cls is CLoad
                or cls is ScalarStore
                or cls is LoadAddr
            ):
                tag = instr.tag
                if tag.kind is TagKind.LOCAL:
                    slot = tf.slots.get(tag.name)
                    if slot is not None and slot not in promo_slot:
                        hoist_slot[slot] = f"_h{slot}"

    def frame_ref(slot: int) -> str:
        return hoist_slot.get(slot) or f"frame[{slot}]"

    # -- source emission ---------------------------------------------------
    ns: dict[str, Any] = {
        "_binop": _binop,
        "_unop": _unop,
        "_div": c_div,
        "_mod": c_mod,
        "_call": dm.call_executor,
        "_trap_load": _trap_load,
        "_trap_store": _trap_store,
    }
    uid = [0]

    def bind(value, prefix: str) -> str:
        name = f"_{prefix}{uid[0]}"
        uid[0] += 1
        ns[name] = value
        return name

    op_names: dict[Opcode, str] = {}

    def opname(op: Opcode) -> str:
        name = op_names.get(op)
        if name is None:
            name = bind(op, "o")
            op_names[op] = name
        return name

    used_fields: set[str] = set()

    def flush_counters(out: list[str], ind: str) -> None:
        out.append(f"{ind}c.total_ops += _t")
        out.append(f"{ind}_t = 0")
        for fld in _COUNTER_FIELDS:
            if fld in used_fields:
                out.append(f"{ind}c.{fld} += {_DELTA[fld]}")
                out.append(f"{ind}{_DELTA[fld]} = 0")

    def spill_promoted(out: list[str], ind: str) -> None:
        for slot, name in sorted(promo_slot.items()):
            out.append(f"{ind}cells[frame[{slot}]] = {name}")
        for addr, name in sorted(promo_global.items()):
            out.append(f"{ind}cells[{addr}] = {name}")

    def spill_all(out: list[str], ind: str) -> None:
        if fresh:
            # cold exit: build the regs list the threaded tier expects —
            # zeros, then parameters the region never touched, then every
            # register the region tracks
            out.append(f"{ind}regs = [0] * {tf.nregs}")
            for i, pid in enumerate(tf.param_ids):
                if pid not in used_vregs:
                    out.append(f"{ind}regs[{pid}] = args[{i}]")
        for rid in sorted(used_vregs):
            out.append(f"{ind}regs[{rid}] = r{rid}")
        spill_promoted(out, ind)
        flush_counters(out, ind)

    # tag -> (kind, payload): "local" promoted local var, "frame" slot idx,
    # "addr" baked address, "gvar" promoted global var, "err" raiser src
    def classify_tag(tag):
        if tag.kind is TagKind.LOCAL:
            slot = tf.slots.get(tag.name)
            if slot is None:
                return (
                    "err",
                    bind(
                        _raiser(
                            InterpError,
                            f"local tag {tag.name} has no frame slot",
                        ),
                        "e",
                    )
                    + "()",
                )
            var = promo_slot.get(slot)
            if var is not None:
                return ("local", var)
            return ("frame", slot)
        gname = promo_global_by_name.get(tag.name)
        if gname is not None:
            return ("gvar", gname)
        addr = dm.global_addr.get(tag.name)
        if addr is None:
            addr = dm.string_addr.get(tag.name)
        if addr is None:
            return (
                "err",
                bind(_raiser(InterpError, f"tag {tag.name} has no address"), "e")
                + "()",
            )
        return ("addr", addr)

    def emit_wrap(out: list[str], ind: str, dst: str, expr: str) -> None:
        out.append(f"{ind}{dst} = {expr}")
        out.append(ind + _WRAP_CHECK.format(v=dst))
        out.append(ind + "    " + _WRAP_MASK.format(v=dst))

    def args_src(call: Call) -> str:
        parts = ", ".join(f"r{a.id}" for a in call.args)
        if len(call.args) == 1:
            return f"({parts},)"
        return f"({parts})"

    def emit_instr(instr, out: list[str], ind: str) -> None:
        cls = instr.__class__
        if cls is BinOp:
            op = instr.opcode
            dst = f"r{instr.dst.id}"
            lhs = f"r{instr.lhs.id}"
            rhs = f"r{instr.rhs.id}"
            sym = _WRAP_SRC.get(op)
            both_int = f"{lhs}.__class__ is int and {rhs}.__class__ is int"
            if sym is not None:
                emit_wrap(out, ind, dst, f"{lhs} {sym} {rhs}")
            elif op in _CMP_SRC:
                out.append(f"{ind}{dst} = 1 if {lhs} {_CMP_SRC[op]} {rhs} else 0")
            elif op is Opcode.DIV:
                # for non-negative operands C truncation equals floor
                # division and the quotient's magnitude never grows, so no
                # wrap is needed either
                out.append(f"{ind}if {both_int}:")
                out.append(f"{ind}    if {lhs} >= 0 and {rhs} > 0:")
                out.append(f"{ind}        {dst} = {lhs} // {rhs}")
                out.append(f"{ind}    else:")
                out.append(f"{ind}        {dst} = _div({lhs}, {rhs})")
                out.append(
                    f"{ind}elif {rhs}.__class__ is float and {rhs} != 0.0:"
                )
                out.append(f"{ind}    {dst} = {lhs} / {rhs}")
                out.append(f"{ind}else:")
                out.append(f"{ind}    {dst} = _binop({opname(op)}, {lhs}, {rhs})")
            elif op is Opcode.MOD:
                out.append(f"{ind}if {both_int}:")
                out.append(f"{ind}    if {lhs} >= 0 and {rhs} > 0:")
                out.append(f"{ind}        {dst} = {lhs} % {rhs}")
                out.append(f"{ind}    else:")
                out.append(f"{ind}        {dst} = _mod({lhs}, {rhs})")
                out.append(f"{ind}else:")
                out.append(f"{ind}    {dst} = _binop({opname(op)}, {lhs}, {rhs})")
            elif op in _BIT_SRC:
                # &, |, ^ of two in-range signed 64-bit ints sign-extend
                # consistently, so the result is already in range
                out.append(f"{ind}if {both_int}:")
                out.append(f"{ind}    {dst} = {lhs} {_BIT_SRC[op]} {rhs}")
                out.append(f"{ind}else:")
                out.append(f"{ind}    {dst} = _binop({opname(op)}, {lhs}, {rhs})")
            elif op is Opcode.SHL:
                out.append(f"{ind}if {both_int}:")
                out.append(f"{ind}    v = {lhs} << ({rhs} & 63)")
                out.append(ind + "    " + _WRAP_CHECK.format(v="v"))
                out.append(ind + "        " + _WRAP_MASK.format(v="v"))
                out.append(f"{ind}    {dst} = v")
                out.append(f"{ind}else:")
                out.append(f"{ind}    {dst} = _binop({opname(op)}, {lhs}, {rhs})")
            elif op is Opcode.SHR:
                out.append(f"{ind}if {both_int}:")
                out.append(f"{ind}    {dst} = {lhs} >> ({rhs} & 63)")
                out.append(f"{ind}else:")
                out.append(f"{ind}    {dst} = _binop({opname(op)}, {lhs}, {rhs})")
            else:
                out.append(f"{ind}{dst} = _binop({opname(op)}, {lhs}, {rhs})")
        elif cls is LoadI:
            value = instr.value
            if type(value) is int:
                out.append(f"{ind}r{instr.dst.id} = {value!r}")
            else:
                out.append(f"{ind}r{instr.dst.id} = {bind(value, 'k')}")
        elif cls is Mov:
            out.append(f"{ind}r{instr.dst.id} = r{instr.src.id}")
        elif cls is ScalarLoad or cls is CLoad:
            kind, payload = classify_tag(instr.tag)
            if kind == "local" or kind == "gvar":
                out.append(f"{ind}r{instr.dst.id} = {payload}")
            elif kind == "frame":
                out.append(f"{ind}r{instr.dst.id} = _g({frame_ref(payload)}, 0)")
            elif kind == "addr":
                out.append(f"{ind}r{instr.dst.id} = _g({payload}, 0)")
            else:
                out.append(f"{ind}{payload}")
        elif cls is ScalarStore:
            kind, payload = classify_tag(instr.tag)
            if kind == "local" or kind == "gvar":
                out.append(f"{ind}{payload} = r{instr.src.id}")
            elif kind == "frame":
                out.append(f"{ind}cells[{frame_ref(payload)}] = r{instr.src.id}")
            elif kind == "addr":
                out.append(f"{ind}cells[{payload}] = r{instr.src.id}")
            else:
                out.append(f"{ind}{payload}")
        elif cls is MemLoad:
            addr = f"r{instr.addr.id}"
            out.append(f"{ind}if {addr}.__class__ is not int:")
            out.append(f"{ind}    _trap_load({addr})")
            out.append(f"{ind}r{instr.dst.id} = _g({addr}, 0)")
        elif cls is MemStore:
            addr = f"r{instr.addr.id}"
            out.append(f"{ind}if {addr}.__class__ is not int:")
            out.append(f"{ind}    _trap_store({addr})")
            out.append(f"{ind}cells[{addr}] = r{instr.src.id}")
        elif cls is LoadAddr:
            kind, payload = classify_tag(instr.tag)
            if kind == "frame":
                expr = frame_ref(payload)
                if instr.offset:
                    expr = f"{expr} + {instr.offset}"
                out.append(f"{ind}r{instr.dst.id} = {expr}")
            elif kind == "addr":
                out.append(f"{ind}r{instr.dst.id} = {payload + instr.offset!r}")
            elif kind == "err":
                out.append(f"{ind}{payload}")
            else:  # pragma: no cover - promoted tags are never addressed
                raise InterpError(
                    f"tier2: LoadAddr on promoted tag {instr.tag.name}"
                )
        elif cls is UnOp:
            op = instr.opcode
            dst = f"r{instr.dst.id}"
            src = f"r{instr.src.id}"
            if op is Opcode.NEG:
                emit_wrap(out, ind, dst, f"-{src}")
            elif op is Opcode.LNOT:
                out.append(f"{ind}{dst} = 1 if {src} == 0 else 0")
            elif op is Opcode.I2F:
                out.append(f"{ind}{dst} = float({src})")
            elif op is Opcode.F2I:
                emit_wrap(out, ind, dst, f"int({src})")
            elif op is Opcode.NOT:
                # ~a of an in-range int is -a-1, still in range
                out.append(f"{ind}if {src}.__class__ is int:")
                out.append(f"{ind}    {dst} = ~{src}")
                out.append(f"{ind}else:")
                out.append(f"{ind}    {dst} = _unop({opname(op)}, {src})")
            else:
                out.append(f"{ind}{dst} = _unop({opname(op)}, {src})")
        elif cls is Call:
            # only total_ops must be exact at the call boundary (clock()
            # and the callee's budget guard read it); the other deltas
            # commute with the callee's own increments and are flushed at
            # every region boundary and in the except handler.  Intrinsics
            # other than clock() never read or consume the budget, so their
            # calls skip the flush and the _lim recompute entirely.
            name = instr.callee
            observes = True
            if name is None:
                call_expr = (
                    bind(
                        _raiser(
                            InterpError,
                            "indirect calls are not executable in this build",
                        ),
                        "e",
                    )
                    + "()"
                )
            else:
                target = dm.functions.get(name)
                if target is not None:
                    call_expr = f"_call(m, {bind(target, 'f')}, {args_src(instr)})"
                elif is_intrinsic(name):
                    observes = name == "clock"
                    call_expr = (
                        f"m._exec_intrinsic({name!r}, {args_src(instr)},"
                        f" {instr.site_id})"
                    )
                else:
                    call_expr = (
                        bind(
                            _raiser(
                                InterpError,
                                f"call to unknown function {name!r}",
                            ),
                            "e",
                        )
                        + "()"
                    )
            if observes:
                out.append(f"{ind}c.total_ops += _t")
                out.append(f"{ind}_t = 0")
            if instr.dst is not None:
                out.append(f"{ind}v = {call_expr}")
                out.append(f"{ind}r{instr.dst.id} = 0 if v is None else v")
            else:
                out.append(f"{ind}{call_expr}")
            if observes:
                out.append(f"{ind}_lim = _m - c.total_ops")
        elif cls is Nop:
            pass
        elif cls is Phi:
            out.append(
                f"{ind}"
                + bind(
                    _raiser(
                        InterpError,
                        "phi reached the interpreter; destruct SSA first",
                    ),
                    "e",
                )
                + "()"
            )
        else:  # pragma: no cover - defensive
            out.append(
                f"{ind}"
                + bind(_raiser(InterpError, f"unknown instruction {instr}"), "e")
                + "()"
            )

    # first pass: which counter fields does any region block touch?
    for block in region_blocks:
        for instr in block.instrs:
            cls = instr.__class__
            if cls is Mov:
                used_fields.add("copies")
            elif cls is ScalarLoad or cls is CLoad:
                used_fields.update(("loads", "scalar_loads"))
            elif cls is ScalarStore:
                used_fields.update(("stores", "scalar_stores"))
            elif cls is MemLoad:
                used_fields.update(("loads", "general_loads"))
            elif cls is MemStore:
                used_fields.update(("stores", "general_stores"))
            elif cls is Branch:
                used_fields.add("branches")
            elif cls is Call:
                used_fields.add("calls")

    name = func.name
    if fresh:
        lines = ["def _r(args, frame, cells, c, m):", "    _g = cells.get"]
        param_pos = {pid: i for i, pid in enumerate(tf.param_ids)}
        zeros: list[str] = []
        for rid in sorted(used_vregs):
            pos = param_pos.get(rid)
            if pos is not None:
                lines.append(f"    r{rid} = args[{pos}]")
            else:
                zeros.append(f"r{rid}")
        while zeros:
            lines.append("    " + " = ".join(zeros[:20]) + " = 0")
            del zeros[:20]
    else:
        lines = ["def _r(regs, frame, cells, c, m):", "    _g = cells.get"]
        for rid in sorted(used_vregs):
            lines.append(f"    r{rid} = regs[{rid}]")
    for slot, var in sorted(hoist_slot.items()):
        lines.append(f"    {var} = frame[{slot}]")
    for slot, var in sorted(promo_slot.items()):
        lines.append(f"    {var} = _g(frame[{slot}], 0)")
    for addr, var in sorted(promo_global.items()):
        lines.append(f"    {var} = _g({addr}, 0)")
    lines.append("    _m = m._max_steps")
    lines.append("    _lim = _m - c.total_ops")
    lines.append("    _t = 0")
    for fld in _COUNTER_FIELDS:
        if fld in used_fields:
            lines.append(f"    {_DELTA[fld]} = 0")
    if profiled:
        lines.append("    _vb = m.block_visits")
        if not fresh:
            lines.append("    _skip = True")
    lines.append("    _pc = 0")
    lines.append("    try:")
    lines.append("        while True:")

    def emit_exit(label_expr: str, out: list[str], ind: str) -> None:
        """Leave the region to threaded dispatch at ``label_expr``."""
        spill_all(out, ind)
        if fresh:
            out.append(f"{ind}return ({label_expr}, regs)")
        else:
            out.append(f"{ind}return {label_expr}")

    def emit_jump(target: str, out: list[str], ind: str) -> None:
        pc = pc_of.get(target)
        if pc is not None:
            out.append(f"{ind}_pc = {pc}")
            out.append(f"{ind}continue")
        else:
            emit_exit(repr(target), out, ind)

    def emit_block_code(lbl: str) -> None:
        """Emit one block's body (and its fall-through chain) in place."""
        block = func.blocks[lbl]
        ind = "                "  # inside while inside try
        if profiled:
            key_name = bind((name, lbl), "K")
            if lbl == header and not fresh:
                # the dispatcher already counted the entry visit
                lines.append(f"{ind}if _skip:")
                lines.append(f"{ind}    _skip = False")
                lines.append(f"{ind}else:")
                lines.append(
                    f"{ind}    _vb[{key_name}] ="
                    f" _vb.get({key_name}, 0) + 1"
                )
            else:
                lines.append(
                    f"{ind}_vb[{key_name}] = _vb.get({key_name}, 0) + 1"
                )
        # segment split: a Call ends its segment (exact clock()/budget)
        segments: list[tuple[int, list]] = []
        seg: list = []
        seg_start = 0
        for idx, instr in enumerate(block.instrs):
            seg.append(instr)
            if instr.__class__ is Call:
                segments.append((seg_start, seg))
                seg = []
                seg_start = idx + 1
        if seg or not segments:
            segments.append((seg_start, seg))
        first = True
        for seg_start, seg in segments:
            mix = sum(1 for i in seg if i.__class__ is not Nop)
            if mix:
                lines.append(f"{ind}_t += {mix}")
                lines.append(f"{ind}if _t > _lim:")
                guard = [f"{ind}    _t -= {mix}"]
                spill_all(guard, ind + "    ")
                if first:
                    # nothing of this block has run: deopt is a clean jump
                    if fresh:
                        guard.append(
                            f"{ind}    return ('deopt', {lbl!r}, regs)"
                        )
                    else:
                        dep = bind(("deopt", lbl), "D")
                        guard.append(f"{ind}    return {dep}")
                else:
                    # mid-block: replay the rest with reference semantics
                    tail = bind(_make_tail(tf, lbl, seg_start), "T")
                    if fresh:
                        guard.append(
                            f"{ind}    _x = {tail}(m, regs, frame, cells, c)"
                        )
                        guard.append(f"{ind}    if _x.__class__ is str:")
                        guard.append(f"{ind}        return (_x, regs)")
                        guard.append(f"{ind}    return _x")
                    else:
                        guard.append(
                            f"{ind}    return {tail}(m, regs, frame, cells, c)"
                        )
                lines.extend(guard)
            first = False
            for fld in _COUNTER_FIELDS:
                n = 0
                for i in seg:
                    cls = i.__class__
                    if fld == "copies" and cls is Mov:
                        n += 1
                    elif fld == "loads" and (
                        cls is ScalarLoad or cls is CLoad or cls is MemLoad
                    ):
                        n += 1
                    elif fld == "scalar_loads" and (
                        cls is ScalarLoad or cls is CLoad
                    ):
                        n += 1
                    elif fld == "stores" and (
                        cls is ScalarStore or cls is MemStore
                    ):
                        n += 1
                    elif fld == "scalar_stores" and cls is ScalarStore:
                        n += 1
                    elif fld == "general_loads" and cls is MemLoad:
                        n += 1
                    elif fld == "general_stores" and cls is MemStore:
                        n += 1
                    elif fld == "branches" and cls is Branch:
                        n += 1
                    elif fld == "calls" and cls is Call:
                        n += 1
                if n:
                    lines.append(f"{ind}{_DELTA[fld]} += {n}")
            for instr in seg:
                cls = instr.__class__
                if cls is Jump:
                    if fallthrough.get(lbl) == instr.target:
                        emit_block_code(instr.target)
                    else:
                        emit_jump(instr.target, lines, ind)
                elif cls is Branch:
                    cond = f"r{instr.cond.id} != 0"
                    ft = fallthrough.get(lbl)
                    if ft == instr.if_true or ft == instr.if_false:
                        if instr.if_true == instr.if_false:
                            emit_block_code(ft)
                            continue
                        if ft == instr.if_false:
                            other, test = instr.if_true, f"if {cond}:"
                        else:
                            other, test = instr.if_false, f"if not ({cond}):"
                        o_pc = pc_of.get(other)
                        lines.append(f"{ind}{test}")
                        if o_pc is not None:
                            lines.append(f"{ind}    _pc = {o_pc}")
                            lines.append(f"{ind}    continue")
                        else:
                            emit_exit(repr(other), lines, ind + "    ")
                        emit_block_code(ft)
                        continue
                    t_pc = pc_of.get(instr.if_true)
                    f_pc = pc_of.get(instr.if_false)
                    if t_pc is not None and f_pc is not None:
                        lines.append(f"{ind}if {cond}:")
                        lines.append(f"{ind}    _pc = {t_pc}")
                        lines.append(f"{ind}else:")
                        lines.append(f"{ind}    _pc = {f_pc}")
                        lines.append(f"{ind}continue")
                    elif t_pc is not None:
                        lines.append(f"{ind}if {cond}:")
                        lines.append(f"{ind}    _pc = {t_pc}")
                        lines.append(f"{ind}    continue")
                        emit_exit(repr(instr.if_false), lines, ind)
                    elif f_pc is not None:
                        lines.append(f"{ind}if not ({cond}):")
                        lines.append(f"{ind}    _pc = {f_pc}")
                        lines.append(f"{ind}    continue")
                        emit_exit(repr(instr.if_true), lines, ind)
                    else:
                        emit_exit(
                            f"({instr.if_true!r} if {cond}"
                            f" else {instr.if_false!r})",
                            lines,
                            ind,
                        )
                elif cls is Ret:
                    # frame slots die with the activation, but their final
                    # cell values must match the reference engine's (stack
                    # addresses are reused; see MemoryImage.pop_frame)
                    spill_promoted(lines, ind)
                    flush_counters(lines, ind)
                    if instr.value is not None:
                        lines.append(f"{ind}return (r{instr.value.id},)")
                    else:
                        lines.append(f"{ind}return (None,)")
                else:
                    emit_instr(instr, lines, ind)
        term = block.instrs[-1] if block.instrs else None
        if term is None or not term.is_terminator():
            lines.append(
                f"{ind}"
                + bind(
                    _raiser(
                        InterpError,
                        f"block {lbl} in {name} fell through without"
                        " terminator",
                    ),
                    "e",
                )
                + "()"
            )

    for bi, lbl in enumerate(arm_labels):
        kw = "if" if bi == 0 else "elif"
        lines.append(f"            {kw} _pc == {bi}:")
        emit_block_code(lbl)
    lines.append("    except BaseException:")
    spill_promoted(lines, "        ")
    flush_counters(lines, "        ")
    lines.append("        raise")

    src = "\n".join(lines)
    code = compile(
        src,
        f"<tier2 {name}:{header}"
        f"{'+fresh' if fresh else ''}{'+profile' if profiled else ''}>",
        "exec",
    )
    exec(code, ns)
    return ns["_r"]


# executor/class wiring happens after the definitions the attributes name
Tier2Module.function_cls = Tier2Function
Tier2Module.call_executor = staticmethod(exec_function)

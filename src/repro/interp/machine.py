"""The instrumented IL interpreter.

Executes a module deterministically and counts every operation, load, and
store it performs — the measurement apparatus behind the paper's
Figures 5-7.  Semantics follow C on an LP64 machine: 64-bit two's
complement integer arithmetic, truncating integer division, IEEE doubles.

The machine is also the *substitute for the paper's hardware testbed*: the
paper instrumented compiled binaries; we instrument IL execution, which
measures the same three quantities exactly (and deterministically).

Three execution engines share this measurement contract:

``threaded`` (the default)
    The block-threaded engine in :mod:`repro.interp.engine`: each basic
    block is decoded once into a specialized closure with addresses,
    register indices, and callees resolved at decode time, and counters
    folded in as per-block batches.  Observable behavior — counters,
    output, exit code, ``clock()`` values, traps, ``max_steps``
    exhaustion, and ``block_visits`` under profiling — is bit-identical
    to the reference engine (enforced by the differential oracle in
    ``tests/interp/test_engine_equiv.py``).

``tier2``
    The specializing tier in :mod:`repro.interp.tier2`: hot regions
    (whole small functions and natural loops) are template-compiled into
    single Python functions with virtual registers and promotion-eligible
    frame slots held in Python locals, deoptimizing exactly to the
    threaded tier at budget/trap boundaries.  Same bit-identical
    observable contract, same differential oracle.

``simple``
    The reference semantics: the per-instruction dispatch loop in
    :meth:`Machine._exec_function` below.  Kept deliberately direct so it
    stays auditable against the IL specification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..diag.log import get_logger
from ..errors import InterpError, InterpTrap, ResourceLimitError
from ..intrinsics import ALLOCATORS, is_intrinsic
from ..ir.function import Function
from ..ir.instructions import (
    BinOp,
    Branch,
    Call,
    CLoad,
    Jump,
    LoadAddr,
    LoadI,
    MemLoad,
    MemStore,
    Mov,
    Nop,
    Phi,
    Ret,
    ScalarLoad,
    ScalarStore,
    UnOp,
)
from ..ir.module import Module
from ..ir.opcodes import Opcode
from ..ir.tags import TagKind
from .counters import Counters
from .memory import MemoryImage

_log = get_logger(__name__)

_INT_MASK = (1 << 64) - 1
_INT_SIGN = 1 << 63


def wrap_int(value: int) -> int:
    """Reduce to signed 64-bit two's complement."""
    value &= _INT_MASK
    if value & _INT_SIGN:
        value -= 1 << 64
    return value


def c_div(a: int, b: int) -> int:
    """C integer division: truncation toward zero."""
    if b == 0:
        raise InterpTrap("integer division by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return wrap_int(q)


def c_mod(a: int, b: int) -> int:
    return wrap_int(a - c_div(a, b) * b)


class _ProgramExit(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


@dataclass
class RunResult:
    """Outcome of one interpreted run."""

    exit_code: int
    counters: Counters
    output: str
    #: return value of main (same as exit_code unless exit() was called)
    returned: int | float | None = None
    #: ``(function, block label) -> execution count``; ``None`` unless the
    #: run was profiled (``MachineOptions.profile``) — see
    #: :mod:`repro.diag.profile` for the per-loop fold-up
    block_visits: dict[tuple[str, str], int] | None = None


@dataclass
class MachineOptions:
    max_steps: int = 500_000_000
    capture_output: bool = True
    rand_seed: int = 1
    #: count per-block executions for per-loop attribution; the default
    #: (off) path allocates nothing and does no per-instruction work
    profile: bool = False
    #: execution engine: ``"threaded"`` (block-threaded, pre-decoded — the
    #: default), ``"tier2"`` (the specializing tier: hot regions compiled
    #: with frame slots promoted to Python locals, threaded elsewhere), or
    #: ``"simple"`` (the per-instruction reference loop)
    engine: str = "threaded"


class Machine:
    """Interprets one module.  Create a fresh Machine per run."""

    def __init__(self, module: Module, options: MachineOptions | None = None) -> None:
        self.module = module
        self.options = options or MachineOptions()
        self.mem = MemoryImage(module)
        self.counters = Counters()
        #: per-(function, block) execution counts; None when profiling is
        #: off so the default path never allocates
        self.block_visits: dict[tuple[str, str], int] | None = (
            {} if self.options.profile else None
        )
        self.output: list[str] = []
        self._rand_state = self.options.rand_seed
        self._call_depth = 0
        self._heap_site_of_addr: dict[int, int] = {}
        # hot-path bindings: the execution engines read these every call
        # instead of chasing option/module attribute chains
        self._max_steps = self.options.max_steps
        self._functions = module.functions

    # -- public API --------------------------------------------------------
    def run(self, entry: str = "main") -> RunResult:
        func = self.module.functions.get(entry)
        if func is None:
            raise InterpError(f"no entry function {entry!r}")
        engine_name = self.options.engine
        if engine_name not in ("threaded", "tier2", "simple"):
            raise InterpError(f"unknown interpreter engine {engine_name!r}")
        # the interpreter recurses once per interpreted call; make room in
        # the Python stack for the machine's own depth limit, restoring
        # the caller's limit once the run is over
        import sys

        old_limit = sys.getrecursionlimit()
        bumped = old_limit < 40_000
        if bumped:
            sys.setrecursionlimit(40_000)
        try:
            try:
                if engine_name == "threaded":
                    from . import engine as _engine

                    value = _engine.exec_entry(self, func)
                elif engine_name == "tier2":
                    from . import tier2 as _tier2

                    value = _tier2.exec_entry(self, func)
                else:
                    value = self._exec_function(func, [])
                code = int(value) if isinstance(value, (int, float)) else 0
            except _ProgramExit as exit_:
                value = None
                code = exit_.code
        finally:
            if bumped:
                sys.setrecursionlimit(old_limit)
        result = RunResult(
            exit_code=wrap_int(code) & 0xFF if code >= 0 else code,
            counters=self.counters,
            output="".join(self.output),
            returned=value,
            block_visits=self.block_visits,
        )
        _log.debug(
            "run finished: exit=%d %s", result.exit_code, result.counters
        )
        return result

    # -- execution core ------------------------------------------------------
    def _exec_function(
        self, func: Function, args: list[int | float]
    ) -> int | float | None:
        self._call_depth += 1
        if self._call_depth > 2000:
            raise ResourceLimitError("interpreted call stack too deep")
        saved_sp = self.mem.stack_ptr
        frame_addrs = self.mem.push_frame(func.local_tags, func.local_tag_sizes)

        nregs = func.max_vreg_id() + 1
        regs: list[int | float] = [0] * nregs
        for reg, value in zip(func.params, args):
            regs[reg.id] = value

        counters = self.counters
        mem = self.mem
        cells = mem.cells
        max_steps = self.options.max_steps
        label = func.entry
        result: int | float | None = None
        # Profiling attributes whole blocks, never single instructions: a
        # block always executes all of its instructions once entered, so
        # ``visits x static mix`` reconstructs exact dynamic counts (see
        # repro.diag.profile).  The off path is one None test per block.
        visits = self.block_visits
        func_name = func.name

        try:
            while True:
                block = func.blocks[label]
                if visits is not None:
                    key = (func_name, label)
                    visits[key] = visits.get(key, 0) + 1
                next_label: str | None = None
                for instr in block.instrs:
                    counters.total_ops += 1
                    if counters.total_ops > max_steps:
                        raise ResourceLimitError(
                            f"exceeded {max_steps} executed operations"
                        )
                    cls = type(instr)
                    if cls is BinOp:
                        regs[instr.dst.id] = _binop(
                            instr.opcode, regs[instr.lhs.id], regs[instr.rhs.id]
                        )
                    elif cls is LoadI:
                        regs[instr.dst.id] = instr.value
                    elif cls is Mov:
                        counters.copies += 1
                        regs[instr.dst.id] = regs[instr.src.id]
                    elif cls is ScalarLoad:
                        counters.loads += 1
                        counters.scalar_loads += 1
                        addr = self._tag_addr(instr.tag, frame_addrs)
                        regs[instr.dst.id] = cells.get(addr, 0)
                    elif cls is ScalarStore:
                        counters.stores += 1
                        counters.scalar_stores += 1
                        addr = self._tag_addr(instr.tag, frame_addrs)
                        cells[addr] = regs[instr.src.id]
                    elif cls is MemLoad:
                        counters.loads += 1
                        counters.general_loads += 1
                        addr = regs[instr.addr.id]
                        if not isinstance(addr, int):
                            raise InterpTrap(f"load through non-integer address {addr!r}")
                        regs[instr.dst.id] = cells.get(addr, 0)
                    elif cls is MemStore:
                        counters.stores += 1
                        counters.general_stores += 1
                        addr = regs[instr.addr.id]
                        if not isinstance(addr, int):
                            raise InterpTrap(f"store through non-integer address {addr!r}")
                        cells[addr] = regs[instr.src.id]
                    elif cls is CLoad:
                        counters.loads += 1
                        counters.scalar_loads += 1
                        addr = self._tag_addr(instr.tag, frame_addrs)
                        regs[instr.dst.id] = cells.get(addr, 0)
                    elif cls is UnOp:
                        regs[instr.dst.id] = _unop(instr.opcode, regs[instr.src.id])
                    elif cls is LoadAddr:
                        regs[instr.dst.id] = (
                            self._tag_addr(instr.tag, frame_addrs) + instr.offset
                        )
                    elif cls is Jump:
                        next_label = instr.target
                        break
                    elif cls is Branch:
                        counters.branches += 1
                        next_label = (
                            instr.if_true if regs[instr.cond.id] != 0 else instr.if_false
                        )
                        break
                    elif cls is Ret:
                        if instr.value is not None:
                            result = regs[instr.value.id]
                        return result
                    elif cls is Call:
                        counters.calls += 1
                        value = self._exec_call(instr, regs)
                        if instr.dst is not None:
                            regs[instr.dst.id] = value if value is not None else 0
                    elif cls is Nop:
                        counters.total_ops -= 1  # structural, never "executed"
                    elif cls is Phi:
                        raise InterpError(
                            "phi reached the interpreter; destruct SSA first"
                        )
                    else:  # pragma: no cover - defensive
                        raise InterpError(f"unknown instruction {instr}")
                if next_label is None:
                    raise InterpError(
                        f"block {label} in {func.name} fell through without terminator"
                    )
                label = next_label
        finally:
            self.mem.pop_frame(saved_sp)
            self._call_depth -= 1

    # -- helpers -----------------------------------------------------------
    def _tag_addr(self, tag, frame_addrs: dict[str, int]) -> int:
        if tag.kind is TagKind.LOCAL:
            addr = frame_addrs.get(tag.name)
            if addr is None:
                raise InterpError(f"local tag {tag.name} has no frame slot")
            return addr
        addr = self.mem.global_addr.get(tag.name)
        if addr is not None:
            return addr
        addr = self.mem.string_addr.get(tag.name)
        if addr is not None:
            return addr
        raise InterpError(f"tag {tag.name} has no address")

    def _exec_call(self, instr: Call, regs: list[int | float]) -> int | float | None:
        name = instr.callee
        if name is None:
            raise InterpError("indirect calls are not executable in this build")
        args = [regs[a.id] for a in instr.args]
        target = self._functions.get(name)
        if target is not None:
            return self._exec_function(target, args)
        if is_intrinsic(name):
            return self._exec_intrinsic(name, args, instr.site_id)
        raise InterpError(f"call to unknown function {name!r}")

    # -- intrinsics ---------------------------------------------------------
    def _exec_intrinsic(
        self, name: str, args: list[int | float] | tuple, site_id: int = -1
    ) -> int | float | None:
        mem = self.mem
        if name == "printf":
            return self._printf(args)
        if name == "putchar":
            ch = int(args[0]) & 0xFF
            if self.options.capture_output:
                self.output.append(chr(ch))
            return int(args[0])
        if name == "puts":
            text = mem.read_c_string(int(args[0]))
            if self.options.capture_output:
                self.output.append(text + "\n")
            return 0
        if name in ALLOCATORS:
            if name == "calloc":
                size = int(args[0]) * int(args[1])
            else:
                size = int(args[0])
            addr = mem.allocate(max(size, 1))
            self._heap_site_of_addr[addr] = site_id
            return addr
        if name == "free":
            mem.free(int(args[0]))
            return None
        if name == "sqrt":
            return math.sqrt(float(args[0]))
        if name == "fabs":
            return abs(float(args[0]))
        if name == "sin":
            return math.sin(float(args[0]))
        if name == "cos":
            return math.cos(float(args[0]))
        if name == "exp":
            return math.exp(float(args[0]))
        if name == "log":
            return math.log(float(args[0]))
        if name == "pow":
            return math.pow(float(args[0]), float(args[1]))
        if name == "floor":
            return math.floor(float(args[0]))
        if name == "abs" or name == "labs":
            return wrap_int(abs(int(args[0])))
        if name == "rand":
            self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
            return (self._rand_state >> 16) & 0x7FFF
        if name == "srand":
            self._rand_state = int(args[0]) & 0x7FFFFFFF
            return None
        if name == "memset":
            base, value, count = int(args[0]), int(args[1]), int(args[2])
            if count > 0:
                byte = value & 0xFF if value else 0
                mem.cells.update(dict.fromkeys(range(base, base + count), byte))
            return base
        if name == "memcpy":
            dst, src, count = int(args[0]), int(args[1]), int(args[2])
            if count > 0:
                cells = mem.cells
                if src < dst < src + count:
                    # forward-overlapping copy: the byte-at-a-time loop
                    # re-reads cells this same call wrote (C's memcpy UB;
                    # preserved exactly for determinism)
                    get = cells.get
                    for i in range(count):
                        cells[dst + i] = get(src + i, 0)
                else:
                    get = cells.get
                    values = [get(src + i, 0) for i in range(count)]
                    cells.update(zip(range(dst, dst + count), values))
            return dst
        if name == "strlen":
            return len(mem.read_c_string(int(args[0])))
        if name == "strcmp":
            a = mem.read_c_string(int(args[0]))
            b = mem.read_c_string(int(args[1]))
            return (a > b) - (a < b)
        if name == "strcpy":
            dst, src = int(args[0]), int(args[1])
            text = mem.read_c_string(src)
            for i, ch in enumerate(text):
                mem.cells[dst + i] = ord(ch)
            mem.cells[dst + len(text)] = 0
            return dst
        if name == "exit":
            raise _ProgramExit(int(args[0]))
        if name == "clock":
            return self.counters.total_ops
        raise InterpError(f"intrinsic {name!r} is not implemented")

    def _printf(self, args: list[int | float]) -> int:
        fmt = self.mem.read_c_string(int(args[0]))
        out: list[str] = []
        arg_iter = iter(args[1:])
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch != "%":
                out.append(ch)
                i += 1
                continue
            # scan the conversion spec: %[flags][width][.prec][length]conv
            j = i + 1
            while j < len(fmt) and fmt[j] in "-+ 0123456789.#lh":
                j += 1
            if j >= len(fmt):
                out.append("%")
                break
            conv = fmt[j]
            spec = fmt[i:j + 1]
            if conv == "%":
                out.append("%")
            elif conv in "dioux":
                value = int(next(arg_iter, 0))
                # strip every length modifier: Python's % has no l/h, and
                # our ints are 64-bit whole values regardless of width
                out.append(_c_format(spec.replace("l", "").replace("h", ""), value))
            elif conv in "feg":
                value = float(next(arg_iter, 0.0))
                out.append(_c_format(spec, value))
            elif conv == "c":
                out.append(chr(int(next(arg_iter, 0)) & 0xFF))
            elif conv == "s":
                out.append(self.mem.read_c_string(int(next(arg_iter, 0))))
            else:
                raise InterpError(f"printf conversion %{conv} unsupported")
            i = j + 1
        text = "".join(out)
        if self.options.capture_output:
            self.output.append(text)
        return len(text)


def _c_format(spec: str, value: int | float) -> str:
    try:
        return spec % value
    except (TypeError, ValueError) as exc:
        raise InterpError(f"bad printf spec {spec!r}: {exc}") from exc


def _binop(op: Opcode, a: int | float, b: int | float) -> int | float:
    both_int = isinstance(a, int) and isinstance(b, int)
    if op is Opcode.ADD:
        return wrap_int(a + b) if both_int else a + b
    if op is Opcode.SUB:
        return wrap_int(a - b) if both_int else a - b
    if op is Opcode.MUL:
        return wrap_int(a * b) if both_int else a * b
    if op is Opcode.DIV:
        if both_int:
            return c_div(a, b)
        if b == 0:
            raise InterpTrap("floating division by zero")
        return a / b
    if op is Opcode.MOD:
        if not both_int:
            raise InterpTrap("% applied to floating operand")
        return c_mod(a, b)
    if op is Opcode.AND:
        return wrap_int(int(a) & int(b))
    if op is Opcode.OR:
        return wrap_int(int(a) | int(b))
    if op is Opcode.XOR:
        return wrap_int(int(a) ^ int(b))
    if op is Opcode.SHL:
        return wrap_int(int(a) << (int(b) & 63))
    if op is Opcode.SHR:
        return wrap_int(int(a) >> (int(b) & 63))
    if op is Opcode.CMP_LT:
        return int(a < b)
    if op is Opcode.CMP_LE:
        return int(a <= b)
    if op is Opcode.CMP_GT:
        return int(a > b)
    if op is Opcode.CMP_GE:
        return int(a >= b)
    if op is Opcode.CMP_EQ:
        return int(a == b)
    if op is Opcode.CMP_NE:
        return int(a != b)
    raise InterpError(f"unknown binary opcode {op}")


def _unop(op: Opcode, a: int | float) -> int | float:
    if op is Opcode.NEG:
        return wrap_int(-a) if isinstance(a, int) else -a
    if op is Opcode.NOT:
        return wrap_int(~int(a))
    if op is Opcode.LNOT:
        return int(a == 0)
    if op is Opcode.I2F:
        return float(a)
    if op is Opcode.F2I:
        return wrap_int(int(a))
    raise InterpError(f"unknown unary opcode {op}")


def run_module(
    module: Module,
    entry: str = "main",
    options: MachineOptions | None = None,
) -> RunResult:
    """Convenience: interpret ``module`` from ``entry`` and return the result."""
    return Machine(module, options).run(entry)

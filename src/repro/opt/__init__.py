"""The optimizer: register promotion plus the paper's baseline passes."""

from .clean import CleanStats, clean_function, clean_module
from .constprop import SCCPStats, run_sccp, run_sccp_module
from .dce import DCEStats, run_dce, run_dce_module
from .licm import LICMStats, run_licm, run_licm_module
from .pointer_promotion import (
    PointerPromotionReport,
    promote_pointers_function,
    promote_pointers_module,
)
from .pre import PREStats, run_pre, run_pre_module
from .pressure import (
    PressurePlan,
    estimate_loop_pressure,
    plan_promotions,
    tag_use_frequency,
)
from .promotion import (
    LoopPromotion,
    LoopSets,
    PromotionOptions,
    PromotionReport,
    gather_block_info,
    promote_function,
    promote_module,
    solve_loop_equations,
)
from .valuenum import VNStats, run_value_numbering, run_value_numbering_module

__all__ = [
    "CleanStats",
    "DCEStats",
    "LICMStats",
    "LoopPromotion",
    "LoopSets",
    "PointerPromotionReport",
    "PREStats",
    "PressurePlan",
    "PromotionOptions",
    "PromotionReport",
    "SCCPStats",
    "VNStats",
    "clean_function",
    "clean_module",
    "estimate_loop_pressure",
    "gather_block_info",
    "plan_promotions",
    "promote_function",
    "promote_module",
    "promote_pointers_function",
    "promote_pointers_module",
    "run_dce",
    "run_dce_module",
    "run_licm",
    "run_licm_module",
    "run_pre",
    "run_pre_module",
    "run_sccp",
    "run_sccp_module",
    "run_value_numbering",
    "run_value_numbering_module",
    "solve_loop_equations",
    "tag_use_frequency",
]

"""Local value numbering (one of the paper's baseline optimizations).

Within each basic block the pass:

* folds constant expressions;
* propagates copies (uses are rewritten to the oldest register still
  holding the value);
* removes redundant pure computations (the recomputation becomes a copy,
  which coalescing later erases);
* removes redundant *loads* using the memory tags: an ``sload [t]`` is
  redundant if the value of ``t`` is already known in a register — from a
  previous load of ``t`` or from a previous store to ``t`` (store-to-load
  forwarding) — and nothing that may write ``t`` intervened (an aliasing
  store or a call whose MOD set contains ``t``);
* removes redundant general loads at the same address, invalidated
  coarsely by any potentially-aliasing write.

Registers are versioned internally so the non-SSA IL gets full
SSA-quality numbering inside the block.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.function import Function
from ..ir.instructions import (
    BinOp,
    Branch,
    Call,
    CLoad,
    Instr,
    LoadAddr,
    LoadI,
    MemLoad,
    MemStore,
    Mov,
    Phi,
    Ret,
    ScalarLoad,
    ScalarStore,
    UnOp,
    VReg,
)
from ..ir.module import Module
from ..ir.opcodes import COMMUTATIVE_OPS, Opcode
from ..ir.tags import Tag
from ..interp.machine import _binop, _unop  # exact C semantics for folding
from ..errors import InterpError, InterpTrap


@dataclass
class VNStats:
    constants_folded: int = 0
    expressions_reused: int = 0
    loads_removed: int = 0
    copies_propagated: int = 0


class _BlockNumbering:
    """Value-numbering state for one block."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.reg_version: dict[int, int] = {}
        self.reg_vn: dict[tuple[int, int], int] = {}
        self.expr_vn: dict[tuple, int] = {}
        self.vn_const: dict[int, int | float] = {}
        self.vn_home: dict[int, tuple[VReg, int]] = {}
        self.tag_version: dict[Tag, int] = {}
        self.mem_epoch = 0
        self._next_vn = 0

    # -- registers -----------------------------------------------------------
    def version_of(self, reg: VReg) -> int:
        return self.reg_version.get(reg.id, 0)

    def use_vn(self, reg: VReg) -> int:
        key = (reg.id, self.version_of(reg))
        vn = self.reg_vn.get(key)
        if vn is None:
            vn = self.new_vn()
            self.reg_vn[key] = vn
            self.vn_home.setdefault(vn, (reg, self.version_of(reg)))
        return vn

    def define(self, reg: VReg, vn: int) -> None:
        self.reg_version[reg.id] = self.version_of(reg) + 1
        self.reg_vn[(reg.id, self.version_of(reg))] = vn
        home = self.vn_home.get(vn)
        if home is None or not self.home_valid(vn):
            self.vn_home[vn] = (reg, self.version_of(reg))

    def new_vn(self) -> int:
        self._next_vn += 1
        return self._next_vn

    def home_valid(self, vn: int) -> bool:
        home = self.vn_home.get(vn)
        if home is None:
            return False
        reg, version = home
        return self.version_of(reg) == version

    def home_reg(self, vn: int) -> VReg | None:
        if self.home_valid(vn):
            return self.vn_home[vn][0]
        return None

    # -- memory -----------------------------------------------------------
    def tag_ver(self, tag: Tag) -> int:
        return self.tag_version.get(tag, 0)

    def kill_tag(self, tag: Tag) -> None:
        self.tag_version[tag] = self.tag_ver(tag) + 1

    def kill_tags(self, tags) -> None:
        if tags.universal:
            # forget everything we know about memory
            for tag in list(self.tag_version):
                self.kill_tag(tag)
            self.mem_epoch += 1
            self.expr_vn = {
                k: v for k, v in self.expr_vn.items() if k[0] not in ("sload", "load")
            }
            return
        for tag in tags:
            self.kill_tag(tag)
        if len(tags) > 0:
            self.mem_epoch += 1


def run_value_numbering(func: Function, fold_constants: bool = True) -> VNStats:
    stats = VNStats()
    for block in func.blocks.values():
        state = _BlockNumbering(func)
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            replacement = _number_instr(instr, state, stats, fold_constants)
            if replacement is not None:
                new_instrs.append(replacement)
        block.instrs = new_instrs
    return stats


def record_vn_decision(func_name: str, stats: VNStats) -> None:
    """Ledger one function's value-numbering outcome (no-op if nothing
    happened or no ledger is active)."""
    from ..diag import ledger as diag_ledger

    if stats.constants_folded or stats.expressions_reused or stats.loads_removed:
        diag_ledger.record(
            "valuenum", func_name, "applied",
            detail={
                "constants_folded": stats.constants_folded,
                "expressions_reused": stats.expressions_reused,
                "loads_removed": stats.loads_removed,
                "copies_propagated": stats.copies_propagated,
            },
        )


def run_value_numbering_module(module: Module) -> VNStats:
    total = VNStats()
    for func in module.functions.values():
        stats = run_value_numbering(func)
        total.constants_folded += stats.constants_folded
        total.expressions_reused += stats.expressions_reused
        total.loads_removed += stats.loads_removed
        total.copies_propagated += stats.copies_propagated
        record_vn_decision(func.name, stats)
    return total


def _propagate_copies(instr: Instr, state: _BlockNumbering, stats: VNStats) -> None:
    """Rewrite each use to the canonical register holding its value."""
    mapping: dict[VReg, VReg] = {}
    for reg in set(instr.uses()):
        vn = state.use_vn(reg)
        home = state.home_reg(vn)
        if home is not None and home != reg:
            mapping[reg] = home
    if mapping:
        instr.replace_uses(mapping)
        stats.copies_propagated += len(mapping)


def _number_instr(
    instr: Instr,
    state: _BlockNumbering,
    stats: VNStats,
    fold_constants: bool,
) -> Instr | None:
    if isinstance(instr, Phi):
        state.define(instr.dst, state.new_vn())
        return instr

    _propagate_copies(instr, state, stats)

    if isinstance(instr, LoadI):
        key = ("const", type(instr.value).__name__, instr.value)
        vn = state.expr_vn.get(key)
        if vn is None:
            vn = state.new_vn()
            state.expr_vn[key] = vn
            state.vn_const[vn] = instr.value
        state.define(instr.dst, vn)
        return instr

    if isinstance(instr, Mov):
        vn = state.use_vn(instr.src)
        state.define(instr.dst, vn)
        return instr

    if isinstance(instr, LoadAddr):
        key = ("la", instr.tag, instr.offset)
        vn = state.expr_vn.get(key)
        hit = vn is not None and state.home_valid(vn)
        if vn is None:
            vn = state.new_vn()
            state.expr_vn[key] = vn
        if hit:
            stats.expressions_reused += 1
            home = state.home_reg(vn)
            assert home is not None
            state.define(instr.dst, vn)
            return Mov(instr.dst, home)
        state.define(instr.dst, vn)
        return instr

    if isinstance(instr, BinOp):
        lhs_vn = state.use_vn(instr.lhs)
        rhs_vn = state.use_vn(instr.rhs)
        if fold_constants and lhs_vn in state.vn_const and rhs_vn in state.vn_const:
            folded = _try_fold_binop(
                instr.opcode, state.vn_const[lhs_vn], state.vn_const[rhs_vn]
            )
            if folded is not None:
                stats.constants_folded += 1
                return _number_instr(
                    LoadI(instr.dst, folded), state, stats, fold_constants
                )
        a, b = lhs_vn, rhs_vn
        if instr.opcode in COMMUTATIVE_OPS and b < a:
            a, b = b, a
        key = ("bin", instr.opcode, a, b)
        vn = state.expr_vn.get(key)
        hit = vn is not None and state.home_valid(vn)
        if vn is None:
            vn = state.new_vn()
            state.expr_vn[key] = vn
        if hit:
            stats.expressions_reused += 1
            home = state.home_reg(vn)
            assert home is not None
            state.define(instr.dst, vn)
            return Mov(instr.dst, home)
        state.define(instr.dst, vn)
        return instr

    if isinstance(instr, UnOp):
        src_vn = state.use_vn(instr.src)
        if fold_constants and src_vn in state.vn_const:
            folded = _try_fold_unop(instr.opcode, state.vn_const[src_vn])
            if folded is not None:
                stats.constants_folded += 1
                return _number_instr(
                    LoadI(instr.dst, folded), state, stats, fold_constants
                )
        key = ("un", instr.opcode, src_vn)
        vn = state.expr_vn.get(key)
        hit = vn is not None and state.home_valid(vn)
        if vn is None:
            vn = state.new_vn()
            state.expr_vn[key] = vn
        if hit:
            stats.expressions_reused += 1
            home = state.home_reg(vn)
            assert home is not None
            state.define(instr.dst, vn)
            return Mov(instr.dst, home)
        state.define(instr.dst, vn)
        return instr

    if isinstance(instr, (ScalarLoad, CLoad)):
        key = ("sload", instr.tag, state.tag_ver(instr.tag))
        vn = state.expr_vn.get(key)
        hit = vn is not None and state.home_valid(vn)
        if vn is None:
            vn = state.new_vn()
            state.expr_vn[key] = vn
        if hit:
            stats.loads_removed += 1
            home = state.home_reg(vn)
            assert home is not None
            state.define(instr.dst, vn)
            return Mov(instr.dst, home)
        state.define(instr.dst, vn)
        return instr

    if isinstance(instr, ScalarStore):
        src_vn = state.use_vn(instr.src)
        state.kill_tag(instr.tag)
        state.mem_epoch += 1
        # store-to-load forwarding: the stored value *is* the tag's value
        state.expr_vn[("sload", instr.tag, state.tag_ver(instr.tag))] = src_vn
        return instr

    if isinstance(instr, MemLoad):
        addr_vn = state.use_vn(instr.addr)
        key = ("load", addr_vn, state.mem_epoch)
        vn = state.expr_vn.get(key)
        hit = vn is not None and state.home_valid(vn)
        if vn is None:
            vn = state.new_vn()
            state.expr_vn[key] = vn
        if hit:
            stats.loads_removed += 1
            home = state.home_reg(vn)
            assert home is not None
            state.define(instr.dst, vn)
            return Mov(instr.dst, home)
        state.define(instr.dst, vn)
        return instr

    if isinstance(instr, MemStore):
        src_vn = state.use_vn(instr.src)
        addr_vn = state.use_vn(instr.addr)
        state.kill_tags(instr.tags)
        # forward the stored value to a same-address load
        state.expr_vn[("load", addr_vn, state.mem_epoch)] = src_vn
        return instr

    if isinstance(instr, Call):
        if instr.mod:
            state.kill_tags(instr.mod)
        if instr.dst is not None:
            state.define(instr.dst, state.new_vn())
        return instr

    if isinstance(instr, (Branch, Ret)):
        return instr

    return instr


def _try_fold_binop(op: Opcode, a: int | float, b: int | float) -> int | float | None:
    try:
        return _binop(op, a, b)
    except (InterpTrap, InterpError, OverflowError, ZeroDivisionError):
        return None


def _try_fold_unop(op: Opcode, a: int | float) -> int | float | None:
    try:
        return _unop(op, a)
    except (InterpTrap, InterpError, OverflowError):
        return None

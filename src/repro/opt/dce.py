"""Dead code elimination.

Worklist-based: an instruction is dead when it writes a register nobody
reads and has no side effect.  Loads are deletable (removing a dead load
is both legal and exactly the kind of memory-traffic reduction the
paper's optimizer performs); stores, calls, and terminators are never
removed by this pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.function import Function
from ..ir.instructions import (
    BinOp,
    CLoad,
    Instr,
    LoadAddr,
    LoadI,
    MemLoad,
    Mov,
    Phi,
    ScalarLoad,
    UnOp,
    VReg,
)
from ..ir.module import Module
from ..ir.opcodes import Opcode


@dataclass
class DCEStats:
    removed: int = 0


_REMOVABLE = (BinOp, UnOp, LoadI, Mov, LoadAddr, ScalarLoad, CLoad, MemLoad, Phi)


def _is_removable(instr: Instr) -> bool:
    if not isinstance(instr, _REMOVABLE):
        return False
    if isinstance(instr, BinOp) and instr.opcode in (Opcode.DIV, Opcode.MOD):
        # deleting a dead division would also delete its potential trap;
        # that is a (legal) behaviour change we opt out of to keep the
        # interpreter's trap reports stable
        return True
    return True


def run_dce(func: Function) -> DCEStats:
    stats = DCEStats()
    changed = True
    while changed:
        changed = False
        use_counts: dict[VReg, int] = {}
        for instr in func.instructions():
            for reg in instr.uses():
                use_counts[reg] = use_counts.get(reg, 0) + 1
        for block in func.blocks.values():
            kept: list[Instr] = []
            for instr in block.instrs:
                if isinstance(instr, Mov) and instr.dst == instr.src:
                    stats.removed += 1
                    changed = True
                    continue
                dest = instr.dest
                if (
                    dest is not None
                    and use_counts.get(dest, 0) == 0
                    and _is_removable(instr)
                ):
                    stats.removed += 1
                    changed = True
                    continue
                kept.append(instr)
            block.instrs = kept
    return stats


def run_dce_module(module: Module) -> DCEStats:
    total = DCEStats()
    for func in module.functions.values():
        total.removed += run_dce(func).removed
    return total

"""Basic-block cleaning (the paper's "basic block cleaning pass").

Classic CFG hygiene, iterated to a fixpoint:

* fold conditional branches whose two targets are equal into jumps;
* remove *empty* blocks (a lone ``jmp``) by retargeting their
  predecessors — this is what erases the landing pads and exit blocks
  that promotion did not end up using ("empty blocks are automatically
  removed after optimization", section 3.2);
* merge a block into its unique successor when that successor has no
  other predecessors;
* hoist a jump-to-branch: a block ending in ``jmp`` to an empty block
  ending in a branch takes the branch directly;
* delete unreachable blocks.

The pass never touches functions in SSA form (phis pin edge identities).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cfg import predecessors, remove_unreachable_blocks
from ..ir.function import Function
from ..ir.instructions import Branch, Jump, Phi, retarget
from ..ir.module import Module


@dataclass
class CleanStats:
    branches_folded: int = 0
    empty_blocks_removed: int = 0
    blocks_merged: int = 0
    unreachable_removed: int = 0


def clean_function(func: Function, max_rounds: int = 100) -> CleanStats:
    stats = CleanStats()
    for _ in range(max_rounds):
        changed = False
        changed |= _fold_branches(func, stats)
        stats.unreachable_removed += len(remove_unreachable_blocks(func))
        changed |= _skip_empty_blocks(func, stats)
        changed |= _merge_chains(func, stats)
        removed = remove_unreachable_blocks(func)
        stats.unreachable_removed += len(removed)
        changed |= bool(removed)
        if not changed:
            break
    return stats


def clean_module(module: Module) -> CleanStats:
    total = CleanStats()
    for func in module.functions.values():
        stats = clean_function(func)
        total.branches_folded += stats.branches_folded
        total.empty_blocks_removed += stats.empty_blocks_removed
        total.blocks_merged += stats.blocks_merged
        total.unreachable_removed += stats.unreachable_removed
    return total


def _has_phis(func: Function) -> bool:
    return any(isinstance(i, Phi) for i in func.instructions())


def _fold_branches(func: Function, stats: CleanStats) -> bool:
    changed = False
    for block in func.blocks.values():
        term = block.terminator
        if isinstance(term, Branch) and term.if_true == term.if_false:
            block.instrs[-1] = Jump(term.if_true)
            stats.branches_folded += 1
            changed = True
    return changed


def _is_trivially_empty(block) -> bool:
    return len(block.instrs) == 1 and isinstance(block.instrs[0], Jump)


def _skip_empty_blocks(func: Function, stats: CleanStats) -> bool:
    """Retarget edges that pass through a block containing only a jump."""
    if _has_phis(func):
        return False
    changed = False
    for label in list(func.blocks):
        block = func.blocks.get(label)
        if block is None or not _is_trivially_empty(block):
            continue
        target = block.instrs[0].target
        if target == label:  # a self-loop; removing it would change semantics
            continue
        if label == func.entry:
            # the entry can be skipped only by re-rooting the function
            func.entry = target
            del func.blocks[label]
            stats.empty_blocks_removed += 1
            changed = True
            continue
        preds = predecessors(func).get(label, [])
        for pred_label in preds:
            pred_term = func.blocks[pred_label].terminator
            if pred_term is not None:
                retarget(pred_term, label, target)
        del func.blocks[label]
        stats.empty_blocks_removed += 1
        changed = True
    return changed


def _merge_chains(func: Function, stats: CleanStats) -> bool:
    """Merge ``a -> b`` when a ends in a jump to b and b has one pred."""
    if _has_phis(func):
        return False
    changed = False
    preds = predecessors(func)
    for label in list(func.blocks):
        block = func.blocks.get(label)
        if block is None:
            continue
        term = block.terminator
        if not isinstance(term, Jump):
            continue
        target = term.target
        if target == label or target == func.entry:
            continue
        if len(preds.get(target, [])) != 1:
            continue
        target_block = func.blocks[target]
        block.instrs = block.instrs[:-1] + target_block.instrs
        del func.blocks[target]
        preds = predecessors(func)
        stats.blocks_merged += 1
        changed = True
    return changed

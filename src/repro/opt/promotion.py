"""Register promotion (the paper's section 3.1 — the core contribution).

The algorithm, exactly as published:

1. *Interprocedural analysis* has already run (MOD/REF or points-to) and
   shrunk the tag sets of memory operations and calls.
2. *Gather initial information.*  For each block ``b``:
   ``B_EXPLICIT(b)`` — tags referenced by an explicit memory operation
   (``sload``/``sstore``/``cload``); ``B_AMBIGUOUS(b)`` — tags referenced
   ambiguously, through procedure calls (their MOD∪REF summaries) or
   pointer-based memory operations.
3. *Find loop structure* via dominators (Lengauer–Tarjan).
4. *Analyze loop nests* with the Figure 1 equations::

       L_EXPLICIT(l)   = ∪ B_EXPLICIT(b),  b ∈ l
       L_AMBIGUOUS(l)  = ∪ B_AMBIGUOUS(b), b ∈ l
       L_PROMOTABLE(l) = L_EXPLICIT(l) - L_AMBIGUOUS(l)
       L_LIFT(l)       = L_PROMOTABLE(l)                    l outermost
                       = L_PROMOTABLE(l) - L_PROMOTABLE(parent(l))  else

5. *Rewrite the code.*  Each promoted tag gets a virtual register ``v``;
   every reference to the tag inside a loop where it is promotable
   becomes a copy involving ``v`` (loads become ``dst = mov v``, stores
   become ``v = mov src`` — copies the register allocator later
   coalesces).
6. *Promote the tag.*  For each loop ``l`` and tag in ``L_LIFT(l)``, a
   scalar load of the tag into ``v`` is placed in ``l``'s landing pad and
   a scalar store of ``v`` back to the tag in each of ``l``'s dedicated
   exit blocks.

Only scalar tags participate: the promoted variables are exactly the
scalars the front end left in memory because it could not prove
enregistering safe.  As a refinement over the paper's presentation (see
DESIGN.md), the demotion store is emitted only when the loop may actually
store the tag; a read-only promoted tag needs no store-back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loops import Loop, LoopForest, normalize_loops
from ..diag import ledger as diag_ledger
from ..ir.function import Function
from ..ir.instructions import (
    Call,
    CLoad,
    Instr,
    MemLoad,
    MemStore,
    Mov,
    ScalarLoad,
    ScalarStore,
    VReg,
)
from ..ir.module import Module
from ..ir.tags import Tag


@dataclass
class LoopPromotion:
    """What happened to one loop."""

    header: str
    promotable: frozenset[Tag]
    lifted: frozenset[Tag]


@dataclass
class PromotionReport:
    """Per-function promotion outcome (used by tests and the Figure 2
    reproduction)."""

    function: str
    loops: list[LoopPromotion] = field(default_factory=list)
    promoted_tags: set[Tag] = field(default_factory=set)
    references_rewritten: int = 0
    loads_inserted: int = 0
    stores_inserted: int = 0

    def promotable_in(self, header: str) -> frozenset[Tag]:
        for loop in self.loops:
            if loop.header == header:
                return loop.promotable
        return frozenset()

    def lifted_in(self, header: str) -> frozenset[Tag]:
        for loop in self.loops:
            if loop.header == header:
                return loop.lifted
        return frozenset()


@dataclass
class PromotionOptions:
    #: demote (store back) only when the loop may store the tag
    store_only_if_stored: bool = True
    #: upper bound on tags promoted per loop (None = unlimited); a crude
    #: register-pressure throttle in the spirit of Carr's bin packing
    max_promoted_per_loop: int | None = None
    #: register budget for the pressure-aware throttle (None = off); when
    #: set, each loop only promotes while its estimated MAXLIVE plus the
    #: promoted homes fits the budget — the paper's section 3.4 proposal
    #: (see :mod:`repro.opt.pressure`)
    pressure_budget: int | None = None
    #: registers held back from the pressure budget for allocator temps
    pressure_reserve: int = 4
    #: DELIBERATELY UNSOUND: pretend calls never reference memory when
    #: gathering B_AMBIGUOUS, so tags modified by callees still promote.
    #: Exists only so the fuzzer/reducer can be tested against a known
    #: miscompile (``repro.fuzz``); never enable it for real experiments.
    unsafe_ignore_call_ambiguity: bool = False


def gather_block_info(
    func: Function,
    universe: frozenset[Tag] | None = None,
    ignore_calls: bool = False,
) -> tuple[dict[str, set[Tag]], dict[str, set[Tag]]]:
    """Compute ``B_EXPLICIT`` and ``B_AMBIGUOUS`` for every block.

    ``universe`` materializes universal tag sets (pre-analysis IR); by
    default every tag the module knows about is assumed.  ``ignore_calls``
    is the deliberate miscompile behind
    :attr:`PromotionOptions.unsafe_ignore_call_ambiguity`.
    """
    explicit: dict[str, set[Tag]] = {}
    ambiguous: dict[str, set[Tag]] = {}
    for label, block in func.blocks.items():
        b_exp: set[Tag] = set()
        b_amb: set[Tag] = set()
        for instr in block.instrs:
            if isinstance(instr, (ScalarLoad, ScalarStore, CLoad)):
                b_exp.add(instr.tag)
            elif isinstance(instr, (MemLoad, MemStore)):
                b_amb.update(_materialize(instr.tags, universe))
            elif isinstance(instr, Call) and not ignore_calls:
                b_amb.update(_materialize(instr.mod, universe))
                b_amb.update(_materialize(instr.ref, universe))
        explicit[label] = b_exp
        ambiguous[label] = b_amb
    return explicit, ambiguous


def _materialize(tags, universe: frozenset[Tag] | None):
    if tags.universal:
        return universe if universe is not None else frozenset()
    return tags


@dataclass
class LoopSets:
    """The Figure 1 sets for one loop."""

    explicit: frozenset[Tag]
    ambiguous: frozenset[Tag]
    promotable: frozenset[Tag]
    lift: frozenset[Tag]


def solve_loop_equations(
    func: Function,
    forest: LoopForest,
    explicit: dict[str, set[Tag]],
    ambiguous: dict[str, set[Tag]],
    options: PromotionOptions | None = None,
) -> dict[str, LoopSets]:
    """Equations (1)-(4) from Figure 1, solved outermost-first so a
    loop's parent is available when computing L_LIFT."""
    options = options or PromotionOptions()
    result: dict[str, LoopSets] = {}
    for loop in forest.loops_outermost_first():
        l_exp: set[Tag] = set()
        l_amb: set[Tag] = set()
        for label in loop.blocks:
            l_exp |= explicit.get(label, set())
            l_amb |= ambiguous.get(label, set())
        promotable = frozenset(
            t for t in (l_exp - l_amb) if t.is_scalar
        )
        if options.max_promoted_per_loop is not None:
            promotable = frozenset(
                sorted(promotable, key=lambda t: t.name)[
                    : options.max_promoted_per_loop
                ]
            )
        if loop.parent is None:
            lift = promotable
        else:
            parent_sets = result[loop.parent.header]
            lift = promotable - parent_sets.promotable
        result[loop.header] = LoopSets(
            explicit=frozenset(l_exp),
            ambiguous=frozenset(l_amb),
            promotable=promotable,
            lift=frozenset(lift),
        )
    return result


def promote_function(
    func: Function,
    module: Module | None = None,
    options: PromotionOptions | None = None,
    forest: LoopForest | None = None,
    universe: frozenset | None = None,
) -> PromotionReport:
    """Run register promotion on one function, in place.

    ``universe`` is the module's addressable-memory snapshot that
    ambiguous references are materialized against.  Incremental
    compilation passes it explicitly, snapshotted once post-analysis, so
    the answer cannot depend on mid-pipeline mutations of other
    functions (register allocation appends spill tags to
    ``local_tags``); when omitted it is computed from ``module`` as
    before.
    """
    options = options or PromotionOptions()
    report = PromotionReport(function=func.name)

    if forest is None:
        forest = normalize_loops(func)
    if not forest.loops:
        return report

    if universe is None:
        universe = (
            frozenset(module.memory_tags()) if module is not None else None
        )
    explicit, ambiguous = gather_block_info(
        func, universe, ignore_calls=options.unsafe_ignore_call_ambiguity
    )
    sets = solve_loop_equations(func, forest, explicit, ambiguous, options)

    if options.pressure_budget is not None:
        _apply_pressure_plan(func, forest, sets, options)

    if diag_ledger.current_ledger() is not None:
        _record_decisions(func, forest, sets, universe)

    for loop in forest.loops:
        report.loops.append(
            LoopPromotion(
                header=loop.header,
                promotable=sets[loop.header].promotable,
                lifted=sets[loop.header].lift,
            )
        )

    all_promoted: set[Tag] = set()
    for loop_sets in sets.values():
        all_promoted |= loop_sets.promotable
    if not all_promoted:
        return report
    report.promoted_tags = set(all_promoted)

    # one virtual register per promoted tag
    home: dict[Tag, VReg] = {
        tag: func.new_vreg(f"p_{tag.name.replace('.', '_')}")
        for tag in sorted(all_promoted, key=lambda t: t.name)
    }

    # which loops may *store* each tag (drives demotion stores)
    stored_in_loop = _stored_tags_per_loop(func, forest)

    # -- step 5: rewrite references to copies ---------------------------------
    promotable_in_block = _promotable_blocks(forest, sets)
    for label, tags_here in promotable_in_block.items():
        block = func.block(label)
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            if isinstance(instr, (ScalarLoad, CLoad)) and instr.tag in tags_here:
                new_instrs.append(Mov(instr.dst, home[instr.tag]))
                report.references_rewritten += 1
            elif isinstance(instr, ScalarStore) and instr.tag in tags_here:
                new_instrs.append(Mov(home[instr.tag], instr.src))
                report.references_rewritten += 1
            else:
                new_instrs.append(instr)
        block.instrs = new_instrs

    # -- step 6: promote/demote around the lifting loop -----------------------
    for loop in forest.loops:
        lift = sets[loop.header].lift
        if not lift:
            continue
        pad = func.block(loop.preheader(func))
        for tag in sorted(lift, key=lambda t: t.name):
            pad.instrs.insert(
                len(pad.instrs) - 1, ScalarLoad(home[tag], tag)
            )
            report.loads_inserted += 1
        needs_store = [
            tag for tag in sorted(lift, key=lambda t: t.name)
            if not options.store_only_if_stored
            or tag in stored_in_loop[loop.header]
        ]
        if needs_store:
            for exit_label in loop.exit_blocks(func):
                exit_block = func.block(exit_label)
                for tag in needs_store:
                    exit_block.instrs.insert(0, ScalarStore(home[tag], tag))
                    report.stores_inserted += 1
    return report


def promote_module(
    module: Module, options: PromotionOptions | None = None
) -> dict[str, PromotionReport]:
    universe = frozenset(module.memory_tags())
    return {
        func.name: promote_function(func, module, options, universe=universe)
        for func in module.functions.values()
    }


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _apply_pressure_plan(
    func: Function,
    forest: LoopForest,
    sets: dict[str, LoopSets],
    options: PromotionOptions,
) -> None:
    """Filter the PROMOTABLE sets through the section 3.4 pressure
    throttle and recompute LIFT against the filtered parents."""
    from .pressure import plan_promotions

    assert options.pressure_budget is not None
    plan = plan_promotions(
        func,
        forest,
        {header: s.promotable for header, s in sets.items()},
        num_registers=options.pressure_budget,
        reserve=options.pressure_reserve,
    )
    for loop in forest.loops_outermost_first():
        s = sets[loop.header]
        filtered = frozenset(
            t for t in s.promotable if plan.allows(loop.header, t)
        )
        if loop.parent is None:
            lift = filtered
        else:
            lift = filtered - sets[loop.parent.header].promotable
        sets[loop.header] = LoopSets(
            explicit=s.explicit,
            ambiguous=s.ambiguous,
            promotable=filtered,
            lift=lift,
        )


def _record_decisions(
    func: Function,
    forest: LoopForest,
    sets: dict[str, LoopSets],
    universe: frozenset[Tag] | None,
) -> None:
    """Emit one ledger decision per (loop, tag) pair.

    A tag that is explicitly referenced in the loop is either ``promoted``
    or ``blocked`` with the precise reason; a tag only touched ambiguously
    has nothing to rewrite and is recorded as ``not-referenced``.  Blocker
    provenance (which call, which pointer operation) is gathered lazily —
    only when a ledger is active — so the promotion hot path never pays
    for it.
    """
    for loop in forest.loops_outermost_first():
        loop_sets = sets[loop.header]
        blockers = None  # computed once per loop, only if something is blocked
        for tag in sorted(
            loop_sets.explicit | loop_sets.ambiguous, key=lambda t: t.name
        ):
            if tag in loop_sets.promotable:
                diag_ledger.record(
                    "promotion", func.name, "promoted",
                    loop=loop.header, tag=tag.name,
                    detail={"lifted_here": tag in loop_sets.lift},
                )
                continue
            if tag not in loop_sets.explicit:
                diag_ledger.record(
                    "promotion", func.name, "blocked",
                    loop=loop.header, tag=tag.name, reason="not-referenced",
                )
                continue
            if not tag.is_scalar:
                diag_ledger.record(
                    "promotion", func.name, "blocked",
                    loop=loop.header, tag=tag.name, reason="not-scalar",
                )
                continue
            if tag in loop_sets.ambiguous:
                if blockers is None:
                    blockers = _ambiguity_blockers(func, loop, universe)
                calls, pointer_ops = blockers.get(tag, ((), ()))
                reason = "ambiguous-via-call" if calls else "ambiguous-via-pointer"
                diag_ledger.record(
                    "promotion", func.name, "blocked",
                    loop=loop.header, tag=tag.name, reason=reason,
                    detail={"calls": list(calls), "pointer_ops": list(pointer_ops)},
                )
                continue
            # explicit, scalar, unambiguous, yet not promotable: the
            # pressure throttle dropped it
            diag_ledger.record(
                "promotion", func.name, "blocked",
                loop=loop.header, tag=tag.name, reason="pressure-throttled",
            )


def _ambiguity_blockers(
    func: Function, loop: Loop, universe: frozenset[Tag] | None
) -> dict[Tag, tuple[list[dict], list[dict]]]:
    """Per ambiguous tag, the (calls, pointer ops) inside ``loop`` that
    reference it — the provenance behind an ``ambiguous-via-*`` decision."""
    blockers: dict[Tag, tuple[list[dict], list[dict]]] = {}

    def slot(tag: Tag) -> tuple[list[dict], list[dict]]:
        return blockers.setdefault(tag, ([], []))

    for label in sorted(loop.blocks):
        for instr in func.block(label).instrs:
            if isinstance(instr, Call):
                mod = _materialize(instr.mod, universe)
                ref = _materialize(instr.ref, universe)
                callee = instr.callee if instr.callee is not None else "<indirect>"
                for tag in set(mod) | set(ref):
                    slot(tag)[0].append(
                        {
                            "callee": callee,
                            "in_mod": tag in mod,
                            "in_ref": tag in ref,
                            "mod": diag_ledger.trim_tag_names(mod),
                            "ref": diag_ledger.trim_tag_names(ref),
                            "block": label,
                        }
                    )
            elif isinstance(instr, (MemLoad, MemStore)):
                tags = _materialize(instr.tags, universe)
                op = "store" if isinstance(instr, MemStore) else "load"
                for tag in tags:
                    slot(tag)[1].append(
                        {
                            "op": op,
                            "universal": bool(instr.tags.universal),
                            "tags": diag_ledger.trim_tag_names(tags),
                            "block": label,
                        }
                    )
    return blockers


def _promotable_blocks(
    forest: LoopForest, sets: dict[str, LoopSets]
) -> dict[str, set[Tag]]:
    """For each block, the tags promotable in *some* loop containing it.

    (If a tag is promotable in an outer loop and referenced in an inner
    one, it is necessarily promotable in the inner loop too — an
    ambiguous inner reference would have poisoned the outer loop.)
    """
    result: dict[str, set[Tag]] = {}
    for loop in forest.loops:
        promotable = sets[loop.header].promotable
        if not promotable:
            continue
        for label in loop.blocks:
            result.setdefault(label, set()).update(promotable)
    return result


def _stored_tags_per_loop(
    func: Function, forest: LoopForest
) -> dict[str, set[Tag]]:
    """Tags that may be stored (directly) within each loop's body."""
    result: dict[str, set[Tag]] = {loop.header: set() for loop in forest.loops}
    for loop in forest.loops:
        stored = result[loop.header]
        for label in loop.blocks:
            for instr in func.block(label).instrs:
                if isinstance(instr, ScalarStore):
                    stored.add(instr.tag)
    return result

"""Global redundancy elimination with memory tags (the paper's "partial
redundancy elimination" slot).

The paper's PRE "uses memory tag information to achieve most of the
effects of promotion in straight-line code ... it uses the tag fields to
eliminate redundant loads [and] must treat stores more conservatively."
This pass implements the availability-based core of that transformation:

* candidate expressions are pure computations and loads (``sload`` keyed
  by tag, general ``load`` keyed by address register);
* an expression is *killed* by a redefinition of any operand register,
  and a load is additionally killed by any store or call whose MOD set
  may write one of its tags — this is exactly where the tag information
  pays off;
* classic forward AVAIL data flow (intersection over predecessors) finds
  fully redundant occurrences, which are rewritten into copies from a
  temporary that every providing occurrence feeds.

Stores are never moved or removed (the conservative treatment the paper
describes); insertion-based motion of partially redundant expressions is
left to LICM for the loop cases, matching where the paper's promotion and
LICM pick up the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cfg import predecessors, reverse_postorder
from ..ir.function import Function
from ..ir.instructions import (
    BinOp,
    Call,
    CLoad,
    Instr,
    LoadAddr,
    MemLoad,
    MemStore,
    Mov,
    Phi,
    ScalarLoad,
    ScalarStore,
    UnOp,
    VReg,
)
from ..ir.module import Module
from ..ir.opcodes import COMMUTATIVE_OPS
from ..ir.tags import Tag


@dataclass
class PREStats:
    expressions_removed: int = 0
    loads_removed: int = 0


def run_pre(func: Function) -> PREStats:
    stats = PREStats()
    exprs = _ExprTable()
    _collect(func, exprs)
    if not exprs.keys:
        return stats

    order = reverse_postorder(func)
    preds = predecessors(func)
    comp, transp = _local_sets(func, order, exprs)

    # forward AVAIL: in(b) = AND over preds out(p); out = comp | (in & transp)
    all_bits = (1 << len(exprs.keys)) - 1
    avail_in: dict[str, int] = {label: 0 for label in order}
    avail_out: dict[str, int] = {
        label: all_bits if label != func.entry else comp[label] for label in order
    }
    avail_out[func.entry] = comp[func.entry]
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == func.entry:
                inset = 0
            else:
                inset = all_bits
                for pred in preds[label]:
                    if pred in avail_out:
                        inset &= avail_out[pred]
                if not preds[label]:
                    inset = 0
            outset = comp[label] | (inset & transp[label])
            if inset != avail_in[label] or outset != avail_out[label]:
                avail_in[label] = inset
                avail_out[label] = outset
                changed = True

    redundant = _find_redundant(func, order, exprs, avail_in)
    if not redundant:
        return stats
    _rewrite(func, order, exprs, avail_in, redundant, stats)
    return stats


def record_pre_decision(func_name: str, stats: PREStats) -> None:
    """Ledger one function's PRE outcome (no-op if nothing happened or
    no ledger is active)."""
    from ..diag import ledger as diag_ledger

    if stats.expressions_removed:
        diag_ledger.record(
            "pre", func_name, "applied",
            detail={
                "expressions_removed": stats.expressions_removed,
                "loads_removed": stats.loads_removed,
            },
        )


def run_pre_module(module: Module) -> PREStats:
    total = PREStats()
    for func in module.functions.values():
        stats = run_pre(func)
        total.expressions_removed += stats.expressions_removed
        total.loads_removed += stats.loads_removed
        record_pre_decision(func.name, stats)
    return total


# ---------------------------------------------------------------------------
# expression table
# ---------------------------------------------------------------------------

class _ExprTable:
    def __init__(self) -> None:
        self.keys: list[tuple] = []
        self.index: dict[tuple, int] = {}
        #: register id -> bitmask of expressions using that register
        self.by_reg: dict[int, int] = {}
        #: tag -> bitmask of loads killed by writes to the tag
        self.by_tag: dict[Tag, int] = {}
        #: bitmask of every load expression (killed by universal writes)
        self.all_loads = 0

    def intern(self, key: tuple, uses: tuple[int, ...], tags, is_load: bool) -> int:
        idx = self.index.get(key)
        if idx is not None:
            return idx
        idx = len(self.keys)
        self.keys.append(key)
        self.index[key] = idx
        bit = 1 << idx
        for reg_id in uses:
            self.by_reg[reg_id] = self.by_reg.get(reg_id, 0) | bit
        if is_load:
            self.all_loads |= bit
            if tags is not None and not tags.universal:
                for tag in tags:
                    self.by_tag[tag] = self.by_tag.get(tag, 0) | bit
        return idx


def _key_of(instr: Instr) -> tuple | None:
    """The expression key an instruction computes, or None."""
    if isinstance(instr, BinOp):
        a, b = instr.lhs.id, instr.rhs.id
        if instr.opcode in COMMUTATIVE_OPS and b < a:
            a, b = b, a
        return ("bin", instr.opcode, a, b)
    if isinstance(instr, UnOp):
        return ("un", instr.opcode, instr.src.id)
    if isinstance(instr, LoadAddr):
        return ("la", instr.tag, instr.offset)
    if isinstance(instr, (ScalarLoad, CLoad)):
        return ("sl", instr.tag)
    if isinstance(instr, MemLoad):
        return ("ld", instr.addr.id)
    return None


def _is_load(instr: Instr) -> bool:
    return isinstance(instr, (ScalarLoad, CLoad, MemLoad))


def _collect(func: Function, exprs: _ExprTable) -> None:
    for block in func.blocks.values():
        for instr in block.instrs:
            key = _key_of(instr)
            if key is None:
                continue
            if isinstance(instr, (ScalarLoad, CLoad)):
                exprs.intern(key, (), _SingleTag(instr.tag), True)
            elif isinstance(instr, MemLoad):
                exprs.intern(key, (instr.addr.id,), instr.tags, True)
            elif isinstance(instr, BinOp):
                exprs.intern(key, (instr.lhs.id, instr.rhs.id), None, False)
            elif isinstance(instr, UnOp):
                exprs.intern(key, (instr.src.id,), None, False)
            elif isinstance(instr, LoadAddr):
                exprs.intern(key, (), None, False)


class _SingleTag:
    """Minimal tag-set shim for interning scalar loads."""

    universal = False

    def __init__(self, tag: Tag) -> None:
        self._tag = tag

    def __iter__(self):
        return iter((self._tag,))


# ---------------------------------------------------------------------------
# kills
# ---------------------------------------------------------------------------

def _kill_mask(instr: Instr, exprs: _ExprTable) -> int:
    """Expressions invalidated by executing ``instr``."""
    mask = 0
    dest = instr.dest
    if dest is not None:
        mask |= exprs.by_reg.get(dest.id, 0)
    if isinstance(instr, ScalarStore):
        mask |= exprs.by_tag.get(instr.tag, 0)
        # a store to t also kills general loads whose tag set contains t,
        # which by_tag already covers; universal-tagged loads are covered
        # by their absence from by_tag — kill them explicitly:
        mask |= exprs.all_loads & ~_finite_loads_mask(exprs)
    elif isinstance(instr, MemStore):
        if instr.tags.universal:
            mask |= exprs.all_loads
        else:
            for tag in instr.tags:
                mask |= exprs.by_tag.get(tag, 0)
            mask |= exprs.all_loads & ~_finite_loads_mask(exprs)
    elif isinstance(instr, Call):
        if instr.mod.universal:
            mask |= exprs.all_loads
        elif instr.mod:
            for tag in instr.mod:
                mask |= exprs.by_tag.get(tag, 0)
            mask |= exprs.all_loads & ~_finite_loads_mask(exprs)
    return mask


def _finite_loads_mask(exprs: _ExprTable) -> int:
    mask = 0
    for bits in exprs.by_tag.values():
        mask |= bits
    return mask


def _local_sets(func: Function, order, exprs: _ExprTable):
    comp: dict[str, int] = {}
    transp: dict[str, int] = {}
    all_bits = (1 << len(exprs.keys)) - 1
    for label in order:
        computed = 0
        killed = 0
        for instr in func.block(label).instrs:
            key = _key_of(instr)
            kill = _kill_mask(instr, exprs)
            computed &= ~kill
            killed |= kill
            if key is not None:
                bit = 1 << exprs.index[key]
                # x = x + y computes a value the *new* x invalidates
                if not (kill & bit):
                    computed |= bit
        comp[label] = computed
        transp[label] = all_bits & ~killed
    return comp, transp


# ---------------------------------------------------------------------------
# rewrite
# ---------------------------------------------------------------------------

def _find_redundant(func: Function, order, exprs: _ExprTable, avail_in) -> set[int]:
    """Indices of expressions with at least one fully redundant occurrence."""
    redundant: set[int] = set()
    for label in order:
        cur = avail_in[label]
        for instr in func.block(label).instrs:
            key = _key_of(instr)
            if key is not None:
                bit = 1 << exprs.index[key]
                if cur & bit:
                    redundant.add(exprs.index[key])
            kill = _kill_mask(instr, exprs)
            cur &= ~kill
            if key is not None:
                bit = 1 << exprs.index[key]
                if not (kill & bit):
                    cur |= bit
    return redundant


def _rewrite(func: Function, order, exprs, avail_in, redundant, stats: PREStats) -> None:
    temps: dict[int, VReg] = {
        idx: func.new_vreg("pre") for idx in redundant
    }
    for label in order:
        cur = avail_in[label]
        block = func.block(label)
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            key = _key_of(instr)
            idx = exprs.index.get(key) if key is not None else None
            bit = 1 << idx if idx is not None else 0
            if idx in temps and (cur & bit):
                # fully redundant: the temp holds the value
                assert instr.dest is not None
                new_instrs.append(Mov(instr.dest, temps[idx]))
                stats.expressions_removed += 1
                if _is_load(instr):
                    stats.loads_removed += 1
                kill = _kill_mask(instr, exprs)
                cur &= ~kill
                if not (kill & bit):
                    cur |= bit
                continue
            new_instrs.append(instr)
            kill = _kill_mask(instr, exprs)
            cur &= ~kill
            if idx is not None and not (kill & bit):
                cur |= bit
            if idx in temps:
                # provider: publish the value for downstream redundant uses
                assert instr.dest is not None
                new_instrs.append(Mov(temps[idx], instr.dest))
        block.instrs = new_instrs

"""Sparse conditional constant propagation (Wegman–Zadeck SCCP).

The function is converted to SSA, the standard three-level lattice
(⊤ unknown / constant / ⊥ overdefined) is propagated sparsely along SSA
edges and executable CFG edges, then:

* registers proven constant have their defining instructions rewritten to
  ``loadi``;
* conditional branches with constant conditions become jumps, and the
  never-taken edges are pruned (phi inputs included);

finally SSA is destructed and the CFG cleaned.  This is the paper's
"constant propagation" baseline pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cfg import predecessors, remove_unreachable_blocks
from ..ir.function import Function
from ..ir.instructions import (
    BinOp,
    Branch,
    Instr,
    Jump,
    LoadI,
    Mov,
    Phi,
    UnOp,
    VReg,
)
from ..ir.module import Module
from .clean import clean_function
from .valuenum import _try_fold_binop, _try_fold_unop
from ..analysis.ssa import construct_ssa, destruct_ssa

_TOP = "top"
_BOTTOM = "bottom"
# constants are represented by their value (int or float)


@dataclass
class SCCPStats:
    constants_found: int = 0
    branches_folded: int = 0


def run_sccp(func: Function) -> SCCPStats:
    stats = SCCPStats()
    construct_ssa(func)
    try:
        lattice, executable_edges = _propagate(func)
        _rewrite(func, lattice, executable_edges, stats)
    finally:
        _prune_phis(func)
        destruct_ssa(func)
    clean_function(func)
    return stats


def run_sccp_module(module: Module) -> SCCPStats:
    total = SCCPStats()
    for func in module.functions.values():
        stats = run_sccp(func)
        total.constants_found += stats.constants_found
        total.branches_folded += stats.branches_folded
    return total


def _propagate(func: Function):
    lattice: dict[VReg, object] = {}
    for param in func.params:
        lattice[param] = _BOTTOM

    def value_of(reg: VReg) -> object:
        return lattice.get(reg, _TOP)

    # SSA def and use indexes
    def_site: dict[VReg, tuple[str, Instr]] = {}
    uses: dict[VReg, list[tuple[str, Instr]]] = {}
    for label, block in func.blocks.items():
        for instr in block.instrs:
            if instr.dest is not None:
                def_site[instr.dest] = (label, instr)
            for reg in instr.uses():
                uses.setdefault(reg, []).append((label, instr))

    executable_edges: set[tuple[str, str]] = set()
    executable_blocks: set[str] = set()
    flow_work: list[tuple[str | None, str]] = [(None, func.entry)]
    ssa_work: list[VReg] = []

    def raise_to(reg: VReg, value: object) -> None:
        old = value_of(reg)
        new = _meet(old, value)
        if new != old:
            lattice[reg] = new
            ssa_work.append(reg)

    def eval_instr(label: str, instr: Instr) -> None:
        if isinstance(instr, Phi):
            result: object = _TOP
            for pred, reg in instr.incoming.items():
                if (pred, label) in executable_edges:
                    result = _meet(result, value_of(reg))
            raise_to(instr.dst, result)
            return
        if isinstance(instr, LoadI):
            raise_to(instr.dst, instr.value)
            return
        if isinstance(instr, Mov):
            raise_to(instr.dst, value_of(instr.src))
            return
        if isinstance(instr, BinOp):
            a, b = value_of(instr.lhs), value_of(instr.rhs)
            if a is _BOTTOM or b is _BOTTOM:
                raise_to(instr.dst, _BOTTOM)
            elif a is not _TOP and b is not _TOP:
                folded = _try_fold_binop(instr.opcode, a, b)  # type: ignore[arg-type]
                raise_to(instr.dst, folded if folded is not None else _BOTTOM)
            return
        if isinstance(instr, UnOp):
            a = value_of(instr.src)
            if a is _BOTTOM:
                raise_to(instr.dst, _BOTTOM)
            elif a is not _TOP:
                folded = _try_fold_unop(instr.opcode, a)  # type: ignore[arg-type]
                raise_to(instr.dst, folded if folded is not None else _BOTTOM)
            return
        if isinstance(instr, Branch):
            cond = value_of(instr.cond)
            if cond is _BOTTOM:
                _mark_edge(label, instr.if_true)
                _mark_edge(label, instr.if_false)
            elif cond is not _TOP:
                target = instr.if_true if cond != 0 else instr.if_false
                _mark_edge(label, target)
            return
        if isinstance(instr, Jump):
            _mark_edge(label, instr.target)
            return
        dest = instr.dest
        if dest is not None:
            raise_to(dest, _BOTTOM)  # loads, calls, addresses: overdefined

    def _mark_edge(src: str, dst: str) -> None:
        if (src, dst) not in executable_edges:
            executable_edges.add((src, dst))
            flow_work.append((src, dst))

    while flow_work or ssa_work:
        if flow_work:
            _, dst = flow_work.pop()
            block = func.block(dst)
            first_visit = dst not in executable_blocks
            executable_blocks.add(dst)
            # phis must be re-evaluated on every new incoming edge
            for instr in block.phis():
                eval_instr(dst, instr)
            if first_visit:
                for instr in block.instrs[block.first_non_phi_index():]:
                    eval_instr(dst, instr)
            continue
        reg = ssa_work.pop()
        for label, instr in uses.get(reg, []):
            if label in executable_blocks:
                eval_instr(label, instr)

    return lattice, executable_edges


def _meet(a: object, b: object) -> object:
    if a is _TOP:
        return b
    if b is _TOP:
        return a
    if a is _BOTTOM or b is _BOTTOM:
        return _BOTTOM
    if a == b and type(a) is type(b):
        return a
    return _BOTTOM


def _rewrite(func: Function, lattice, executable_edges, stats: SCCPStats) -> None:
    for label, block in func.blocks.items():
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            dest = instr.dest
            value = lattice.get(dest, _TOP) if dest is not None else _TOP
            is_const = dest is not None and value is not _TOP and value is not _BOTTOM
            # phis stay phis (a loadi in the phi zone would break block
            # structure); their constant inputs are already loadi-rewritten
            if is_const and isinstance(instr, (BinOp, UnOp, Mov)):
                stats.constants_found += 1
                new_instrs.append(LoadI(dest, value))
                continue
            if isinstance(instr, Branch):
                cond = lattice.get(instr.cond, _TOP)
                if cond is not _TOP and cond is not _BOTTOM:
                    target = instr.if_true if cond != 0 else instr.if_false
                    stats.branches_folded += 1
                    new_instrs.append(Jump(target))
                    continue
            new_instrs.append(instr)
        block.instrs = new_instrs


def _prune_phis(func: Function) -> None:
    """Drop phi inputs from labels that are no longer predecessors."""
    remove_unreachable_blocks(func)
    preds = predecessors(func)
    for label, block in func.blocks.items():
        for phi in block.phis():
            live = set(preds.get(label, []))
            for gone in [p for p in phi.incoming if p not in live]:
                del phi.incoming[gone]

"""Pointer-based register promotion (the paper's section 3.3).

Scalar promotion only touches named scalars; this pass promotes memory
accessed *through a pointer* when the paper's conditions hold for a loop
``l`` and base register ``b``:

* ``b`` is loop-invariant in ``l`` (LICM has already moved the address
  computation into the landing pad, which is exactly what the paper
  relies on), and its definition dominates the landing pad;
* every access in ``l`` to the tags reachable from ``b`` is a general
  load/store whose address register *is* ``b`` — no other pointer, no
  explicit scalar operation, and no call may touch those tags.

When the conditions hold, the referenced cell is promoted with the same
rewriting scheme as scalar promotion: a load through ``b`` in the landing
pad, a store through ``b`` at each dedicated exit (when the loop may
store), and copies at each reference.

This is the transformation that turns the Figure 3 loop::

    for (j=0; j<DIM_Y; j++) B[i] += A[i][j];

into the accumulator form ``rb += A[i][j]`` with a single store of ``rb``
after the inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dominators import compute_dominators
from ..analysis.loops import LoopForest, normalize_loops
from ..diag import ledger as diag_ledger
from ..ir.function import Function
from ..ir.instructions import (
    Call,
    CLoad,
    Instr,
    MemLoad,
    MemStore,
    Mov,
    ScalarLoad,
    ScalarStore,
    VReg,
)
from ..ir.module import Module
from ..ir.tags import Tag, TagSet


@dataclass
class PointerPromotionReport:
    function: str
    promoted_bases: int = 0
    references_rewritten: int = 0
    loads_inserted: int = 0
    stores_inserted: int = 0
    #: (loop header, base register) pairs that were promoted
    sites: list[tuple[str, VReg]] = field(default_factory=list)


def promote_pointers_function(
    func: Function,
    module: Module | None = None,
    forest: LoopForest | None = None,
    universe: frozenset | None = None,
) -> PointerPromotionReport:
    report = PointerPromotionReport(function=func.name)
    if forest is None:
        forest = normalize_loops(func)
    if not forest.loops:
        return report
    dom = compute_dominators(func)

    if universe is None:
        universe = (
            frozenset(module.memory_tags()) if module is not None else None
        )

    # definition sites per register (non-SSA: registers may have several)
    def_sites: dict[int, list[str]] = {}
    for reg in func.params:
        def_sites.setdefault(reg.id, []).append("<entry>")
    for label, block in func.blocks.items():
        for instr in block.instrs:
            if instr.dest is not None:
                def_sites.setdefault(instr.dest.id, []).append(label)

    # outermost-first: promoting in an outer loop rewrites the inner
    # references to copies, so inner loops naturally see nothing left to do
    for loop in forest.loops_outermost_first():
        _promote_in_loop(func, loop, forest, dom, def_sites, universe, report)
    return report


def promote_pointers_module(module: Module) -> dict[str, PointerPromotionReport]:
    universe = frozenset(module.memory_tags())
    return {
        func.name: promote_pointers_function(func, module, universe=universe)
        for func in module.functions.values()
    }


# ---------------------------------------------------------------------------

def _promote_in_loop(
    func: Function,
    loop,
    forest: LoopForest,
    dom,
    def_sites: dict[int, list[str]],
    universe,
    report: PointerPromotionReport,
) -> None:
    pad_label = loop.preheader(func)

    # gather every memory access and call effect inside the loop
    mem_ops: list[tuple[str, int, Instr]] = []
    scalar_tags: set[Tag] = set()
    call_tags: set[Tag] = set()
    call_universal = False
    for label in loop.blocks:
        for idx, instr in enumerate(func.block(label).instrs):
            if isinstance(instr, (MemLoad, MemStore)):
                mem_ops.append((label, idx, instr))
            elif isinstance(instr, (ScalarLoad, ScalarStore, CLoad)):
                scalar_tags.add(instr.tag)
            elif isinstance(instr, Call):
                for summary in (instr.mod, instr.ref):
                    if summary.universal:
                        call_universal = True
                    else:
                        call_tags.update(summary)

    # group accesses by base address register
    groups: dict[int, list[tuple[str, int, Instr]]] = {}
    for site in mem_ops:
        instr = site[2]
        addr = instr.addr  # type: ignore[union-attr]
        groups.setdefault(addr.id, []).append(site)

    def decide(base_reg: VReg, action: str, reason: str | None = None,
               tags: TagSet | None = None) -> None:
        if diag_ledger.current_ledger() is None:
            return
        detail = {"base": str(base_reg)}
        if tags is not None and not tags.universal:
            detail["tags"] = ",".join(diag_ledger.trim_tag_names(tags))
        diag_ledger.record(
            "pointer_promotion", func.name, action,
            loop=loop.header, reason=reason, detail=detail,
        )

    for base_id, sites in sorted(groups.items()):
        base_reg = sites[0][2].addr  # type: ignore[union-attr]
        if not _base_is_invariant(base_id, loop, pad_label, dom, def_sites):
            decide(base_reg, "blocked", "base-not-invariant")
            continue
        tags = TagSet.empty()
        for _, _, instr in sites:
            tags = tags.union(instr.tags)  # type: ignore[union-attr]
        if tags.universal:
            materialized = universe
            if materialized is None:
                decide(base_reg, "blocked", "universal-tags")
                continue
            tags = TagSet.from_iterable(materialized)
        if tags.is_empty():
            decide(base_reg, "blocked", "empty-tags")
            continue
        if call_universal or any(t in call_tags for t in tags):
            decide(base_reg, "blocked", "call-clobbers", tags)
            continue
        if any(t in scalar_tags for t in tags):
            decide(base_reg, "blocked", "scalar-overlap", tags)
            continue
        # every other memory op touching these tags must use this base
        conflict = False
        for label, idx, instr in mem_ops:
            other_addr = instr.addr  # type: ignore[union-attr]
            if other_addr.id == base_id:
                continue
            other_tags = instr.tags  # type: ignore[union-attr]
            if other_tags.universal or other_tags.overlaps(tags):
                conflict = True
                break
        if conflict:
            decide(base_reg, "blocked", "conflicting-base", tags)
            continue

        _rewrite_group(func, loop, pad_label, base_reg, tags, sites, report)
        report.promoted_bases += 1
        report.sites.append((loop.header, base_reg))
        decide(base_reg, "promoted", tags=tags)


def _base_is_invariant(
    base_id: int, loop, pad_label: str, dom, def_sites
) -> bool:
    sites = def_sites.get(base_id, [])
    if not sites:
        return False
    if any(label in loop.blocks for label in sites):
        return False
    if len(sites) != 1:
        return False  # conservatively require a single reaching definition
    def_label = sites[0]
    if def_label == "<entry>":
        return True
    if def_label == pad_label:
        return True
    return def_label in dom.idom and dom.dominates(def_label, pad_label)


def _rewrite_group(
    func: Function,
    loop,
    pad_label: str,
    base_reg: VReg,
    tags: TagSet,
    sites: list[tuple[str, int, Instr]],
    report: PointerPromotionReport,
) -> None:
    home = func.new_vreg("pp")
    has_store = any(isinstance(instr, MemStore) for _, _, instr in sites)

    replacements: dict[tuple[str, int], Instr] = {}
    for label, idx, instr in sites:
        if isinstance(instr, MemLoad):
            replacements[(label, idx)] = Mov(instr.dst, home)
        else:
            assert isinstance(instr, MemStore)
            replacements[(label, idx)] = Mov(home, instr.src)
        report.references_rewritten += 1
    for (label, idx), new_instr in replacements.items():
        func.block(label).instrs[idx] = new_instr

    pad = func.block(pad_label)
    pad.instrs.insert(len(pad.instrs) - 1, MemLoad(home, base_reg, tags))
    report.loads_inserted += 1

    if has_store:
        for exit_label in loop.exit_blocks(func):
            func.block(exit_label).instrs.insert(
                0, MemStore(home, base_reg, tags)
            )
            report.stores_inserted += 1

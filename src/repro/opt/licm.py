"""Loop-invariant code motion (a baseline pass in the paper's optimizer).

Moves computations whose operands cannot change inside a loop to the
loop's landing pad.  Two classes move:

* pure operations (``loadi``, ``la``, arithmetic) — division and
  remainder only when the divisor is a provably nonzero constant, because
  hoisting makes the operation unconditional and must not introduce a
  trap the original program avoided;
* loads (``sload``/``cload``/general ``load``) whose tags cannot be
  written inside the loop — no aliasing store and no call whose MOD
  summary overlaps — and, for general loads, whose address register is
  invariant.  (Loads never fault in our machine, so making one
  unconditional is safe.)

The pass is deliberately conservative about the non-SSA IL: an
instruction is only considered when its destination has a single
definition in the whole function and every operand has no definition
inside the loop.

This pass is also what enables the paper's pointer-based promotion
(section 3.3): it places the computation of loop-invariant base
registers in the landing pad, where the promoter can find them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.loops import Loop, LoopForest, normalize_loops
from ..diag import ledger as diag_ledger
from ..ir.function import Function
from ..ir.instructions import (
    BinOp,
    Call,
    CLoad,
    Instr,
    LoadAddr,
    LoadI,
    MemLoad,
    MemStore,
    ScalarLoad,
    ScalarStore,
    UnOp,
    VReg,
)
from ..ir.module import Module
from ..ir.opcodes import Opcode
from ..ir.tags import Tag, TagSet


@dataclass
class LICMStats:
    hoisted: int = 0
    loads_hoisted: int = 0


@dataclass
class _LoopMods:
    """What a loop may write."""

    universal: bool = False
    tags: set[Tag] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.tags is None:
            self.tags = set()

    def may_write(self, tags: TagSet) -> bool:
        if self.universal:
            return bool(tags)
        if tags.universal:
            return bool(self.tags)
        return any(t in self.tags for t in tags)

    def may_write_tag(self, tag: Tag) -> bool:
        return self.universal or tag in self.tags


def run_licm(func: Function, forest: LoopForest | None = None) -> LICMStats:
    stats = LICMStats()
    if forest is None:
        forest = normalize_loops(func)
    if not forest.loops:
        return stats

    def_blocks: dict[int, set[str]] = {}
    def_counts: dict[int, int] = {}
    for reg in func.params:
        def_counts[reg.id] = def_counts.get(reg.id, 0) + 1
        def_blocks.setdefault(reg.id, set()).add("<entry>")
    for label, block in func.blocks.items():
        for instr in block.instrs:
            if instr.dest is not None:
                def_counts[instr.dest.id] = def_counts.get(instr.dest.id, 0) + 1
                def_blocks.setdefault(instr.dest.id, set()).add(label)

    for loop in forest.loops_innermost_first():
        _hoist_from_loop(func, loop, def_blocks, def_counts, stats)
    return stats


def run_licm_module(module: Module) -> LICMStats:
    total = LICMStats()
    for func in module.functions.values():
        stats = run_licm(func)
        total.hoisted += stats.hoisted
        total.loads_hoisted += stats.loads_hoisted
    return total


def _loop_mods(func: Function, loop: Loop) -> _LoopMods:
    mods = _LoopMods()
    for label in loop.blocks:
        for instr in func.block(label).instrs:
            if isinstance(instr, ScalarStore):
                mods.tags.add(instr.tag)
            elif isinstance(instr, MemStore):
                if instr.tags.universal:
                    mods.universal = True
                else:
                    mods.tags.update(instr.tags)
            elif isinstance(instr, Call):
                if instr.mod.universal:
                    mods.universal = True
                else:
                    mods.tags.update(instr.mod)
    return mods


def _hoist_from_loop(
    func: Function,
    loop: Loop,
    def_blocks: dict[int, set[str]],
    def_counts: dict[int, int],
    stats: LICMStats,
) -> None:
    pad_label = loop.preheader(func)
    pad = func.block(pad_label)
    mods = _loop_mods(func, loop)

    def invariant_reg(reg: VReg) -> bool:
        blocks = def_blocks.get(reg.id, set())
        return not (blocks & loop.blocks)

    changed = True
    while changed:
        changed = False
        for label in sorted(loop.blocks):
            block = func.block(label)
            kept: list[Instr] = []
            for instr in block.instrs:
                if _hoistable(instr, mods, invariant_reg, def_counts):
                    pad.instrs.insert(len(pad.instrs) - 1, instr)
                    dest = instr.dest
                    assert dest is not None
                    def_blocks[dest.id].discard(label)
                    def_blocks[dest.id].add(pad_label)
                    stats.hoisted += 1
                    if isinstance(instr, (ScalarLoad, CLoad, MemLoad)):
                        stats.loads_hoisted += 1
                    diag_ledger.record(
                        "licm", func.name, "hoisted", loop=loop.header,
                        tag=getattr(instr, "tag", None)
                        and str(instr.tag),  # type: ignore[attr-defined]
                        detail={"opcode": instr.opcode.value, "from": label},
                    )
                    changed = True
                else:
                    kept.append(instr)
            block.instrs = kept


def _hoistable(
    instr: Instr,
    mods: _LoopMods,
    invariant_reg,
    def_counts: dict[int, int],
) -> bool:
    dest = instr.dest
    if dest is None or def_counts.get(dest.id, 0) != 1:
        return False
    if isinstance(instr, (LoadI, LoadAddr)):
        return True
    if isinstance(instr, BinOp):
        if not (invariant_reg(instr.lhs) and invariant_reg(instr.rhs)):
            return False
        if instr.opcode in (Opcode.DIV, Opcode.MOD):
            return False  # could trap if made unconditional
        return True
    if isinstance(instr, UnOp):
        return invariant_reg(instr.src)
    if isinstance(instr, (ScalarLoad, CLoad)):
        return not mods.may_write_tag(instr.tag)
    if isinstance(instr, MemLoad):
        return invariant_reg(instr.addr) and not mods.may_write(instr.tags)
    return False

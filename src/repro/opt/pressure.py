"""Register-pressure-aware promotion throttling (the paper's section 3.4
future work, in the spirit of Carr's bin packing).

The paper closes with: "register promotion increases the demand for
registers ... beyond some point, the memory accesses removed by the
transformation were balanced by the spills added during register
allocation.  [Carr] adopted a bin-packing discipline to throttle the
promotion process.  As we extend our work, we will undoubtedly encounter
the same problem and need a similar solution."

This module is that solution:

* :func:`estimate_loop_pressure` computes MAXLIVE — the maximum number of
  simultaneously live virtual registers at any instruction boundary
  inside a loop — from the liveness analysis;
* :func:`plan_promotions` walks the loop forest outermost-first and
  budgets each loop: a tag is only kept promotable while the loop's
  estimated pressure plus the promoted homes (including those inherited
  from enclosing loops) stays within the register budget, minus a small
  reserve for allocator temporaries.  Tags are ranked by *frequency of
  use* (static reference count weighted by loop depth), so the throttle
  keeps the references that matter — exactly the "explicit
  decision-making process that considers register pressure and frequency
  of use" the paper proposes.

The result plugs into :class:`~repro.opt.promotion.PromotionOptions` via
``pressure_budget``; `benchmarks/bench_a2_register_pressure.py` shows it
recovering the water loss while keeping the wins elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.liveness import Liveness, compute_liveness
from ..analysis.loops import Loop, LoopForest
from ..ir.function import Function
from ..ir.instructions import CLoad, ScalarLoad, ScalarStore
from ..ir.tags import Tag


@dataclass
class PressurePlan:
    """Which tags each loop may promote under the budget."""

    #: loop header -> tags allowed to stay promotable there
    allowed: dict[str, frozenset[Tag]] = field(default_factory=dict)
    #: loop header -> MAXLIVE estimate before promotion
    base_pressure: dict[str, int] = field(default_factory=dict)
    #: tags dropped anywhere by the throttle
    dropped: set[Tag] = field(default_factory=set)

    def allows(self, header: str, tag: Tag) -> bool:
        allowed = self.allowed.get(header)
        return allowed is None or tag in allowed


def estimate_loop_pressure(
    func: Function, loop: Loop, liveness: Liveness | None = None
) -> int:
    """MAXLIVE across the loop body.

    Walks each block backwards from its live-out set, tracking the live
    set size at every instruction boundary — the same quantity a
    Chaitin-style allocator ultimately has to color.
    """
    if liveness is None:
        liveness = compute_liveness(func)
    peak = 0
    for label in loop.blocks:
        block = func.block(label)
        live = set(liveness.live_out.get(label, frozenset()))
        peak = max(peak, len(live))
        for instr in reversed(block.instrs):
            dest = instr.dest
            if dest is not None:
                live.discard(dest)
            live.update(instr.uses())
            peak = max(peak, len(live))
    return peak


def tag_use_frequency(func: Function, loop: Loop) -> dict[Tag, int]:
    """Static reference counts per tag inside the loop, weighted by the
    nesting depth of the referencing block relative to the loop."""
    counts: dict[Tag, int] = {}
    for label in loop.blocks:
        for instr in func.block(label).instrs:
            if isinstance(instr, (ScalarLoad, ScalarStore, CLoad)):
                counts[instr.tag] = counts.get(instr.tag, 0) + 1
    return counts


def plan_promotions(
    func: Function,
    forest: LoopForest,
    promotable: dict[str, frozenset[Tag]],
    num_registers: int,
    reserve: int = 4,
) -> PressurePlan:
    """Budget each loop's promotions.

    ``promotable`` maps loop headers to the Figure 1 PROMOTABLE sets.
    The budget for a loop is ``num_registers - reserve - MAXLIVE(loop)``
    plus the homes already paid for by enclosing loops (a tag promoted in
    the parent occupies its register either way, so it is free here).
    """
    plan = PressurePlan()
    liveness = compute_liveness(func)

    def budget_loop(loop: Loop, inherited: frozenset[Tag]) -> None:
        candidates = promotable.get(loop.header, frozenset())
        base = estimate_loop_pressure(func, loop, liveness)
        plan.base_pressure[loop.header] = base
        headroom = num_registers - reserve - base
        free = candidates & inherited
        new_candidates = sorted(
            candidates - inherited,
            key=lambda t: (-tag_use_frequency(func, loop).get(t, 0), t.name),
        )
        kept = set(free)
        for tag in new_candidates:
            if len(kept - inherited) < max(headroom, 0):
                kept.add(tag)
            else:
                plan.dropped.add(tag)
        plan.allowed[loop.header] = frozenset(kept)
        for child in loop.children:
            budget_loop(child, inherited | frozenset(kept))

    for top in forest.top_level():
        budget_loop(top, frozenset())
    return plan

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run FILE.c``
    Compile with one pipeline variant and execute; print the program's
    output and the dynamic operation counts (``--profile`` adds a
    per-loop hot-loop table).
``compare FILE.c``
    Run all four paper variants (Figures 5-7 style) on one file and print
    the comparison table plus a per-variant promotion summary
    (``--profile`` adds per-loop before/after memory-traffic tables).
``explain FILE.c``
    Compile once under the decision ledger and print why each pass did or
    refused to do something — e.g. which call or pointer operation blocked
    a tag's promotion (filter with ``--tag``/``--loop``/``--pass``).
``ir FILE.c``
    Print the optimized IL (use ``--no-opt`` for the raw front-end output).
``suite [PROGRAM ...]``
    Regenerate the paper's Figure 5/6/7 rows for the named workloads
    (default: the whole 14-program suite).
``drift BASELINE.json``
    Run the suite and diff its metrics against a checked-in baseline;
    non-zero exit on gated regressions.  ``--update`` re-baselines.
``bench [PROGRAM ...]``
    Time the benchmark programs under all three interpreter engines and
    write ``BENCH_interp.json`` with per-pair geomean speedups
    (``--quick`` for the CI subset; ``--baseline``/``--tolerance`` gate
    against a committed run).
``fuzz``
    Generative differential testing: random C programs through the
    multi-level oracle (-O0 / full ± promotion / pointer, every engine)
    until the ``--budget`` is spent; divergences are delta-reduced and
    recorded as artifacts (see ``docs/FUZZING.md``).
``serve``
    Run the resident compile-and-execute service: an asyncio TCP server
    (newline-delimited JSON) in front of a persistent warm worker pool,
    with admission control, request coalescing, and the shared result
    cache (see ``docs/SERVING.md``).  SIGTERM/SIGINT drain gracefully.
``loadgen``
    Drive a running server with a configurable concurrency/duration/
    program-mix campaign and write ``BENCH_serve.json``.

Commands that execute programs accept ``--engine threaded|simple|tier2``
to pick the interpreter engine (default: the block-threaded one; all
three produce bit-identical counters and output — ``tier2`` adds the
specializing superblock tier on top of threaded execution).

Global ``-v``/``-vv`` raise log verbosity (INFO/DEBUG); ``-q`` silences
warnings.  The flags are accepted both before and after the subcommand.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .diag.log import setup_logging
from .frontend import compile_c
from .interp import MachineOptions, run_module
from .ir.printer import format_module
from .pipeline import (
    Analysis,
    ExperimentCell,
    PipelineOptions,
    check_outputs_agree,
    compile_source,
    paper_variants,
)


def _pipeline_options(args: argparse.Namespace) -> PipelineOptions:
    return PipelineOptions(
        analysis=Analysis(args.analysis),
        promotion=not args.no_promotion,
        pointer_promotion=args.pointer_promotion,
    )


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=["threaded", "simple", "tier2"],
        default="threaded",
        help="interpreter engine (default: threaded; all are bit-identical)",
    )


def _add_variant_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--analysis",
        choices=[a.value for a in Analysis],
        default="modref",
        help="interprocedural analysis (default: modref)",
    )
    parser.add_argument(
        "--no-promotion", action="store_true", help="disable register promotion"
    )
    parser.add_argument(
        "--pointer-promotion",
        action="store_true",
        help="enable section 3.3 pointer-based promotion",
    )


def cmd_run(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    options = _pipeline_options(args)
    machine = MachineOptions(
        max_steps=args.max_steps, profile=args.profile, engine=args.engine
    )
    compiled = compile_source(source, options, name=Path(args.file).stem)
    run = run_module(compiled.module, options=machine)
    sys.stdout.write(run.output)
    print(f"[{options.variant_name()}] {run.counters}", file=sys.stderr)
    if args.profile:
        from .diag.profile import format_profile, profile_loops

        rows = profile_loops(compiled.module, run.block_visits or {})
        print(format_profile(rows), file=sys.stderr)
    return run.exit_code


def _promotion_summary(cells: dict[str, ExperimentCell]) -> list[str]:
    """One line per variant: what promotion did, and in which loops."""
    lines = ["promotion summary:"]
    for name, cell in cells.items():
        compiled = cell.compile_result
        if compiled is None or not compiled.options.promotion:
            lines.append(f"  {name:<18} promotion disabled")
            continue
        reports = list(compiled.promotion_reports.values())
        tags = set().union(*(r.promoted_tags for r in reports)) if reports else set()
        refs = sum(r.references_rewritten for r in reports)
        loads = sum(r.loads_inserted for r in reports)
        stores = sum(r.stores_inserted for r in reports)
        lifted = [
            "%s@%s{%s}" % (
                report.function,
                loop.header,
                ",".join(sorted(str(t) for t in loop.lifted)),
            )
            for report in reports
            for loop in report.loops
            if loop.lifted
        ]
        suffix = f"; lifted {' '.join(lifted)}" if lifted else ""
        lines.append(
            f"  {name:<18} {len(tags)} tag(s) promoted, {refs} ref(s) "
            f"rewritten, {loads} load(s) + {stores} store(s) inserted{suffix}"
        )
    return lines


def cmd_compare(args: argparse.Namespace) -> int:
    import json

    from .runner import telemetry

    source = Path(args.file).read_text()
    stem = Path(args.file).stem
    machine = MachineOptions(
        max_steps=args.max_steps, profile=args.profile, engine=args.engine
    )
    cells: dict[str, ExperimentCell] = {}
    profiles: dict[str, list] = {}
    trace_groups = {}
    print(f"{'variant':<18} {'total ops':>12} {'loads':>10} {'stores':>10}")
    print("-" * 54)
    for name, options in paper_variants(
        pointer_promotion=args.pointer_promotion
    ).items():

        def build():
            with telemetry.span("compile", variant=name):
                compiled = compile_source(source, options, name=stem)
            with telemetry.span("execute", variant=name):
                run = run_module(compiled.module, options=machine)
            return compiled, run

        if args.trace:
            with telemetry.tracing(name) as trace:
                compiled, run = build()
            trace_groups[name] = trace.events
        else:
            compiled, run = build()
        cells[name] = ExperimentCell(
            variant=name,
            counters=run.counters,
            exit_code=run.exit_code,
            output=run.output,
            compile_result=compiled,
        )
        if args.profile:
            from .diag.profile import profile_loops

            profiles[name] = profile_loops(compiled.module, run.block_visits or {})
        c = run.counters
        print(f"{name:<18} {c.total_ops:>12} {c.loads:>10} {c.stores:>10}")
    check_outputs_agree(cells)
    print()
    for line in _promotion_summary(cells):
        print(line)
    if args.profile:
        from .diag.profile import format_profile_comparison

        for analysis in ("modref", "pointer"):
            before = profiles.get(f"{analysis}/nopromo")
            after = profiles.get(f"{analysis}/promo")
            if before is None or after is None:
                continue
            print(f"\nper-loop memory traffic ({analysis}):", file=sys.stderr)
            print(
                format_profile_comparison(before, after, "nopromo", "promo"),
                file=sys.stderr,
            )
    if args.json:
        payload = {
            name: {
                "counters": cell.counters.as_dict(),
                "exit_code": cell.exit_code,
            }
            for name, cell in cells.items()
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
    if args.trace:
        telemetry.write_chrome_trace(args.trace, trace_groups)
        print(telemetry.format_span_summary(trace_groups), file=sys.stderr)
    print()
    print("program output (identical across variants):")
    sys.stdout.write(cells["modref/promo"].output)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .diag.ledger import decision_ledger, format_decision_table

    source = Path(args.file).read_text()
    with decision_ledger() as ledger:
        compile_source(source, _pipeline_options(args), name=Path(args.file).stem)
    decisions = ledger.query(
        pass_name=args.pass_name,
        function=args.function,
        loop=args.loop,
        tag=args.tag,
        action=args.action,
    )
    if args.json:
        if decisions:
            print(ledger.jsonl(decisions))
    else:
        print(format_decision_table(decisions))
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    if args.no_opt:
        module = compile_c(source, name=Path(args.file).stem)
    else:
        module = compile_source(
            source, _pipeline_options(args), name=Path(args.file).stem
        ).module
    sys.stdout.write(format_module(module))
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from .harness import METRICS, format_figure
    from .runner import ResultCache, telemetry
    from .runner.report import run_suite_report, write_suite_json
    from .workloads import workload_names

    names = args.programs or workload_names()
    unknown = sorted(set(names) - set(workload_names()))
    if unknown:
        print(f"unknown workloads: {unknown}", file=sys.stderr)
        print(f"available: {workload_names()}", file=sys.stderr)
        return 2

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    fn_store = None
    if not args.no_cache:
        from .inccomp import FunctionStore

        fn_store = FunctionStore(Path(args.cache_dir) / "fn")
    if args.clear_cache and cache is not None:
        removed = cache.clear()
        fn_removed = fn_store.clear() if fn_store is not None else 0
        print(
            f"cache cleared ({removed} cells, {fn_removed} functions)",
            file=sys.stderr,
        )

    def progress(spec, outcome) -> None:
        if outcome.ok:
            status = "cached" if outcome.from_cache else f"{outcome.seconds:.2f}s"
        else:
            status = f"{outcome.kind.upper()}: {outcome.message}"
        print(f"  {spec.workload:<12} {spec.variant:<16} {status}", file=sys.stderr)

    report = run_suite_report(
        names,
        pointer_promotion=args.pointer_promotion,
        max_steps=args.max_steps,
        engine=args.engine,
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        collect_trace=bool(args.trace),
        progress=progress,
        fn_store=fn_store,
    )
    for metric in METRICS:
        print(format_figure(report.results, metric))
        print()
    for failure in report.failures:
        print(
            f"FAILED {failure.workload}[{failure.variant}]: {failure.kind} "
            f"after {failure.attempts} attempt(s): {failure.message}",
            file=sys.stderr,
        )
    for problem in report.disagreements:
        print(f"DISAGREEMENT {problem}", file=sys.stderr)
    if cache is not None:
        print(
            f"cache: {report.cache_hits} hits, {report.cache_misses} misses",
            file=sys.stderr,
        )
    print(f"suite: {report.seconds:.2f}s with {report.jobs} job(s)", file=sys.stderr)
    if args.json:
        write_suite_json(args.json, report)
    if args.trace:
        groups = report.trace_groups()
        telemetry.write_chrome_trace(args.trace, groups)
        print(telemetry.format_span_summary(groups), file=sys.stderr)
    return report.exit_code()


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        QUICK_PROGRAMS,
        bench_interpreters,
        check_regression,
        format_bench,
        load_bench_json,
        write_bench_json,
    )
    from .workloads import workload_names

    names = args.programs or (list(QUICK_PROGRAMS) if args.quick else None)
    if names:
        unknown = sorted(set(names) - set(workload_names()))
        if unknown:
            print(f"unknown workloads: {unknown}", file=sys.stderr)
            print(f"available: {workload_names()}", file=sys.stderr)
            return 2
    if args.compile:
        import json as json_mod

        from .inccomp.bench import (
            bench_compile,
            check_compile_gate,
            format_compile_bench,
        )

        payload = bench_compile(names)
        print(format_compile_bench(payload))
        out = args.out if args.out != "BENCH_interp.json" else "BENCH_compile.json"
        Path(out).write_text(json_mod.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}", file=sys.stderr)
        problems = check_compile_gate(payload, args.min_speedup)
        for problem in problems:
            print(f"compile bench gate: {problem}", file=sys.stderr)
        return 1 if problems else 0
    baseline = None
    if args.baseline:
        try:
            baseline = load_bench_json(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
    payload = bench_interpreters(
        names, repeats=args.repeats, max_steps=args.max_steps
    )
    print(format_bench(payload))
    write_bench_json(args.out, payload)
    print(f"wrote {args.out}", file=sys.stderr)
    if baseline is not None:
        failures = check_regression(payload, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"bench regression: {failure}", file=sys.stderr)
            return 1
        print(
            f"no regression vs {args.baseline} "
            f"(tolerance {args.tolerance:g}%)",
            file=sys.stderr,
        )
    return 0


def _parse_fuzz_seed(text: str) -> int:
    """Decimal seeds pass through; anything else (e.g. a git SHA) hashes
    to a stable 63-bit integer so CI can seed with ``$GITHUB_SHA``."""
    try:
        return int(text, 10)
    except ValueError:
        import hashlib

        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import CampaignOptions, OracleConfig, run_campaign

    options = CampaignOptions(
        budget_seconds=args.budget,
        max_programs=args.programs,
        seed=_parse_fuzz_seed(args.seed),
        jobs=args.jobs,
        batch_size=args.batch_size,
        keep_going=args.keep_going,
        reduce=not args.no_reduce,
        corpus_dir=args.corpus_dir,
        artifacts_dir=args.artifacts,
        oracle=OracleConfig(max_steps=args.max_steps),
    )

    def progress(report) -> None:
        if report.status != "ok" or args.verbose:
            print(
                f"  {report.program.name:<14} {report.status}"
                + (
                    ": " + "; ".join(d.kind for d in report.divergences)
                    if report.divergences
                    else ""
                ),
                file=sys.stderr,
            )
        for warning in report.warnings:
            print(f"  {report.program.name:<14} note: {warning}", file=sys.stderr)

    result = run_campaign(options, progress=progress)
    print(result.summary())
    for artifact in result.artifact_dirs:
        print(f"divergence artifact: {artifact}", file=sys.stderr)
    return result.exit_code()


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import ReproServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_deadline_s=args.deadline,
        recycle_after=args.recycle_after,
        cache_dir=None if args.no_cache else args.cache_dir,
        default_max_steps=args.max_steps,
        trace_sample=args.trace_sample,
        trace_export=args.trace_export,
        flight_capacity=args.flight_capacity,
        artifacts_dir=args.artifacts_dir,
        drain_timeout_s=args.drain_timeout,
        chaos_plan=args.chaos_plan,
    )

    if config.chaos_plan is not None:
        from .chaos import FaultPlan

        try:
            config.chaos_plan = FaultPlan.parse(config.chaos_plan)
        except ValueError as error:
            print(f"bad --chaos-plan: {error}", file=sys.stderr)
            return 2

    async def main() -> int:
        server = ReproServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: loop.create_task(server.drain())
            )
        chaos_note = (
            f", chaos {config.chaos_plan.spec()}"
            if config.chaos_plan is not None
            else ""
        )
        print(
            f"repro-serve listening on {config.host}:{server.port} "
            f"({config.workers} workers, queue limit {config.queue_limit}, "
            f"cache {'off' if config.cache_dir is None else config.cache_dir}"
            f"{chaos_note})",
            file=sys.stderr,
            flush=True,
        )
        await server.wait_drained()
        print("repro-serve drained, exiting", file=sys.stderr)
        return 0

    return asyncio.run(main())


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.client import (
        LoadgenConfig,
        PAPER_VARIANTS,
        format_loadgen,
        run_loadgen,
        wait_for_server,
    )
    from .workloads import workload_names

    programs = tuple(args.programs) if args.programs else None
    if programs:
        unknown = sorted(set(programs) - set(workload_names()))
        if unknown:
            print(f"unknown workloads: {unknown}", file=sys.stderr)
            print(f"available: {workload_names()}", file=sys.stderr)
            return 2
    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        concurrency=args.concurrency,
        duration_s=args.duration,
        requests=args.requests,
        programs=programs or LoadgenConfig.programs,
        variants=PAPER_VARIANTS,
        max_steps=args.max_steps,
        deadline_s=args.deadline,
        warmup=not args.no_warmup,
        drain_on_finish=args.drain,
        out=args.out,
        trace_sample=args.trace_sample,
        cold_fraction=args.cold_fraction,
        engine=args.engine,
        resilient=args.resilient,
        hedge=args.hedge,
    )

    async def main() -> int:
        if args.wait:
            await wait_for_server(config.host, config.port, args.wait)
        payload = await run_loadgen(config)
        print(format_loadgen(payload))
        if config.out:
            print(f"wrote {config.out}", file=sys.stderr)
        return 1 if payload["totals"]["errors"] else 0

    return asyncio.run(main())


def cmd_chaos(args: argparse.Namespace) -> int:
    from .chaos import SITES, SoakConfig, format_soak_report, run_soak

    if args.sites:
        unknown = sorted(set(args.sites) - set(SITES))
        if unknown:
            print(f"unknown chaos sites: {unknown}", file=sys.stderr)
            print(f"available: {list(SITES)}", file=sys.stderr)
            return 2
    config = SoakConfig(
        budget=args.budget,
        seed=_parse_fuzz_seed(args.seed),
        rate=args.rate,
        sites=tuple(args.sites) if args.sites else SITES,
        workers=args.workers,
        deadline_s=args.deadline,
        max_steps=args.max_steps,
        artifacts_dir=args.artifacts,
        out=args.out,
    )
    report = run_soak(config)
    print(format_soak_report(report))
    if config.out:
        print(f"wrote {config.out}", file=sys.stderr)
    if not report["passed"]:
        print(
            f"replay with: repro chaos soak --budget {config.budget} "
            f"--seed {report['seed']} --rate {config.rate}",
            file=sys.stderr,
        )
    return 0 if report["passed"] else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from .trace import group_traces, load_spans, trace_root
    from .trace.report import (
        filter_traces,
        format_critical_path,
        format_slow,
        format_top,
        format_trace_list,
        format_trace_tree,
    )

    try:
        events = load_spans(args.file)
    except FileNotFoundError:
        print(f"no span stream at {args.file}", file=sys.stderr)
        return 2
    groups = filter_traces(
        group_traces(events),
        trace_id=args.trace_id,
        op=args.op,
        program=args.program,
    )
    if not groups:
        print("no traces match", file=sys.stderr)
        return 1

    if args.mode == "show":
        if args.trace_id is not None and len(groups) == 1:
            print(format_trace_tree(next(iter(groups.values()))))
        else:
            print(format_trace_list(groups, limit=args.limit))
    elif args.mode == "top":
        print(
            format_top(
                groups, limit=args.limit,
                name=args.span_name, worker=args.worker,
            )
        )
    elif args.mode == "slow":
        print(format_slow(groups, limit=args.limit))
    else:  # critical-path
        ranked = sorted(
            groups.values(),
            key=lambda evts: -(r.seconds if (r := trace_root(evts)) else 0.0),
        )
        count = 1 if args.trace_id is not None else args.limit
        print(
            "\n\n".join(
                format_critical_path(events) for events in ranked[:count]
            )
        )
    return 0


def cmd_drift(args: argparse.Namespace) -> int:
    from .diag.drift import (
        compare_cells,
        format_drift_report,
        load_baseline,
        regressions,
        suite_cell_metrics,
        write_baseline,
    )
    from .runner import ResultCache
    from .runner.report import run_suite_report
    from .workloads import workload_names

    names = args.programs or None
    if names:
        unknown = sorted(set(names) - set(workload_names()))
        if unknown:
            print(f"unknown workloads: {unknown}", file=sys.stderr)
            return 2

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    report = run_suite_report(
        names,
        pointer_promotion=args.pointer_promotion,
        max_steps=args.max_steps,
        engine=args.engine,
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
    )
    for failure in report.failures:
        print(
            f"FAILED {failure.workload}[{failure.variant}]: {failure.message}",
            file=sys.stderr,
        )
    for problem in report.disagreements:
        print(f"DISAGREEMENT {problem}", file=sys.stderr)
    if not report.ok:
        print("drift: suite itself failed; no comparison done", file=sys.stderr)
        return 1

    current = suite_cell_metrics(report)
    if args.update:
        write_baseline(args.baseline, current)
        print(f"baseline updated: {args.baseline} ({len(current)} cells)")
        return 0
    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(
            f"no baseline at {args.baseline}; create one with "
            f"`repro drift {args.baseline} --update`",
            file=sys.stderr,
        )
        return 2
    if names:
        # a partial run can only be judged against the matching subset
        prefixes = tuple(f"{name}/" for name in names)
        baseline = {
            cell: metrics
            for cell, metrics in baseline.items()
            if cell.startswith(prefixes)
        }
    drifts = compare_cells(baseline, current, tolerance_pct=args.tolerance)
    print(format_drift_report(drifts, args.tolerance))
    return 1 if regressions(drifts) else 0


def _logging_flags(parser: argparse.ArgumentParser, root: bool) -> None:
    # root gets real defaults; subcommands SUPPRESS theirs so a value the
    # root parser already counted is not reset to zero
    parser.add_argument(
        "-v", "--verbose", action="count",
        default=0 if root else argparse.SUPPRESS,
        help="-v for INFO, -vv for DEBUG logging (on stderr)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        default=False if root else argparse.SUPPRESS,
        help="errors only",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Register promotion reproduction (Cooper & Lu, PLDI 1997)",
    )
    _logging_flags(parser, root=True)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        _logging_flags(p, root=False)
        return p

    p_run = add_command("run", "compile and execute a C file")
    p_run.add_argument("file")
    p_run.add_argument("--max-steps", type=int, default=500_000_000)
    p_run.add_argument("--profile", action="store_true",
                       help="count block executions; print a hot-loop table")
    _add_engine_flag(p_run)
    _add_variant_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = add_command("compare", "run all four paper variants")
    p_cmp.add_argument("file")
    p_cmp.add_argument("--max-steps", type=int, default=500_000_000)
    p_cmp.add_argument("--pointer-promotion", action="store_true")
    p_cmp.add_argument("--profile", action="store_true",
                       help="per-loop before/after memory-traffic tables")
    p_cmp.add_argument("--json", metavar="FILE",
                       help="write per-variant counters as JSON")
    p_cmp.add_argument("--trace", metavar="FILE",
                       help="write a Chrome-trace JSON of per-pass timings")
    _add_engine_flag(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_exp = add_command("explain", "show why passes made their decisions")
    p_exp.add_argument("file")
    p_exp.add_argument("--pass", dest="pass_name", metavar="PASS",
                       help="only decisions from this pass (e.g. promotion)")
    p_exp.add_argument("--function", help="only decisions in this function")
    p_exp.add_argument("--loop", help="only decisions about this loop header")
    p_exp.add_argument("--tag", help="only decisions about this memory tag")
    p_exp.add_argument("--action", help="only this action (promoted, blocked...)")
    p_exp.add_argument("--json", action="store_true",
                       help="JSONL instead of the table")
    _add_variant_flags(p_exp)
    p_exp.set_defaults(func=cmd_explain)

    p_ir = add_command("ir", "print the IL for a C file")
    p_ir.add_argument("file")
    p_ir.add_argument("--no-opt", action="store_true",
                      help="raw front-end output, no analysis/optimization")
    _add_variant_flags(p_ir)
    p_ir.set_defaults(func=cmd_ir)

    p_suite = add_command("suite", "regenerate Figure 5/6/7 rows")
    p_suite.add_argument("programs", nargs="*")
    p_suite.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = inline, serial)")
    p_suite.add_argument("--max-steps", type=int, default=50_000_000)
    p_suite.add_argument("--pointer-promotion", action="store_true",
                         help="enable section 3.3 pointer-based promotion")
    p_suite.add_argument("--timeout", type=float, default=None,
                         help="per-cell seconds budget (jobs > 1 only)")
    p_suite.add_argument("--no-cache", action="store_true",
                         help="always recompute, don't touch the result cache")
    p_suite.add_argument("--cache-dir", default=".repro-cache",
                         help="result cache location (default: .repro-cache)")
    p_suite.add_argument("--clear-cache", action="store_true",
                         help="invalidate every cached cell before running")
    p_suite.add_argument("--json", metavar="FILE",
                         help="write the machine-readable suite.json")
    p_suite.add_argument("--trace", metavar="FILE",
                         help="write a Chrome-trace JSON of per-pass timings")
    _add_engine_flag(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_bench = add_command(
        "bench", "time the interpreter engines and write BENCH_interp.json"
    )
    p_bench.add_argument("programs", nargs="*",
                         help="workload subset (default: all 14)")
    p_bench.add_argument("--quick", action="store_true",
                         help="CI subset: " + " ".join(
                             ("dhrystone", "fft", "mlink", "tsp")))
    p_bench.add_argument("--compile", action="store_true",
                         help="bench compilation instead of interpreters: "
                              "from-scratch vs incremental vs warm "
                              "(writes BENCH_compile.json)")
    p_bench.add_argument("--min-speedup", type=float, default=2.0,
                         metavar="X",
                         help="with --compile: fail unless the one-function-"
                              "edit recompile beats from-scratch by this "
                              "factor (default 2.0)")
    p_bench.add_argument("--repeats", type=int, default=2,
                         help="runs per engine, best wall time wins (default 2)")
    p_bench.add_argument("--max-steps", type=int, default=500_000_000)
    p_bench.add_argument("--out", default="BENCH_interp.json",
                         help="output path (default: BENCH_interp.json)")
    p_bench.add_argument("--baseline", metavar="FILE",
                         help="committed BENCH_interp.json to gate against; "
                              "exit 1 if a per-pair geomean speedup regresses")
    p_bench.add_argument("--tolerance", type=float, default=25.0,
                         metavar="PCT",
                         help="allowed geomean drop vs the baseline before "
                              "failing, in percent (default 25)")
    p_bench.set_defaults(func=cmd_bench)

    p_fuzz = add_command(
        "fuzz", "generative differential testing (random C vs the oracle)"
    )
    p_fuzz.add_argument("--budget", type=float, default=60.0, metavar="SECONDS",
                        help="wall-clock budget; stops starting new batches "
                             "once spent (default 60)")
    p_fuzz.add_argument("--programs", type=int, default=None, metavar="N",
                        help="exact program cap (overrides time for "
                             "deterministic runs)")
    p_fuzz.add_argument("--seed", default="0",
                        help="base seed; decimal int or any string "
                             "(hashed), e.g. a git SHA (default 0)")
    p_fuzz.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the oracle cells "
                             "(1 = inline)")
    p_fuzz.add_argument("--batch-size", type=int, default=16,
                        help="programs per scheduler batch (default 16)")
    p_fuzz.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="promote reduced reproducers into this corpus "
                             "directory (e.g. tests/corpus)")
    p_fuzz.add_argument("--artifacts", default="fuzz-artifacts", metavar="DIR",
                        help="divergence artifact directory "
                             "(default fuzz-artifacts)")
    p_fuzz.add_argument("--keep-going", action="store_true",
                        help="continue fuzzing after a divergence instead "
                             "of stopping at the first")
    p_fuzz.add_argument("--no-reduce", action="store_true",
                        help="skip delta-debugging divergent programs")
    p_fuzz.add_argument("--max-steps", type=int, default=5_000_000,
                        help="interpreter fuel per oracle cell")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_srv = add_command(
        "serve", "run the resident compile-and-execute service"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7411,
                       help="TCP port (0 = pick a free one; default 7411)")
    p_srv.add_argument("--workers", type=int, default=2,
                       help="persistent worker processes (default 2)")
    p_srv.add_argument("--queue-limit", type=int, default=64,
                       help="admission queue depth before queue_full "
                            "rejections (default 64)")
    p_srv.add_argument("--deadline", type=float, default=120.0,
                       metavar="SECONDS",
                       help="per-request deadline cap (default 120)")
    p_srv.add_argument("--recycle-after", type=int, default=200, metavar="N",
                       help="recycle each worker after N requests "
                            "(default 200)")
    p_srv.add_argument("--max-steps", type=int, default=50_000_000,
                       help="default interpreter fuel per cell")
    p_srv.add_argument("--no-cache", action="store_true",
                       help="don't read or write the result cache")
    p_srv.add_argument("--cache-dir", default=".repro-cache",
                       help="result cache location (default: .repro-cache)")
    p_srv.add_argument("--trace-sample", type=float, default=0.0,
                       metavar="RATE",
                       help="head-sample this fraction of work requests "
                            "for tracing (0..1, default 0 = only "
                            "client-requested traces)")
    p_srv.add_argument("--trace-export", default=None, metavar="FILE",
                       help="append every exported span to this JSONL "
                            "stream (read by `repro trace`)")
    p_srv.add_argument("--flight-capacity", type=int, default=512,
                       metavar="N",
                       help="flight-recorder ring size in spans "
                            "(default 512)")
    p_srv.add_argument("--artifacts-dir", default="serve-artifacts",
                       help="crash-bundle directory (default: "
                            "serve-artifacts)")
    p_srv.add_argument("--drain-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="hard-stop the pool (and dump the flight "
                            "recorder) if a drain exceeds this")
    p_srv.add_argument("--chaos-plan", default=None, metavar="SPEC",
                       help="deterministic fault-injection plan, e.g. "
                            "'seed=0,rate=0.05' or "
                            "'seed=7,pool.crash_during=0.2,limit=3' "
                            "(see docs/CHAOS.md)")
    p_srv.set_defaults(func=cmd_serve)

    p_lg = add_command(
        "loadgen", "drive a running server and write BENCH_serve.json"
    )
    p_lg.add_argument("--host", default="127.0.0.1")
    p_lg.add_argument("--port", type=int, default=7411)
    p_lg.add_argument("--concurrency", type=int, default=8,
                      help="concurrent connections (default 8)")
    p_lg.add_argument("--duration", type=float, default=10.0,
                      metavar="SECONDS",
                      help="measured campaign length (default 10)")
    p_lg.add_argument("--requests", type=int, default=None, metavar="N",
                      help="exact request count (overrides --duration)")
    p_lg.add_argument("--programs", nargs="*", default=None,
                      help="workload mix (default: the bench --quick four)")
    p_lg.add_argument("--max-steps", type=int, default=50_000_000)
    p_lg.add_argument("--deadline", type=float, default=30.0,
                      metavar="SECONDS",
                      help="per-request deadline (default 30)")
    p_lg.add_argument("--no-warmup", action="store_true",
                      help="skip the cache-priming pass over the mix")
    p_lg.add_argument("--wait", type=float, default=None, metavar="SECONDS",
                      help="wait up to SECONDS for the server to come up")
    p_lg.add_argument("--drain", action="store_true",
                      help="send a drain request after the campaign")
    p_lg.add_argument("--out", default="BENCH_serve.json",
                      help="output path (default: BENCH_serve.json)")
    p_lg.add_argument("--trace-sample", type=float, default=0.0,
                      metavar="RATE",
                      help="request traces for this fraction of the "
                           "campaign and report per-request latency "
                           "breakdowns (0..1, default 0)")
    p_lg.add_argument("--cold-fraction", type=float, default=0.0,
                      metavar="RATE",
                      help="send this fraction of requests with "
                           "no_cache: true so they bypass the result "
                           "cache and do real compile+execute work "
                           "(0..1, default 0); cold requests are always "
                           "traced when --trace-sample is set")
    p_lg.add_argument("--engine", default="threaded",
                      choices=["threaded", "simple", "tier2"],
                      help="interpreter engine for the mix cells "
                           "(default threaded)")
    p_lg.add_argument("--resilient", action="store_true",
                      help="drive through the ResilientClient: retries "
                           "with backoff, per-host circuit breaker, "
                           "idempotency keys; adds a resilience section "
                           "to BENCH_serve.json")
    p_lg.add_argument("--hedge", action="store_true",
                      help="with --resilient: fire a backup request "
                           "once the primary exceeds the rolling p95")
    p_lg.set_defaults(func=cmd_loadgen)

    p_chaos = add_command(
        "chaos", "deterministic fault-injection campaigns against serve"
    )
    chaos_sub = p_chaos.add_subparsers(dest="chaos_mode", required=True)
    p_soak = chaos_sub.add_parser(
        "soak",
        help="run a seeded soak campaign and assert the invariant "
             "contract; writes CHAOS_REPORT.json",
    )
    p_soak.add_argument("--budget", type=int, default=60, metavar="N",
                        help="number of probes (default 60)")
    p_soak.add_argument("--seed", default="0",
                        help="fault-schedule seed; decimal, or any "
                             "string (e.g. a git SHA) hashed to one")
    p_soak.add_argument("--rate", type=float, default=0.05,
                        help="per-site injection rate (default 0.05)")
    p_soak.add_argument("--sites", nargs="*", default=None,
                        help="sites to enable (default: all)")
    p_soak.add_argument("--workers", type=int, default=2)
    p_soak.add_argument("--deadline", type=float, default=5.0,
                        metavar="SECONDS",
                        help="per-probe deadline (default 5)")
    p_soak.add_argument("--max-steps", type=int, default=2_000_000,
                        help="interpreter fuel per probe cell "
                             "(default 2M: fast but real work)")
    p_soak.add_argument("--artifacts", default=None, metavar="DIR",
                        help="keep crash bundles here (default: temp "
                             "dir, preserved only on failure)")
    p_soak.add_argument("--out", default="CHAOS_REPORT.json",
                        help="report path (default: CHAOS_REPORT.json)")
    p_soak.set_defaults(func=cmd_chaos)

    p_tr = add_command(
        "trace", "inspect an exported span stream (JSONL)"
    )
    p_tr.add_argument("mode",
                      choices=("show", "top", "slow", "critical-path"),
                      help="show: list traces (or one tree with "
                           "--trace-id); top: heaviest spans; slow: "
                           "slowest traces with attribution; "
                           "critical-path: heaviest chain per trace")
    p_tr.add_argument("file",
                      help="span JSONL stream (repro serve --trace-export)")
    p_tr.add_argument("--trace-id", default=None,
                      help="select one trace (id prefix)")
    p_tr.add_argument("--op", default=None,
                      help="only traces for this request op (run, "
                           "suite_cell, compile, explain)")
    p_tr.add_argument("--program", default=None,
                      help="only traces that ran this workload")
    p_tr.add_argument("--pass", dest="span_name", default=None,
                      metavar="NAME",
                      help="top: only spans with this name (e.g. "
                           "promotion, interp.run)")
    p_tr.add_argument("--worker", default=None,
                      help="top: only spans from this worker "
                           "(e.g. serve, w0)")
    p_tr.add_argument("-n", "--limit", type=int, default=10,
                      help="rows / traces to show (default 10)")
    p_tr.set_defaults(func=cmd_trace)

    p_drift = add_command("drift", "gate suite metrics against a baseline")
    p_drift.add_argument("baseline",
                         help="baseline JSON (e.g. benchmarks/baseline.json)")
    p_drift.add_argument("--update", action="store_true",
                         help="rewrite the baseline from this run and exit 0")
    p_drift.add_argument("--tolerance", type=float, default=0.0, metavar="PCT",
                         help="ignore gated drift within this percent (default 0)")
    p_drift.add_argument("--programs", nargs="*", default=None,
                         help="workload subset (baseline is filtered to match)")
    p_drift.add_argument("--jobs", type=int, default=1)
    p_drift.add_argument("--max-steps", type=int, default=50_000_000)
    p_drift.add_argument("--pointer-promotion", action="store_true")
    p_drift.add_argument("--timeout", type=float, default=None)
    p_drift.add_argument("--no-cache", action="store_true",
                         help="always recompute, don't touch the result cache")
    p_drift.add_argument("--cache-dir", default=".repro-cache",
                         help="result cache location (default: .repro-cache)")
    _add_engine_flag(p_drift)
    p_drift.set_defaults(func=cmd_drift)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(-1 if args.quiet else args.verbose)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

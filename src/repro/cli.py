"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run FILE.c``
    Compile with one pipeline variant and execute; print the program's
    output and the dynamic operation counts.
``compare FILE.c``
    Run all four paper variants (Figures 5-7 style) on one file and print
    the comparison table.
``ir FILE.c``
    Print the optimized IL (use ``--no-opt`` for the raw front-end output).
``suite [PROGRAM ...]``
    Regenerate the paper's Figure 5/6/7 rows for the named workloads
    (default: the whole 14-program suite).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .frontend import compile_c
from .interp import MachineOptions, run_module
from .ir.printer import format_module
from .pipeline import (
    Analysis,
    PipelineOptions,
    check_outputs_agree,
    compile_and_run,
    compile_source,
    paper_variants,
)


def _pipeline_options(args: argparse.Namespace) -> PipelineOptions:
    return PipelineOptions(
        analysis=Analysis(args.analysis),
        promotion=not args.no_promotion,
        pointer_promotion=args.pointer_promotion,
    )


def _add_variant_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--analysis",
        choices=[a.value for a in Analysis],
        default="modref",
        help="interprocedural analysis (default: modref)",
    )
    parser.add_argument(
        "--no-promotion", action="store_true", help="disable register promotion"
    )
    parser.add_argument(
        "--pointer-promotion",
        action="store_true",
        help="enable section 3.3 pointer-based promotion",
    )


def cmd_run(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    cell = compile_and_run(
        source,
        _pipeline_options(args),
        name=Path(args.file).stem,
        machine_options=MachineOptions(max_steps=args.max_steps),
    )
    sys.stdout.write(cell.output)
    print(f"[{cell.variant}] {cell.counters}", file=sys.stderr)
    return cell.exit_code


def cmd_compare(args: argparse.Namespace) -> int:
    import json

    from .runner import telemetry

    source = Path(args.file).read_text()
    cells = {}
    trace_groups = {}
    print(f"{'variant':<18} {'total ops':>12} {'loads':>10} {'stores':>10}")
    print("-" * 54)
    for name, options in paper_variants(
        pointer_promotion=args.pointer_promotion
    ).items():
        if args.trace:
            with telemetry.tracing(name) as trace:
                cell = compile_and_run(
                    source,
                    options,
                    name=Path(args.file).stem,
                    machine_options=MachineOptions(max_steps=args.max_steps),
                )
            trace_groups[name] = trace.events
        else:
            cell = compile_and_run(
                source,
                options,
                name=Path(args.file).stem,
                machine_options=MachineOptions(max_steps=args.max_steps),
            )
        cells[name] = cell
        c = cell.counters
        print(f"{name:<18} {c.total_ops:>12} {c.loads:>10} {c.stores:>10}")
    check_outputs_agree(cells)
    if args.json:
        payload = {
            name: {
                "counters": cell.counters.as_dict(),
                "exit_code": cell.exit_code,
            }
            for name, cell in cells.items()
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
    if args.trace:
        telemetry.write_chrome_trace(args.trace, trace_groups)
        print(telemetry.format_span_summary(trace_groups), file=sys.stderr)
    print()
    print("program output (identical across variants):")
    sys.stdout.write(cells["modref/promo"].output)
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    if args.no_opt:
        module = compile_c(source, name=Path(args.file).stem)
    else:
        module = compile_source(
            source, _pipeline_options(args), name=Path(args.file).stem
        ).module
    sys.stdout.write(format_module(module))
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from .harness import METRICS, format_figure
    from .runner import ResultCache, telemetry
    from .runner.report import run_suite_report, write_suite_json
    from .workloads import workload_names

    names = args.programs or workload_names()
    unknown = sorted(set(names) - set(workload_names()))
    if unknown:
        print(f"unknown workloads: {unknown}", file=sys.stderr)
        print(f"available: {workload_names()}", file=sys.stderr)
        return 2

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.clear_cache and cache is not None:
        removed = cache.clear()
        print(f"cache cleared ({removed} cells)", file=sys.stderr)

    def progress(spec, outcome) -> None:
        if outcome.ok:
            status = "cached" if outcome.from_cache else f"{outcome.seconds:.2f}s"
        else:
            status = f"{outcome.kind.upper()}: {outcome.message}"
        print(f"  {spec.workload:<12} {spec.variant:<16} {status}", file=sys.stderr)

    report = run_suite_report(
        names,
        pointer_promotion=args.pointer_promotion,
        max_steps=args.max_steps,
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        collect_trace=bool(args.trace),
        progress=progress,
    )
    for metric in METRICS:
        print(format_figure(report.results, metric))
        print()
    for failure in report.failures:
        print(
            f"FAILED {failure.workload}[{failure.variant}]: {failure.kind} "
            f"after {failure.attempts} attempt(s): {failure.message}",
            file=sys.stderr,
        )
    for problem in report.disagreements:
        print(f"DISAGREEMENT {problem}", file=sys.stderr)
    if cache is not None:
        print(
            f"cache: {report.cache_hits} hits, {report.cache_misses} misses",
            file=sys.stderr,
        )
    print(f"suite: {report.seconds:.2f}s with {report.jobs} job(s)", file=sys.stderr)
    if args.json:
        write_suite_json(args.json, report)
    if args.trace:
        groups = report.trace_groups()
        telemetry.write_chrome_trace(args.trace, groups)
        print(telemetry.format_span_summary(groups), file=sys.stderr)
    return report.exit_code()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Register promotion reproduction (Cooper & Lu, PLDI 1997)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and execute a C file")
    p_run.add_argument("file")
    p_run.add_argument("--max-steps", type=int, default=500_000_000)
    _add_variant_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="run all four paper variants")
    p_cmp.add_argument("file")
    p_cmp.add_argument("--max-steps", type=int, default=500_000_000)
    p_cmp.add_argument("--pointer-promotion", action="store_true")
    p_cmp.add_argument("--json", metavar="FILE",
                       help="write per-variant counters as JSON")
    p_cmp.add_argument("--trace", metavar="FILE",
                       help="write a Chrome-trace JSON of per-pass timings")
    p_cmp.set_defaults(func=cmd_compare)

    p_ir = sub.add_parser("ir", help="print the IL for a C file")
    p_ir.add_argument("file")
    p_ir.add_argument("--no-opt", action="store_true",
                      help="raw front-end output, no analysis/optimization")
    _add_variant_flags(p_ir)
    p_ir.set_defaults(func=cmd_ir)

    p_suite = sub.add_parser("suite", help="regenerate Figure 5/6/7 rows")
    p_suite.add_argument("programs", nargs="*")
    p_suite.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = inline, serial)")
    p_suite.add_argument("--max-steps", type=int, default=50_000_000)
    p_suite.add_argument("--pointer-promotion", action="store_true",
                         help="enable section 3.3 pointer-based promotion")
    p_suite.add_argument("--timeout", type=float, default=None,
                         help="per-cell seconds budget (jobs > 1 only)")
    p_suite.add_argument("--no-cache", action="store_true",
                         help="always recompute, don't touch the result cache")
    p_suite.add_argument("--cache-dir", default=".repro-cache",
                         help="result cache location (default: .repro-cache)")
    p_suite.add_argument("--clear-cache", action="store_true",
                         help="invalidate every cached cell before running")
    p_suite.add_argument("--json", metavar="FILE",
                         help="write the machine-readable suite.json")
    p_suite.add_argument("--trace", metavar="FILE",
                         help="write a Chrome-trace JSON of per-pass timings")
    p_suite.set_defaults(func=cmd_suite)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

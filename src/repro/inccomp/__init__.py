"""Incremental per-function compilation.

``repro.inccomp`` gives the pipeline a content-addressed memory of
optimized function bodies.  A module compile still parses and runs the
interprocedural analyses from scratch (they are a few percent of the
cost and establish the facts the keys are built from); the per-function
optimize-and-allocate phase — the other ~95% — is then served from the
store for every function whose key is unchanged.

* :mod:`~repro.inccomp.keys` — what a function's content address covers
  and why that makes invalidation propagate along call edges.
* :mod:`~repro.inccomp.store` — the ``.repro-cache/fn/`` pickle store.
* :mod:`~repro.inccomp.edits` — controlled one-function source edits for
  benchmarks and differential tests.

See ``docs/INCREMENTAL.md`` for the operational story.
"""

from .edits import EDIT_MARKER, list_functions, mutate_function
from .keys import (
    FN_SCHEMA_VERSION,
    function_digest,
    function_key,
    module_env_digest,
    options_digest,
)
from .store import DEFAULT_FN_CACHE_DIR, FunctionRecord, FunctionStore

__all__ = [
    "DEFAULT_FN_CACHE_DIR",
    "EDIT_MARKER",
    "FN_SCHEMA_VERSION",
    "FunctionRecord",
    "FunctionStore",
    "function_digest",
    "function_key",
    "list_functions",
    "module_env_digest",
    "mutate_function",
    "options_digest",
]

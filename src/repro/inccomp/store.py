"""The on-disk / in-memory store of optimized function bodies.

Layout mirrors the cell cache: ``<root>/<first two hex>/<key>.pkl``,
write-then-rename so concurrent compilations (suite workers, serve
workers sharing one directory) never observe a torn entry.  Payloads are
pickles of :class:`FunctionRecord` — the optimized
:class:`~repro.ir.function.Function` plus everything the pipeline must
replay to stay observably identical to a from-scratch compile: pass
reports, additive pass-stat contributions, and the decision-ledger rows
the function's passes recorded.

``get`` always unpickles from bytes (memoized in memory), so every hit
hands out a *fresh* object graph — a spliced function is never shared
between two modules.  ``root=None`` keeps the store memory-only (the
serve workers' warm memo); ``max_entries`` bounds the memory layer with
FIFO eviction for long fuzz campaigns.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..diag.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..diag.ledger import Decision
    from ..ir.function import Function

__all__ = ["DEFAULT_FN_CACHE_DIR", "FunctionRecord", "FunctionStore"]

DEFAULT_FN_CACHE_DIR = Path(".repro-cache") / "fn"

_log = get_logger(__name__)


@dataclass
class FunctionRecord:
    """One cached compilation of one function."""

    function: "Function"
    promotion: object | None = None
    pointer_promotion: object | None = None
    regalloc: object | None = None
    #: additive metric contributions (``licm.hoisted`` etc.)
    stats: dict[str, float] = field(default_factory=dict)
    #: ledger rows recorded while this function's passes ran (only
    #: populated for ``ledgered=True`` keys)
    decisions: list["Decision"] = field(default_factory=list)
    #: wall seconds the original optimization took (reporting only)
    seconds: float = 0.0


class FunctionStore:
    """Content-addressed store of :class:`FunctionRecord` pickles."""

    def __init__(
        self,
        root: str | Path | None = DEFAULT_FN_CACHE_DIR,
        max_entries: int | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.max_entries = max_entries
        self._memory: dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0

    def __getstate__(self) -> dict:
        # stores travel to pool workers by pickle; the in-memory memo is
        # a per-process warm layer and would be dead weight on the wire
        state = self.__dict__.copy()
        state["_memory"] = {}
        return state

    def path_for(self, key: str) -> Path:
        if self.root is None:
            raise ValueError("memory-only store has no paths")
        return self.root / key[:2] / f"{key}.pkl"

    def _remember(self, key: str, blob: bytes) -> None:
        if self.max_entries is not None and key not in self._memory:
            while len(self._memory) >= self.max_entries:
                self._memory.pop(next(iter(self._memory)))
        self._memory[key] = blob

    def get(self, key: str) -> FunctionRecord | None:
        blob = self._memory.get(key)
        if blob is None and self.root is not None:
            try:
                blob = self.path_for(key).read_bytes()
            except OSError:
                blob = None
            if blob is not None:
                self._remember(key, blob)
        if blob is None:
            self.misses += 1
            return None
        try:
            record = pickle.loads(blob)
        except Exception as error:  # corrupt entry: treat as a miss
            _log.warning("dropping corrupt fn-cache entry %s: %s", key, error)
            self._memory.pop(key, None)
            if self.root is not None:
                self.path_for(key).unlink(missing_ok=True)
            self.misses += 1
            return None
        if not isinstance(record, FunctionRecord):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: FunctionRecord) -> None:
        blob = pickle.dumps(record)
        self._remember(key, blob)
        if self.root is None:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{id(self)}")
        tmp.write_bytes(blob)
        tmp.replace(path)

    def clear(self) -> int:
        """Remove every entry (memory and disk); returns the disk count."""
        self._memory.clear()
        removed = 0
        if self.root is None or not self.root.exists():
            return removed
        for path in self.root.rglob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if self.root is None:
            return len(self._memory)
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))

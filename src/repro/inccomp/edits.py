"""Textual single-function edits over C sources.

The compile benchmark and the differential tests need a *controlled*
edit: touch exactly one function, leave every other byte of the program
alone.  The C subset the workloads use keeps every function definition
on one line (``type name(args) {``), so a line-anchored pattern is
enough to find the insertion point reliably.

The injected statement declares and uses a dead local whose address is
never taken: it perturbs the function's lowered IR (so its cache key
changes) without creating a tag, changing any MOD/REF summary, or
surviving dead-code elimination — the canonical "recompile only me"
edit.  Callers that need summary-changing edits write them by hand.
"""

from __future__ import annotations

import re

__all__ = ["EDIT_MARKER", "list_functions", "mutate_function"]

#: the dead statement spliced into the edited function
EDIT_MARKER = "int __inc_edit = 40; __inc_edit = __inc_edit + 2;"

_DEF_RE = re.compile(
    r"^\s*(?:static\s+)?"
    r"(?:int|long|double|void|char|unsigned)[\w\s\*]*?"
    r"\b(?P<name>\w+)\s*\([^;]*\)\s*\{\s*$"
)


def list_functions(source: str) -> list[str]:
    """Names of all functions defined in ``source``, in order."""
    return [
        m.group("name")
        for line in source.splitlines()
        if (m := _DEF_RE.match(line)) is not None
    ]


def mutate_function(source: str, name: str | None = None) -> tuple[str, str]:
    """Insert a dead statement at the top of one function.

    Picks the first non-``main`` function when ``name`` is omitted (so
    the edit has callers to *not* invalidate).  Returns ``(new_source,
    edited_function_name)``.
    """
    names = list_functions(source)
    if not names:
        raise ValueError("no function definitions found")
    if name is None:
        name = next((n for n in names if n != "main"), names[0])
    elif name not in names:
        raise ValueError(f"no function named {name}; have {names}")
    out: list[str] = []
    edited = False
    for line in source.splitlines(keepends=True):
        out.append(line)
        if edited:
            continue
        m = _DEF_RE.match(line.rstrip("\n"))
        if m is not None and m.group("name") == name:
            out.append(f"    {EDIT_MARKER}\n")
            edited = True
    if not edited:
        raise ValueError(f"definition of {name} not found")
    return "".join(out), name

"""The compile-time benchmark: from-scratch vs incremental vs warm.

``repro bench --compile`` measures, for every workload in the suite,
four compilations of the same program under one pipeline configuration:

* **scratch** — no function store at all: the full pre-inccomp cost.
* **cold** — an empty store: scratch work plus key computation and
  entry writes (the overhead side of the trade).
* **incremental** — exactly one function edited (a dead-local insertion
  via :func:`~repro.inccomp.edits.mutate_function`), recompiled against
  the populated store: parse + analysis + one function optimized, the
  rest spliced from cache.  This is the scenario the CI gate holds to a
  ≥2× speedup over scratch.
* **warm** — the unchanged source recompiled: every function hits.

Each incremental compile is also checked byte-identical (printed IR)
against a from-scratch compile of the same edited source, so the bench
cannot report a speedup from a wrong answer; ``identical`` lands in the
payload and the gate requires it.
"""

from __future__ import annotations

import tempfile
from time import perf_counter

from ..ir.printer import format_module
from .edits import mutate_function
from .store import FunctionStore

__all__ = ["bench_compile", "check_compile_gate", "format_compile_bench"]

BENCH_SCHEMA = 1


def _compile(source, options, name, defines, fn_store=None):
    from ..pipeline import compile_source

    started = perf_counter()
    result = compile_source(
        source, options, name=name, defines=defines or None, fn_store=fn_store
    )
    return result, perf_counter() - started


def bench_compile(
    names: list[str] | None = None,
    options=None,
    store_root: str | None = None,
) -> dict:
    """Run the four-scenario compile benchmark over the workload suite.

    ``store_root=None`` uses a throwaway temporary directory so benching
    never warms (or is warmed by) the real ``.repro-cache/fn``.
    """
    from ..pipeline import PipelineOptions
    from ..workloads import all_workloads, get_workload

    options = options or PipelineOptions()
    workloads = (
        [get_workload(name) for name in names]
        if names is not None
        else all_workloads()
    )
    cleanup = None
    if store_root is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-bench-fn-")
        store_root = cleanup.name

    programs = []
    totals = {"scratch_s": 0.0, "cold_s": 0.0, "incremental_s": 0.0, "warm_s": 0.0}
    try:
        for wl in workloads:
            store = FunctionStore(root=store_root)
            scratch, scratch_s = _compile(wl.source, options, wl.name, wl.defines)
            _, cold_s = _compile(
                wl.source, options, wl.name, wl.defines, fn_store=store
            )
            _, warm_s = _compile(
                wl.source, options, wl.name, wl.defines, fn_store=store
            )
            edited_source, edited_fn = mutate_function(wl.source)
            hits_before, misses_before = store.hits, store.misses
            inc, incremental_s = _compile(
                edited_source, options, wl.name, wl.defines, fn_store=store
            )
            edited_scratch, _ = _compile(
                edited_source, options, wl.name, wl.defines
            )
            identical = format_module(inc.module) == format_module(
                edited_scratch.module
            )
            row = {
                "name": wl.name,
                "functions": len(inc.module.functions),
                "edited_function": edited_fn,
                "scratch_s": round(scratch_s, 6),
                "cold_s": round(cold_s, 6),
                "incremental_s": round(incremental_s, 6),
                "warm_s": round(warm_s, 6),
                "incremental_hits": store.hits - hits_before,
                "incremental_misses": store.misses - misses_before,
                "identical": identical,
            }
            programs.append(row)
            totals["scratch_s"] += scratch_s
            totals["cold_s"] += cold_s
            totals["incremental_s"] += incremental_s
            totals["warm_s"] += warm_s
            del scratch, inc, edited_scratch
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    def ratio(num: float, den: float) -> float:
        return round(num / den, 3) if den > 0 else 0.0

    return {
        "schema": BENCH_SCHEMA,
        "variant": options.variant_name(),
        "programs": programs,
        "totals": {k: round(v, 6) for k, v in totals.items()},
        "speedup": {
            "incremental": ratio(totals["scratch_s"], totals["incremental_s"]),
            "warm": ratio(totals["scratch_s"], totals["warm_s"]),
            "cold_overhead": ratio(totals["cold_s"], totals["scratch_s"]),
        },
        "all_identical": all(p["identical"] for p in programs),
    }


def format_compile_bench(payload: dict) -> str:
    """Human-readable table of the benchmark payload."""
    lines = [
        f"compile bench [{payload['variant']}] — seconds per compile",
        f"{'program':<12} {'fns':>4} {'scratch':>9} {'cold':>9} "
        f"{'incr':>9} {'warm':>9} {'hit/miss':>9} ident",
    ]
    for p in payload["programs"]:
        lines.append(
            f"{p['name']:<12} {p['functions']:>4} {p['scratch_s']:>9.4f} "
            f"{p['cold_s']:>9.4f} {p['incremental_s']:>9.4f} "
            f"{p['warm_s']:>9.4f} "
            f"{p['incremental_hits']:>4}/{p['incremental_misses']:<4} "
            f"{'yes' if p['identical'] else 'NO'}"
        )
    t, s = payload["totals"], payload["speedup"]
    lines.append(
        f"{'TOTAL':<12} {'':>4} {t['scratch_s']:>9.4f} {t['cold_s']:>9.4f} "
        f"{t['incremental_s']:>9.4f} {t['warm_s']:>9.4f}"
    )
    lines.append(
        f"speedup vs scratch: incremental {s['incremental']:g}x, "
        f"warm {s['warm']:g}x; cold overhead {s['cold_overhead']:g}x"
    )
    return "\n".join(lines)


def check_compile_gate(payload: dict, min_speedup: float = 2.0) -> list[str]:
    """The CI gate: incremental must beat scratch and stay correct."""
    problems = []
    if not payload.get("all_identical", False):
        broken = [
            p["name"] for p in payload.get("programs", []) if not p["identical"]
        ]
        problems.append(
            f"incremental IR differs from scratch for: {', '.join(broken)}"
        )
    speedup = payload.get("speedup", {}).get("incremental", 0.0)
    if speedup < min_speedup:
        problems.append(
            f"one-function-edit speedup {speedup:g}x is below the "
            f"{min_speedup:g}x floor"
        )
    return problems

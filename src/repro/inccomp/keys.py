"""Content addresses for per-function compilation.

A function's optimized body is determined by exactly four inputs, and the
key is a SHA-256 over all of them:

1. **The function itself, after interprocedural analysis.**  The printed
   post-analysis IR embeds every interprocedural fact the optimizer will
   consume: pointer-op tag sets carry the points-to fragments, and every
   call site prints its callee's MOD/REF summary (``mod=... ref=...``).
   This is what makes invalidation propagate *upward automatically*: when
   an edit changes a callee's MOD/REF summary, every transitive caller's
   call sites print differently, so their keys change — while an edit
   that leaves the summary intact leaves all callers cached.  A few
   semantically relevant fields do not print (frame-slot sizes, call
   site ids, the fresh-register counter); :func:`function_digest` folds
   them in explicitly.
2. **The module data environment** (:func:`module_env_digest`): globals
   with initializers, string literals, heap site tags, the address-taken
   set, addressed functions, and every function's local-tag attributes —
   the universe register promotion materializes ambiguity against.
3. **The pipeline options**, via the same canonical JSON encoding the
   cell cache uses.
4. **The compiler's own source fingerprint**, so editing any pass
   invalidates every cached body.

Compilations running under a decision ledger additionally key on
``ledgered=True``: they observe (and must replay) per-pass decisions, so
they get their own namespace rather than polluting plain compiles.
"""

from __future__ import annotations

import hashlib
import json

from ..ir.function import Function
from ..ir.instructions import Call
from ..ir.module import Module
from ..ir.printer import format_function
from ..runner.cache import _jsonable, code_fingerprint

__all__ = [
    "FN_SCHEMA_VERSION",
    "function_digest",
    "function_key",
    "module_env_digest",
    "options_digest",
]

#: bump when the stored :class:`~repro.inccomp.store.FunctionRecord`
#: payload or the meaning of any key component changes
FN_SCHEMA_VERSION = 1


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _tag_attrs(tag) -> list:
    return [tag.name, tag.kind.value, tag.is_scalar, tag.owner]


def options_digest(options) -> str:
    """Canonical digest of a :class:`~repro.pipeline.PipelineOptions`."""
    return _sha256(_canonical(_jsonable(options)))


def module_env_digest(module: Module) -> str:
    """Digest of everything outside function bodies that optimization of
    any single function may observe.

    Computed on the *post-analysis* module so lazily materialized heap
    tags are included.  Deliberately excludes the module name: identical
    functions in identically shaped programs share cache entries.
    """
    env = {
        "globals": [
            [
                var.name,
                var.tag.kind.value,
                var.tag.is_scalar,
                var.size,
                var.elem_size,
                sorted((str(k), v) for k, v in var.init.items()),
                var.is_const,
            ]
            for var in sorted(module.globals.values(), key=lambda v: v.name)
        ],
        "strings": sorted(
            [lit.tag.name, lit.text] for lit in module.strings.values()
        ),
        "heap": sorted(
            [site, _tag_attrs(tag)] for site, tag in module.heap_tags.items()
        ),
        "address_taken": sorted(t.name for t in module.address_taken),
        "addressed_functions": sorted(module.addressed_functions),
        "locals": [
            [func.name, [_tag_attrs(t) for t in func.local_tags]]
            for func in sorted(module.functions.values(), key=lambda f: f.name)
        ],
    }
    return _sha256(_canonical(env))


def function_digest(func: Function) -> str:
    """Digest of one function's post-analysis form.

    The printed IR carries the instruction stream, tag sets, and call
    MOD/REF summaries; the supplement covers fields the printer omits
    but that change either the optimizer's output (fresh-name counters)
    or the produced body's runtime meaning (frame sizes, heap site ids).
    """
    supplement = {
        "local_tag_sizes": sorted(func.local_tag_sizes.items()),
        "local_tag_attrs": [_tag_attrs(t) for t in func.local_tags],
        "site_ids": [
            instr.site_id
            for instr in func.instructions()
            if isinstance(instr, Call)
        ],
        "next_vreg": func._next_vreg,
        "next_label": func._next_label,
    }
    return _sha256(format_function(func) + "\0" + _canonical(supplement))


def function_key(
    fn_digest: str,
    env_digest: str,
    opts_digest: str,
    ledgered: bool,
) -> str:
    """The content address of one function's optimized body."""
    return _sha256(
        _canonical(
            {
                "schema": FN_SCHEMA_VERSION,
                "code": code_fingerprint(),
                "fn": fn_digest,
                "env": env_digest,
                "options": opts_digest,
                "ledgered": ledgered,
            }
        )
    )

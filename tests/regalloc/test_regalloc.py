"""Tests for interference graphs, coalescing, coloring, and spilling."""

from repro.analysis.liveness import compute_liveness
from repro.frontend import compile_c
from repro.interp import run_module
from repro.ir import Function, IRBuilder, Mov, ScalarLoad, ScalarStore
from repro.regalloc import (
    RegAllocOptions,
    allocate_function,
    allocate_module,
    build_interference,
)
from tests.helpers import run_c


def count(func, cls):
    return sum(1 for i in func.instructions() if isinstance(i, cls))


class TestInterference:
    def test_simultaneously_live_interfere(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        a = b.loadi(1)
        c = b.loadi(2)
        total = b.add(a, c)   # a and c live together
        b.ret(total)
        graph = build_interference(func, compute_liveness(func))
        assert graph.interferes(a.id, c.id)

    def test_disjoint_ranges_do_not_interfere(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        a = b.loadi(1)
        doubled = b.add(a, a)      # a dies here
        c = b.loadi(2)             # c born after
        total = b.add(doubled, c)
        b.ret(total)
        graph = build_interference(func, compute_liveness(func))
        assert not graph.interferes(a.id, c.id)

    def test_copy_source_excluded(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        a = b.loadi(1)
        copy = b.mov(a)
        total = b.add(copy, copy)
        b.ret(total)
        graph = build_interference(func, compute_liveness(func))
        # mov dst and src do not interfere through the copy itself
        assert not graph.interferes(a.id, copy.id)

    def test_merge_folds_node(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        a = b.loadi(1)
        c = b.loadi(2)
        d = b.loadi(3)
        t1 = b.add(a, c)
        t2 = b.add(t1, d)
        b.ret(t2)
        graph = build_interference(func, compute_liveness(func))
        before_neighbors = set(graph.adjacency[a.id]) | set(graph.adjacency[c.id])
        graph.merge(a.id, c.id)
        assert c.id not in graph.adjacency
        assert graph.adjacency[a.id] >= before_neighbors - {a.id, c.id}


class TestCoalescing:
    def test_promotion_style_copies_disappear(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        a = b.loadi(5)
        copy = b.mov(a)             # coalescable
        total = b.add(copy, copy)
        b.ret(total)
        report = allocate_function(func)
        assert report.copies_coalesced >= 1
        assert count(func, Mov) == 0

    def test_interfering_copy_survives(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        a = b.loadi(5)
        copy = b.mov(a)
        bumped = b.add(a, copy)   # both live here -> interfere? no: copy
        a2 = b.add(a, a)          # a still live after the copy
        total = b.add(bumped, a2)
        b.ret(total)
        expected_before = _run_func_as_main(func)
        allocate_function(func)
        assert _run_func_as_main(func) == expected_before

    def test_end_to_end_copy_counts_drop(self):
        src = r"""
        int g;
        int main(void) {
            int i;
            for (i = 0; i < 50; i++) { g += i; }
            printf("%d\n", g);
            return 0;
        }
        """
        from repro.pipeline import PipelineOptions, compile_and_run
        from dataclasses import replace

        base = PipelineOptions()
        no_coalesce = replace(
            base, regalloc=RegAllocOptions(coalesce=False)
        )
        with_coalesce = replace(base, regalloc=RegAllocOptions(coalesce=True))
        cell_no = compile_and_run(src, no_coalesce)
        cell_yes = compile_and_run(src, with_coalesce)
        assert cell_no.output == cell_yes.output
        assert cell_yes.counters.copies <= cell_no.counters.copies


class TestSpilling:
    def make_pressure_function(self, width: int) -> Function:
        """width values all live simultaneously, then summed."""
        func = Function("p")
        b = IRBuilder(func)
        b.start_block()
        base = b.sload(__import__("repro.ir", fromlist=["Tag"]).Tag(
            "seed", __import__("repro.ir", fromlist=["TagKind"]).TagKind.GLOBAL
        ))
        values = []
        for i in range(width):
            k = b.loadi(i + 1)
            values.append(b.mul(base, k))  # depends on base: not remat-able
        total = values[0]
        for value in values[1:]:
            total = b.add(total, value)
        b.ret(total)
        return func

    def test_no_spill_when_fits(self):
        func = self.make_pressure_function(8)
        report = allocate_function(func, RegAllocOptions(num_registers=32))
        assert report.spilled_registers == []
        assert report.colors_used <= 32

    def test_spills_when_pressure_exceeds_k(self):
        func = self.make_pressure_function(24)
        report = allocate_function(func, RegAllocOptions(num_registers=8))
        assert report.spilled_registers
        assert count(func, ScalarStore) > 0   # spill code present
        assert count(func, ScalarLoad) > 1

    def test_spill_preserves_semantics(self):
        src = r"""
        int main(void) {
            int a0; int a1; int a2; int a3; int a4; int a5;
            int a6; int a7; int a8; int a9; int a10; int a11;
            a0 = 1; a1 = 2; a2 = 3; a3 = 4; a4 = 5; a5 = 6;
            a6 = 7; a7 = 8; a8 = 9; a9 = 10; a10 = 11; a11 = 12;
            printf("%d\n", a0+a1+a2+a3+a4+a5+a6+a7+a8+a9+a10+a11);
            return 0;
        }
        """
        from repro.pipeline import PipelineOptions, compile_and_run

        tight = PipelineOptions(regalloc=RegAllocOptions(num_registers=4))
        cell = compile_and_run(src, tight)
        assert cell.output == "78\n"

    def test_constants_rematerialized_not_spilled(self):
        """Spilled constant-valued registers are re-issued as loadi, not
        stored to memory."""
        src = r"""
        int total;
        int main(void) {
            int i;
            for (i = 0; i < 30; i++) {
                total += i * 7 + i / 3 + (i << 2) + (i & 5) + i % 11;
            }
            printf("%d\n", total);
            return 0;
        }
        """
        from repro.pipeline import PipelineOptions, compile_and_run

        expected = run_c(src).output
        tight = PipelineOptions(regalloc=RegAllocOptions(num_registers=6))
        cell = compile_and_run(src, tight)
        assert cell.output == expected


def _run_func_as_main(func: Function):
    from repro.ir import Module
    from repro.ir.tags import Tag, TagKind
    from repro.ir.module import GlobalVar
    import copy

    module = Module()
    clone = Function(func.name)
    clone.entry = func.entry
    for label, block in func.blocks.items():
        new = clone.new_block(label=label)
        new.instrs = [i.copy() for i in block.instrs]
    clone.entry = func.entry
    clone.name = "main"
    module.functions["main"] = clone
    return run_module(module).exit_code

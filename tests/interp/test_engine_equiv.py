"""Differential oracle: every engine vs the reference loop.

The engine contract is *bit-identical observables* — counters (every
field), output, exit code, ``block_visits`` under profiling, ``clock()``
values, traps, and the exact operation count at which ``max_steps``
exhaustion fires.  The block-threaded engine must satisfy it through
batching; the tier-2 specializing engine must satisfy it through exact
deoptimization of its compiled regions.  These tests enforce the
contract over the whole 14-program benchmark suite at -O0 and through
the full pipeline, plus targeted boundary cases the suite cannot hit
(including the tier-2 deopt edges: ``max_steps`` expiring mid-region,
traps inside promoted regions, and cache invalidation between runs).
"""

from __future__ import annotations

import copy
import pickle
import sys

import pytest

from repro.errors import InterpError, InterpTrap, ResourceLimitError
from repro.interp import Machine, MachineOptions, invalidate_decoded
from repro.ir.instructions import LoadI
from repro.pipeline import Analysis, PipelineOptions, compile_source
from repro.workloads import get_workload, workload_names

O0 = PipelineOptions(
    analysis=Analysis.NONE,
    promotion=False,
    pointer_promotion=False,
    value_numbering=False,
    constant_propagation=False,
    licm=False,
    pre=False,
    dce=False,
    clean=False,
    run_regalloc=False,
)
FULL = PipelineOptions()

PIPELINES = {"O0": O0, "full": FULL}

#: engines held to the bit-identical contract against "simple"
ENGINES = ("simple", "threaded", "tier2")


def _module(workload, options):
    return compile_source(
        workload.source, options, name=workload.name, defines=workload.defines
    ).module


def _run(module, engine, **kwargs):
    options = MachineOptions(engine=engine, profile=True, **kwargs)
    return Machine(module, options).run()


def _assert_identical(simple, threaded, context):
    assert simple.counters.as_dict() == threaded.counters.as_dict(), context
    assert simple.output == threaded.output, context
    assert simple.exit_code == threaded.exit_code, context
    assert simple.returned == threaded.returned, context
    assert simple.block_visits == threaded.block_visits, context


#: suite programs whose full-equivalence sweep dominates tier-1 wall
#: time (three engines x two runs each); they run in CI and under
#: plain `pytest`, but `-m "not slow"` skips them for the fast lane,
#: which keeps allroots/dhrystone/fft/mlink as its equivalence smoke
SLOW_WORKLOADS = frozenset(
    {
        "bc",
        "bison",
        "clean",
        "compress",
        "go",
        "gzip_enc",
        "gzip_dec",
        "indent",
        "tsp",
        "water",
    }
)


@pytest.mark.parametrize(
    "name",
    [
        pytest.param(n, marks=pytest.mark.slow) if n in SLOW_WORKLOADS else n
        for n in workload_names()
    ],
)
@pytest.mark.parametrize("pipeline", list(PIPELINES))
def test_workload_observables_identical(name, pipeline):
    workload = get_workload(name)
    options = PIPELINES[pipeline]
    simple = _run(_module(workload, options), "simple")
    for engine in ("threaded", "tier2"):
        module = _module(workload, options)
        run = _run(module, engine)
        _assert_identical(simple, run, f"{name}/{pipeline}/{engine}")
        # a second run on the same module exercises the warm caches (the
        # threaded decode cache / the tier-2 compiled-region cache)
        rerun = _run(module, engine)
        _assert_identical(run, rerun, f"{name}/{pipeline}/{engine} warm")


class TestMaxStepsExhaustion:
    """The limit fires at the same op count, with the same message, and
    leaves the counters in the same state under both engines."""

    def _modules(self):
        workload = get_workload("fft")
        return lambda: _module(workload, FULL)

    @pytest.mark.slow
    def test_limit_boundary(self):
        fresh = self._modules()
        total = _run(fresh(), "threaded").counters.total_ops
        for engine in ENGINES:
            # exactly enough steps: completes
            run = _run(fresh(), engine, max_steps=total)
            assert run.counters.total_ops == total
            # one short (and much shorter): raises
            for limit in (total - 1, total // 2, 1):
                machine = Machine(
                    fresh(), MachineOptions(engine=engine, max_steps=limit)
                )
                with pytest.raises(ResourceLimitError) as exc:
                    machine.run()
                assert str(exc.value) == (
                    f"exceeded {limit} executed operations"
                )
                if engine == "simple":
                    states = getattr(self, "_states", {})
                    states[limit] = machine.counters.as_dict()
                    self._states = states
                else:
                    assert machine.counters.as_dict() == self._states[limit]


def test_clock_values_identical():
    source = r"""
    int main(void) {
        int t0 = clock();
        int i; int s = 0;
        for (i = 0; i < 100; i = i + 1) { s = s + i; }
        int t1 = clock();
        printf("c0=%d c1=%d s=%d\n", t0, t1, s);
        return 0;
    }
    """
    outputs = set()
    for engine in ENGINES:
        module = compile_source(source, FULL).module
        outputs.add(_run(module, engine).output)
    assert len(outputs) == 1


def test_trap_identical():
    source = 'int main(void) { int a = 7; int b = 0; printf("%d", a / b); return 0; }'
    messages = set()
    for engine in ENGINES:
        module = compile_source(source, FULL).module
        with pytest.raises(InterpTrap) as exc:
            _run(module, engine)
        messages.add(str(exc.value))
    assert messages == {"integer division by zero"}


def test_deep_recursion_limit_identical():
    source = r"""
    int f(int n) { if (n == 0) { return 0; } return f(n - 1); }
    int main(void) { return f(5000); }
    """
    messages = set()
    for engine in ENGINES:
        module = compile_source(source, O0).module
        with pytest.raises(ResourceLimitError) as exc:
            _run(module, engine)
        messages.add(str(exc.value))
    assert messages == {"interpreted call stack too deep"}


def test_unknown_engine_rejected():
    module = compile_source("int main(void) { return 0; }", O0).module
    with pytest.raises(InterpError, match="unknown interpreter engine"):
        Machine(module, MachineOptions(engine="jit")).run()


class TestDecodeCache:
    def test_cache_lives_on_module_and_pickles_away(self):
        module = compile_source("int main(void) { return 3; }", O0).module
        _run(module, "threaded")
        assert hasattr(module, "_decoded")
        clone = pickle.loads(pickle.dumps(module))
        assert not hasattr(clone, "_decoded")
        assert _run(clone, "threaded").exit_code == 3
        deep = copy.deepcopy(module)
        assert not hasattr(deep, "_decoded")
        assert _run(deep, "threaded").exit_code == 3

    def test_invalidate_decoded(self):
        module = compile_source("int main(void) { return 3; }", O0).module
        _run(module, "threaded")
        invalidate_decoded(module)
        assert not hasattr(module, "_decoded")
        assert _run(module, "threaded").exit_code == 3
        invalidate_decoded(module)  # idempotent on a cold module

    def test_instruction_replacement_invalidates(self):
        # passes rewrite programs by splicing in new instruction objects;
        # the staleness signature must notice and re-decode
        module = compile_source(
            'int main(void) { printf("%d\\n", 7); return 0; }', O0
        ).module
        assert _run(module, "threaded").output == "7\n"
        for func in module.functions.values():
            for block in func.blocks.values():
                block.instrs = [
                    LoadI(i.dst, 8)
                    if isinstance(i, LoadI) and i.value == 7
                    else i
                    for i in block.instrs
                ]
        assert _run(module, "threaded").output == "8\n"


def _tier2_compiled(module) -> bool:
    """Did the tier-2 engine compile at least one region on ``module``?"""
    dm = module.__dict__.get("_tier2")
    if dm is None:
        return False
    return any(
        tf.regions or tf.fresh_off is not None or tf.fresh_on is not None
        for tf in dm.functions.values()
    )


#: a hot callee (fresh-entry region) plus a hot caller loop — both cross
#: the tier-2 threshold well before the program's midpoint
HOT_SOURCE = r"""
int g;
int work(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + i; g = g + 1; }
    return s;
}
int main(void) {
    int r = 0; int k;
    for (k = 0; k < 40; k = k + 1) { r = r + work(50); }
    printf("r=%d g=%d\n", r, g);
    return 0;
}
"""


class TestTier2Deopt:
    """The tier-2 exactness contract at its deoptimization edges: the
    engine must leave *identical* observables when a compiled region is
    interrupted (fuel exhaustion, traps) or its cache is torn down
    (invalidation, pickling) — not merely on clean completions."""

    def test_max_steps_expires_mid_region_with_identical_counters(self):
        module = compile_source(HOT_SOURCE, FULL).module
        total = _run(module, "tier2").counters.total_ops
        assert _tier2_compiled(module)
        for limit in (total // 2, 2 * total // 3, total - 1):
            reference = None
            for engine in ENGINES:
                fresh = compile_source(HOT_SOURCE, FULL).module
                machine = Machine(
                    fresh, MachineOptions(engine=engine, max_steps=limit)
                )
                with pytest.raises(ResourceLimitError) as exc:
                    machine.run()
                assert str(exc.value) == (
                    f"exceeded {limit} executed operations"
                )
                if engine == "tier2":
                    # the limit really interrupted compiled code, not a
                    # cold fallback path
                    assert _tier2_compiled(fresh)
                state = machine.counters.as_dict()
                if reference is None:
                    reference = state
                else:
                    assert state == reference, (engine, limit)

    def test_trap_inside_promoted_region_flushes_state(self):
        # the loop-local `s` and the induction variable are promoted to
        # Python locals; the division traps on iteration 50, long after
        # the region compiled at the hot threshold, so the deopt path
        # must write the slots and counter deltas back before the trap
        # surfaces
        source = r"""
        int main(void) {
            int i; int s = 0;
            for (i = 0; i < 100; i = i + 1) {
                s = s + 1000 / (50 - i);
            }
            printf("s=%d\n", s);
            return 0;
        }
        """
        states = {}
        for engine in ENGINES:
            module = compile_source(source, FULL).module
            machine = Machine(module, MachineOptions(engine=engine))
            with pytest.raises(InterpTrap) as exc:
                machine.run()
            assert str(exc.value) == "integer division by zero"
            if engine == "tier2":
                assert _tier2_compiled(module)
            states[engine] = machine.counters.as_dict()
        # post-trap counters follow the threaded engine's batch-charging
        # semantics (a block's ops are counted before it executes), which
        # the reference loop does not share; the tier-2 contract is that
        # its except-path flush lands on *exactly* the threaded state —
        # promoted slots and counter deltas written back, nothing lost
        assert states["tier2"] == states["threaded"]

    def test_recursion_into_invalidated_region_recompiles(self):
        # fib's whole body is an entry-headed candidate region; after
        # invalidation the next run re-enters it through cold probes
        # (recursively) and must recompile to the same observables
        source = r"""
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) { printf("%d\n", fib(15)); return 0; }
        """
        simple = _run(compile_source(source, FULL).module, "simple")
        module = compile_source(source, FULL).module
        first = _run(module, "tier2")
        _assert_identical(simple, first, "tier2 first run")
        assert _tier2_compiled(module)
        invalidate_decoded(module)
        assert not hasattr(module, "_tier2")
        again = _run(module, "tier2")
        _assert_identical(simple, again, "tier2 after invalidation")
        assert _tier2_compiled(module)

    def test_pickle_and_deepcopy_strip_compiled_regions(self):
        module = compile_source(HOT_SOURCE, FULL).module
        reference = _run(module, "tier2")
        assert _tier2_compiled(module)
        clone = pickle.loads(pickle.dumps(module))
        assert not hasattr(clone, "_tier2")
        _assert_identical(reference, _run(clone, "tier2"), "pickle clone")
        deep = copy.deepcopy(module)
        assert not hasattr(deep, "_tier2")
        _assert_identical(reference, _run(deep, "tier2"), "deepcopy clone")


def test_recursion_limit_restored_after_run():
    old = sys.getrecursionlimit()
    module = compile_source("int main(void) { return 0; }", O0).module
    for engine in ENGINES:
        Machine(module, MachineOptions(engine=engine)).run()
        assert sys.getrecursionlimit() == old

    # restored even when the run raises
    trap = compile_source(
        "int main(void) { int z = 0; return 1 / z; }", O0
    ).module
    with pytest.raises(InterpTrap):
        Machine(trap, MachineOptions(engine="threaded")).run()
    assert sys.getrecursionlimit() == old

"""Differential oracle: block-threaded engine vs the reference loop.

The threaded engine's contract is *bit-identical observables* — counters
(every field), output, exit code, ``block_visits`` under profiling,
``clock()`` values, traps, and the exact operation count at which
``max_steps`` exhaustion fires.  These tests enforce the contract over
the whole 14-program benchmark suite at -O0 and through the full
pipeline, plus targeted boundary cases the suite cannot hit.
"""

from __future__ import annotations

import copy
import pickle
import sys

import pytest

from repro.errors import InterpError, InterpTrap, ResourceLimitError
from repro.interp import Machine, MachineOptions, invalidate_decoded
from repro.ir.instructions import LoadI
from repro.pipeline import Analysis, PipelineOptions, compile_source
from repro.workloads import get_workload, workload_names

O0 = PipelineOptions(
    analysis=Analysis.NONE,
    promotion=False,
    pointer_promotion=False,
    value_numbering=False,
    constant_propagation=False,
    licm=False,
    pre=False,
    dce=False,
    clean=False,
    run_regalloc=False,
)
FULL = PipelineOptions()

PIPELINES = {"O0": O0, "full": FULL}


def _module(workload, options):
    return compile_source(
        workload.source, options, name=workload.name, defines=workload.defines
    ).module


def _run(module, engine, **kwargs):
    options = MachineOptions(engine=engine, profile=True, **kwargs)
    return Machine(module, options).run()


def _assert_identical(simple, threaded, context):
    assert simple.counters.as_dict() == threaded.counters.as_dict(), context
    assert simple.output == threaded.output, context
    assert simple.exit_code == threaded.exit_code, context
    assert simple.returned == threaded.returned, context
    assert simple.block_visits == threaded.block_visits, context


@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("pipeline", list(PIPELINES))
def test_workload_observables_identical(name, pipeline):
    workload = get_workload(name)
    options = PIPELINES[pipeline]
    simple = _run(_module(workload, options), "simple")
    module = _module(workload, options)
    threaded = _run(module, "threaded")
    _assert_identical(simple, threaded, f"{name}/{pipeline}")
    # a second run on the same module exercises the warm decode cache
    rerun = _run(module, "threaded")
    _assert_identical(threaded, rerun, f"{name}/{pipeline} warm rerun")


class TestMaxStepsExhaustion:
    """The limit fires at the same op count, with the same message, and
    leaves the counters in the same state under both engines."""

    def _modules(self):
        workload = get_workload("fft")
        return lambda: _module(workload, FULL)

    def test_limit_boundary(self):
        fresh = self._modules()
        total = _run(fresh(), "threaded").counters.total_ops
        for engine in ("simple", "threaded"):
            # exactly enough steps: completes
            run = _run(fresh(), engine, max_steps=total)
            assert run.counters.total_ops == total
            # one short (and much shorter): raises
            for limit in (total - 1, total // 2, 1):
                machine = Machine(
                    fresh(), MachineOptions(engine=engine, max_steps=limit)
                )
                with pytest.raises(ResourceLimitError) as exc:
                    machine.run()
                assert str(exc.value) == (
                    f"exceeded {limit} executed operations"
                )
                if engine == "simple":
                    states = getattr(self, "_states", {})
                    states[limit] = machine.counters.as_dict()
                    self._states = states
                else:
                    assert machine.counters.as_dict() == self._states[limit]


def test_clock_values_identical():
    source = r"""
    int main(void) {
        int t0 = clock();
        int i; int s = 0;
        for (i = 0; i < 100; i = i + 1) { s = s + i; }
        int t1 = clock();
        printf("c0=%d c1=%d s=%d\n", t0, t1, s);
        return 0;
    }
    """
    outputs = set()
    for engine in ("simple", "threaded"):
        module = compile_source(source, FULL).module
        outputs.add(_run(module, engine).output)
    assert len(outputs) == 1


def test_trap_identical():
    source = 'int main(void) { int a = 7; int b = 0; printf("%d", a / b); return 0; }'
    messages = set()
    for engine in ("simple", "threaded"):
        module = compile_source(source, FULL).module
        with pytest.raises(InterpTrap) as exc:
            _run(module, engine)
        messages.add(str(exc.value))
    assert messages == {"integer division by zero"}


def test_deep_recursion_limit_identical():
    source = r"""
    int f(int n) { if (n == 0) { return 0; } return f(n - 1); }
    int main(void) { return f(5000); }
    """
    messages = set()
    for engine in ("simple", "threaded"):
        module = compile_source(source, O0).module
        with pytest.raises(ResourceLimitError) as exc:
            _run(module, engine)
        messages.add(str(exc.value))
    assert messages == {"interpreted call stack too deep"}


def test_unknown_engine_rejected():
    module = compile_source("int main(void) { return 0; }", O0).module
    with pytest.raises(InterpError, match="unknown interpreter engine"):
        Machine(module, MachineOptions(engine="jit")).run()


class TestDecodeCache:
    def test_cache_lives_on_module_and_pickles_away(self):
        module = compile_source("int main(void) { return 3; }", O0).module
        _run(module, "threaded")
        assert hasattr(module, "_decoded")
        clone = pickle.loads(pickle.dumps(module))
        assert not hasattr(clone, "_decoded")
        assert _run(clone, "threaded").exit_code == 3
        deep = copy.deepcopy(module)
        assert not hasattr(deep, "_decoded")
        assert _run(deep, "threaded").exit_code == 3

    def test_invalidate_decoded(self):
        module = compile_source("int main(void) { return 3; }", O0).module
        _run(module, "threaded")
        invalidate_decoded(module)
        assert not hasattr(module, "_decoded")
        assert _run(module, "threaded").exit_code == 3
        invalidate_decoded(module)  # idempotent on a cold module

    def test_instruction_replacement_invalidates(self):
        # passes rewrite programs by splicing in new instruction objects;
        # the staleness signature must notice and re-decode
        module = compile_source(
            'int main(void) { printf("%d\\n", 7); return 0; }', O0
        ).module
        assert _run(module, "threaded").output == "7\n"
        for func in module.functions.values():
            for block in func.blocks.values():
                block.instrs = [
                    LoadI(i.dst, 8)
                    if isinstance(i, LoadI) and i.value == 7
                    else i
                    for i in block.instrs
                ]
        assert _run(module, "threaded").output == "8\n"


def test_recursion_limit_restored_after_run():
    old = sys.getrecursionlimit()
    module = compile_source("int main(void) { return 0; }", O0).module
    for engine in ("simple", "threaded"):
        Machine(module, MachineOptions(engine=engine)).run()
        assert sys.getrecursionlimit() == old

    # restored even when the run raises
    trap = compile_source(
        "int main(void) { int z = 0; return 1 / z; }", O0
    ).module
    with pytest.raises(InterpTrap):
        Machine(trap, MachineOptions(engine="threaded")).run()
    assert sys.getrecursionlimit() == old

"""Tests for the interpreter's memory image and layout."""

import pytest

from repro.errors import InterpError
from repro.frontend import compile_c
from repro.interp.memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    STACK_BASE,
    STRING_BASE,
    MemoryImage,
)
from repro.ir.tags import Tag, TagKind


def image_for(src: str) -> MemoryImage:
    return MemoryImage(compile_c(src))


class TestLayout:
    def test_globals_placed_in_global_region(self):
        mem = image_for("int a; double b; int c[4];")
        for name in ("a", "b", "c"):
            addr = mem.global_addr[name]
            assert GLOBAL_BASE <= addr < STRING_BASE

    def test_globals_do_not_overlap(self):
        mem = image_for("int a[10]; int b[10]; int c;")
        spans = []
        sizes = {"a": 40, "b": 40, "c": 4}
        for name, size in sizes.items():
            start = mem.global_addr[name]
            spans.append((start, start + size))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_initializers_written(self):
        mem = image_for("int a = 5; int arr[3] = {7, 8, 9};")
        assert mem.load(mem.global_addr["a"]) == 5
        base = mem.global_addr["arr"]
        assert [mem.load(base + 4 * i) for i in range(3)] == [7, 8, 9]

    def test_strings_nul_terminated(self):
        module = compile_c(
            'int main(void) { printf("ab"); return 0; }'
        )
        mem = MemoryImage(module)
        lit = next(iter(module.strings.values()))
        addr = mem.string_addr[lit.tag.name]
        assert STRING_BASE <= addr < STACK_BASE
        assert mem.read_c_string(addr) == "ab"
        assert mem.load(addr + 2) == 0


class TestStack:
    def test_frames_grow_and_pop(self):
        mem = image_for("int g;")
        t1 = Tag("f.x", TagKind.LOCAL, owner="f")
        before = mem.stack_ptr
        addrs = mem.push_frame([t1], {"f.x": 8})
        assert addrs["f.x"] == before
        assert mem.stack_ptr > before
        mem.pop_frame(before)
        assert mem.stack_ptr == before

    def test_nested_frames_distinct(self):
        mem = image_for("int g;")
        tag = Tag("f.x", TagKind.LOCAL, owner="f")
        first = mem.push_frame([tag], {})
        second = mem.push_frame([tag], {})
        assert first["f.x"] != second["f.x"]

    def test_frame_respects_sizes(self):
        mem = image_for("int g;")
        a = Tag("f.a", TagKind.LOCAL, owner="f")
        b = Tag("f.b", TagKind.LOCAL, owner="f")
        addrs = mem.push_frame([a, b], {"f.a": 100, "f.b": 8})
        assert addrs["f.b"] >= addrs["f.a"] + 100


class TestHeap:
    def test_allocations_disjoint_and_in_region(self):
        mem = image_for("int g;")
        p1 = mem.allocate(64)
        p2 = mem.allocate(16)
        assert p1 >= HEAP_BASE
        assert p2 >= p1 + 64

    def test_free_validates(self):
        mem = image_for("int g;")
        p = mem.allocate(8)
        mem.free(p)          # ok
        mem.free(0)          # free(NULL) ok
        with pytest.raises(InterpError):
            mem.free(12345)

    def test_unwritten_cells_read_zero(self):
        mem = image_for("int g;")
        p = mem.allocate(32)
        assert mem.load(p + 8) == 0

    def test_unterminated_string_detected(self):
        mem = image_for("int g;")
        p = mem.allocate(8)
        for i in range(8):
            mem.store(p + i, 65)
        with pytest.raises(InterpError):
            mem.read_c_string(p, limit=8)


class TestFrameSlots:
    """push_frame_slots is the threaded engine's list-backed view of a
    frame; it must lay out addresses exactly like push_frame."""

    def test_slots_parallel_to_tags(self):
        mem = image_for("int g;")
        tags = [Tag("x", TagKind.LOCAL), Tag("y", TagKind.LOCAL)]
        sp = mem.stack_ptr
        slots = mem.push_frame_slots(tags, {"x": 8, "y": 8})
        assert len(slots) == 2
        assert slots[0] == sp
        assert slots[1] > slots[0]
        mem.pop_frame(sp)
        assert mem.stack_ptr == sp

    def test_same_layout_as_push_frame(self):
        tags = [Tag("a", TagKind.LOCAL), Tag("b", TagKind.LOCAL),
                Tag("c", TagKind.LOCAL)]
        sizes = {"a": 4, "b": 40, "c": 8}
        mem1 = image_for("int g;")
        mem2 = image_for("int g;")
        slots = mem1.push_frame_slots(tags, sizes)
        by_name = mem2.push_frame(tags, sizes)
        assert slots == [by_name[t.name] for t in tags]
        assert mem1.stack_ptr == mem2.stack_ptr

    def test_overflow_raises(self):
        mem = image_for("int g;")
        tag = Tag("huge", TagKind.LOCAL)
        with pytest.raises(InterpError, match="overflow"):
            mem.push_frame_slots([tag], {"huge": 1 << 40})

"""Interpreter semantics tests: C arithmetic, memory, control, counters."""

import pytest

from repro.errors import InterpError, InterpTrap, ResourceLimitError
from repro.interp import MachineOptions, c_div, c_mod, run_module, wrap_int
from repro.interp.machine import Machine
from tests.helpers import compile_ir, run_c


class TestArithmeticHelpers:
    @pytest.mark.parametrize(
        "a,b,q,r",
        [
            (7, 2, 3, 1),
            (-7, 2, -3, -1),
            (7, -2, -3, 1),
            (-7, -2, 3, -1),
            (0, 5, 0, 0),
            (1, 1, 1, 0),
        ],
    )
    def test_c_division_truncates_toward_zero(self, a, b, q, r):
        assert c_div(a, b) == q
        assert c_mod(a, b) == r
        assert q * b + r == a

    def test_division_by_zero_traps(self):
        with pytest.raises(InterpTrap):
            c_div(1, 0)

    def test_wrap_int_two_complement(self):
        assert wrap_int(2**63) == -(2**63)
        assert wrap_int(-(2**63) - 1) == 2**63 - 1
        assert wrap_int(2**64) == 0
        assert wrap_int(42) == 42

    def test_overflow_wraps_in_program(self):
        src = r"""
        int main(void) {
            long x;
            x = 9223372036854775807;
            x = x + 1;
            printf("%d\n", (int)(x < 0));
            return 0;
        }
        """
        assert run_c(src).output.strip() == "1"


class TestCounters:
    def test_counts_match_known_program(self):
        src = r"""
        int g;
        int main(void) {
            g = 1;
            g = g + 1;
            return g;
        }
        """
        result = run_c(src)
        # g=1 (store); g=g+1 (load, store); return g (load)
        assert result.counters.stores == 2
        assert result.counters.loads == 2
        assert result.counters.scalar_stores == 2
        assert result.counters.general_stores == 0
        assert result.exit_code == 2

    def test_loadi_not_counted_as_load(self):
        result = run_c("int main(void) { return 1 + 2; }")
        assert result.counters.loads == 0
        assert result.counters.total_ops > 0

    def test_call_breakdown(self):
        src = r"""
        int id(int x) { return x; }
        int main(void) { return id(id(3)); }
        """
        result = run_c(src)
        assert result.counters.calls == 2

    def test_step_limit_enforced(self):
        src = "int main(void) { while (1) { } return 0; }"
        module = compile_ir(src)
        with pytest.raises(ResourceLimitError):
            run_module(module, options=MachineOptions(max_steps=1000))


class TestMemoryBehaviour:
    def test_globals_zero_initialized(self):
        src = r"""
        int g;
        double d;
        int arr[3];
        int main(void) {
            printf("%d %f %d\n", g, d, arr[1]);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "0 0.000000 0"

    def test_recursion_gets_fresh_locals(self):
        src = r"""
        int depth_product(int n) {
            int local;
            int *p;
            p = &local;
            *p = n;
            if (n <= 1) { return *p; }
            return *p * depth_product(n - 1);
        }
        int main(void) { printf("%d\n", depth_product(5)); return 0; }
        """
        assert run_c(src).output.strip() == "120"

    def test_malloc_regions_disjoint(self):
        src = r"""
        int main(void) {
            int *a;
            int *b;
            a = (int *) malloc(40);
            b = (int *) malloc(40);
            a[0] = 1;
            b[0] = 2;
            printf("%d %d\n", a[0], b[0]);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "1 2"

    def test_free_accepts_heap_pointer(self):
        src = r"""
        int main(void) {
            int *a;
            a = (int *) malloc(8);
            free(a);
            return 0;
        }
        """
        assert run_c(src).exit_code == 0

    def test_stack_overflow_detected(self):
        src = r"""
        int infinite(int n) { return infinite(n + 1); }
        int main(void) { return infinite(0); }
        """
        module = compile_ir(src)
        with pytest.raises(ResourceLimitError):
            run_module(module, options=MachineOptions(max_steps=100_000_000))


class TestExitPaths:
    def test_exit_intrinsic(self):
        src = r"""
        int main(void) {
            printf("before\n");
            exit(3);
            printf("after\n");
            return 0;
        }
        """
        result = run_c(src)
        assert result.exit_code == 3
        assert result.output == "before\n"

    def test_main_return_value(self):
        assert run_c("int main(void) { return 41; }").exit_code == 41

    def test_missing_entry(self):
        module = compile_ir("int helper(void) { return 1; }")
        with pytest.raises(InterpError):
            run_module(module)


class TestDeterminism:
    def test_rand_sequence_reproducible(self):
        src = r"""
        int main(void) {
            srand(7);
            printf("%d %d %d\n", rand(), rand(), rand());
            return 0;
        }
        """
        first = run_c(src).output
        second = run_c(src).output
        assert first == second

    def test_two_machines_identical(self):
        src = r"""
        int acc;
        int main(void) {
            int i;
            for (i = 0; i < 100; i++) { acc += i * 3; }
            return acc % 251;
        }
        """
        module = compile_ir(src)
        r1 = Machine(module).run()
        module2 = compile_ir(src)
        r2 = Machine(module2).run()
        assert r1.exit_code == r2.exit_code
        assert r1.counters.total_ops == r2.counters.total_ops
